#!/usr/bin/env python3
"""Bring your own workload: define a traffic profile and trace it.

The built-in SPEC2006 profiles are just parameter sets. This example
defines a custom key-value-store-like profile (small hot log region,
large cold data set, no streaming), runs it under every scheme, dumps the
first part of the generated event stream to a trace file, and replays
that trace through the low-level assembly (engine + controller + cores)
to show the layering beneath ``run_workload``.

Run:  python examples/custom_workload.py [--tiny]
"""

import argparse
import itertools
import tempfile
from pathlib import Path

from repro import Scheme, SystemConfig
from repro.analysis.report import format_table
from repro.cpu.core_model import CoreParams
from repro.cpu.multicore import Multicore
from repro.engine import Simulator
from repro.memctrl.controller import MemoryController
from repro.pcm.device import PCMDevice
from repro.sim.runner import run_workload
from repro.utils.units import s_to_ns
from repro.workloads.spec2006 import BENCHMARKS, BenchmarkProfile
from repro.workloads.synthetic import RegionProfile, RegionTrafficGenerator
from repro.workloads.trace import TraceReader, write_trace


def kv_store_profile() -> BenchmarkProfile:
    """A write-heavy key-value store: a hot append log plus cold data."""
    traffic = RegionProfile(
        mpki=30.0,
        writeback_per_miss=0.6,        # persist-heavy
        registrations_per_write=4.0,   # log entries rewritten in cache
        footprint_regions=8192,
        hot_regions=24,                # the log tail + hot index nodes
        warm_regions=256,              # recently-touched index pages
        hot_write_share=0.8,
        warm_write_share=0.12,
        streaming_fraction=0.0,
        read_hot_share=0.35,
        hot_working_blocks=32,
        zipf_alpha=1.1,                # strongly skewed key popularity
    )
    return BenchmarkProfile(name="kvstore", paper_mpki=30.0, traffic=traffic)


def register_profile(profile: BenchmarkProfile) -> None:
    """Workloads are resolved by name; adding to the catalogue makes the
    custom profile usable everywhere a benchmark name is accepted."""
    BENCHMARKS[profile.name] = profile


def trace_roundtrip_demo(profile: BenchmarkProfile, config: SystemConfig) -> None:
    """Dump a slice of the generated stream and replay it manually."""
    scaled = profile.scaled_footprint(config.footprint_scale)
    generator = RegionTrafficGenerator(scaled.traffic, seed=7)
    events = list(itertools.islice(iter(generator), 50_000))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "kvstore.trace"
        count = write_trace(path, events, header="kvstore sample trace")
        print(f"wrote {count} events to {path.name} "
              f"({path.stat().st_size >> 10}KB)")

        # Manual assembly: engine -> device -> controller -> one core
        # replaying the trace with a fixed slow write mode.
        sim = Simulator()
        device = PCMDevice(
            size_bytes=config.memory.size_bytes,
            n_channels=config.memory.n_channels,
            banks_per_channel=config.memory.banks_per_channel,
        )
        controller = MemoryController(sim, device)
        cores = Multicore(
            sim, controller, [TraceReader(path).events()],
            CoreParams(freq_ghz=config.cores.freq_ghz),
            end_time_ns=s_to_ns(config.duration_s),
        )
        cores.start()
        sim.run(until=s_to_ns(config.duration_s))
        print(f"trace replay: {cores.total_instructions()} instructions, "
              f"{controller.stats.reads_completed} reads, "
              f"{controller.stats.writes_completed} writes, "
              f"row-hit rate {controller.stats.row_hit_rate:.0%}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true")
    args = parser.parse_args()

    config = SystemConfig.tiny() if args.tiny else SystemConfig.scaled()
    profile = kv_store_profile()
    register_profile(profile)

    print("=== trace round trip ===")
    trace_roundtrip_demo(profile, config)
    print()

    print("=== scheme comparison for the custom workload ===")
    rows = []
    for scheme in (Scheme.STATIC_7, Scheme.STATIC_4, Scheme.STATIC_3, Scheme.RRM):
        result = run_workload(config, "kvstore", scheme)
        rows.append([
            scheme.value, result.ipc, result.lifetime_years,
            f"{result.fast_write_fraction:.0%}",
        ])
    print(format_table(
        ["scheme", "IPC", "lifetime (y)", "fast writes"], rows,
        title="kvstore under each scheme",
    ))


if __name__ == "__main__":
    main()
