#!/usr/bin/env python3
"""Aggressiveness control: sweep the RRM's hot_threshold (paper Fig. 11).

hot_threshold is the number of dirty LLC writes a 4KB region must
accumulate within a decay interval to be treated as hot. Lowering it makes
the RRM more aggressive (more fast writes, better performance, more
selective refreshes, shorter lifetime); raising it does the opposite.
This example sweeps {8, 16, 32, 64} on one workload and prints the
performance/lifetime frontier, which is how a system owner would pick an
operating point.

Run:  python examples/hot_threshold_tuning.py [--workload NAME] [--tiny]
"""

import argparse

from repro import Scheme, SystemConfig, run_workload
from repro.analysis.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="GemsFDTD")
    parser.add_argument("--tiny", action="store_true")
    parser.add_argument("--thresholds", type=int, nargs="*",
                        default=[8, 16, 32, 64])
    args = parser.parse_args()

    base = SystemConfig.tiny() if args.tiny else SystemConfig.scaled()

    # Anchor points: the static extremes.
    s7 = run_workload(base, args.workload, Scheme.STATIC_7)
    s3 = run_workload(base, args.workload, Scheme.STATIC_3)

    rows = []
    for threshold in args.thresholds:
        config = base.with_rrm(base.rrm.with_hot_threshold(threshold))
        result = run_workload(config, args.workload, Scheme.RRM)
        label = f"RRM t={threshold}" + (" (default)" if threshold == 16 else "")
        rows.append([
            label,
            result.ipc / s7.ipc,
            result.lifetime_years,
            f"{result.fast_write_fraction:.0%}",
            result.rrm_fast_refreshes + result.rrm_slow_refreshes,
        ])

    rows.append(["Static-7-SETs", 1.0, s7.lifetime_years, "0%", 0])
    rows.append(["Static-3-SETs", s3.ipc / s7.ipc, s3.lifetime_years, "100%", 0])

    print(format_table(
        ["scheme", "speedup vs S7", "lifetime (y)", "fast writes", "rrm refreshes"],
        rows,
        title=f"hot_threshold sweep on {args.workload}",
    ))
    print()
    print("Expected shape (paper Section VI-D): performance falls and")
    print("lifetime rises as the threshold increases; t=8 approaches the")
    print("Static-3 performance while keeping most of the lifetime.")


if __name__ == "__main__":
    main()
