#!/usr/bin/env python3
"""Quickstart: run one workload under the RRM and the two static extremes.

This is the 60-second tour of the library: build a scaled system
configuration, simulate GemsFDTD under Static-7-SETs (slow/safe),
Static-3-SETs (fast/fragile) and the Region Retention Monitor, and print
the performance/lifetime balance the paper is about.

Run:  python examples/quickstart.py [--workload NAME] [--tiny]
"""

import argparse

from repro import Scheme, SystemConfig, run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="GemsFDTD",
                        help="benchmark or mix name (default: GemsFDTD)")
    parser.add_argument("--tiny", action="store_true",
                        help="use the tiny test configuration (fast)")
    args = parser.parse_args()

    config = SystemConfig.tiny() if args.tiny else SystemConfig.scaled()
    print(f"workload: {args.workload}")
    print(f"memory:   {config.memory.size_bytes >> 20}MB MLC PCM, "
          f"{config.memory.n_channels} channel(s) x "
          f"{config.memory.banks_per_channel} banks")
    print(f"duration: {config.duration_s}s simulated "
          f"({config.virtual_duration_s:.1f}s on the paper's timescale)")
    print()

    results = {}
    for scheme in (Scheme.STATIC_7, Scheme.STATIC_3, Scheme.RRM):
        results[scheme] = run_workload(config, args.workload, scheme)
        print(results[scheme].summary())

    s7, s3, rrm = (results[s] for s in (Scheme.STATIC_7, Scheme.STATIC_3, Scheme.RRM))
    print()
    print(f"Static-3 over Static-7 speedup : {s3.ipc / s7.ipc:.2f}x")
    print(f"RRM over Static-7 speedup      : {rrm.ipc / s7.ipc:.2f}x")
    if s3.ipc > s7.ipc:
        bridged = (rrm.ipc - s7.ipc) / (s3.ipc - s7.ipc)
        print(f"RRM bridges {bridged:.0%} of the performance gap")
    print(f"lifetimes (years)              : "
          f"S7 {s7.lifetime_years:.1f} / RRM {rrm.lifetime_years:.1f} / "
          f"S3 {s3.lifetime_years:.2f}")
    print(f"RRM fast-write coverage        : {rrm.fast_write_fraction:.0%}")


if __name__ == "__main__":
    main()
