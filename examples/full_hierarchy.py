#!/usr/bin/env python3
"""Full cache-hierarchy mode: raw CPU accesses through L1/L2/L3.

The benchmark harness drives the memory system with LLC-level traffic for
speed (DESIGN.md, "two workload paths"). This example demonstrates the
other path: instruction-level loads/stores filtered through a real
three-level write-back hierarchy, with the LLC's write registrations
feeding a Region Retention Monitor — showing that the RRM sees the same
kind of skewed, dirty-filtered write stream either way.

Run:  python examples/full_hierarchy.py [--accesses N]
"""

import argparse
import itertools
from collections import Counter

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.core.config import RRMConfig
from repro.core.monitor import RegionRetentionMonitor
from repro.pcm.write_modes import WriteModeTable
from repro.workloads.cpu_trace import CpuAccessGenerator, CpuTraceProfile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=300_000,
                        help="CPU accesses per core to simulate")
    args = parser.parse_args()

    # A shrunken hierarchy so the filtering dynamics show up quickly.
    hierarchy = CacheHierarchy(HierarchyConfig.scaled(factor=16, n_cores=2))
    monitor = RegionRetentionMonitor(
        RRMConfig(n_sets=16, n_ways=8), WriteModeTable()
    )

    generators = [
        CpuAccessGenerator(
            CpuTraceProfile(
                store_fraction=0.4,
                reuse_fraction=0.85,
                frame_blocks=2048,
                footprint_blocks=1 << 18,
            ),
            base_block=core << 20,
            seed=core + 1,
        )
        for core in range(2)
    ]

    instructions = [0, 0]
    memory_reads = 0
    memory_writes = Counter()
    fast, slow = 0, 0

    for core, generator in enumerate(generators):
        for gap, block, is_write in itertools.islice(iter(generator), args.accesses):
            instructions[core] += gap
            traffic = hierarchy.access(core, block, is_write)
            if traffic.memory_read_block is not None:
                memory_reads += 1
            for written_block, was_dirty in traffic.llc_writes:
                monitor.register_llc_write(written_block, was_dirty)
            for written_block in traffic.memory_write_blocks:
                memory_writes[written_block] += 1
                if monitor.decide_write_mode(written_block) == 3:
                    fast += 1
                else:
                    slow += 1

    total_accesses = 2 * args.accesses
    print(f"CPU accesses           : {total_accesses}")
    print(f"instructions           : {sum(instructions)}")
    print(f"LLC misses (mem reads) : {memory_reads}")
    print(f"memory writes          : {sum(memory_writes.values())}")
    print(f"MPKI through hierarchy : {hierarchy.mpki(instructions):.2f}")
    llc = hierarchy.llc.stats
    print(f"LLC writes (dirty hits): {llc.write_hits} ({llc.dirty_write_hits} "
          f"to already-dirty lines)")
    print()
    print(f"RRM registrations      : {monitor.stats.registrations} "
          f"(+{monitor.stats.clean_writes_filtered} clean, filtered)")
    print(f"RRM hot promotions     : {monitor.stats.promotions}")
    denominator = fast + slow
    if denominator:
        print(f"write modes            : {fast} fast / {slow} slow "
              f"({fast / denominator:.0%} fast)")
    top = memory_writes.most_common(5)
    print()
    print("hottest written blocks (block, writes):", top)
    print()
    print("The hierarchy's dirty-writeback stream shows the same skew the "
          "LLC-level generators model: a few blocks dominate and the RRM "
          "marks exactly those as short-retention.")


if __name__ == "__main__":
    main()
