#!/usr/bin/env python3
"""End-to-end retention correctness: prove the RRM never loses data.

Short-retention writes are only safe if every such block is re-written or
refreshed before its retention expires. This example attaches the
:class:`~repro.sim.validation.RetentionIntegrityChecker` to a running
system and shows (a) the RRM keeps every block valid, and (b) with
selective refresh fault-injected off, data demonstrably expires — i.e.
the selective refresh is load-bearing, not decorative.

Run:  python examples/retention_integrity.py [--workload NAME]
"""

import argparse
import dataclasses

from repro import Scheme, SystemConfig
from repro.sim.system import System
from repro.sim.validation import RetentionIntegrityChecker


def run_with_checker(config, workload):
    system = System(config, workload, Scheme.RRM)
    interval = system.modes.refresh_interval_s(Scheme.RRM.global_refresh_n_sets)
    checker = RetentionIntegrityChecker(
        system.modes, global_refresh_interval_s=interval
    )
    system.controller.add_completion_listener(checker.on_completion)
    result = system.run()
    checker.finalize(system.sim.now)
    return result, checker


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="GemsFDTD")
    args = parser.parse_args()

    config = SystemConfig.tiny()
    config = dataclasses.replace(config, duration_s=config.duration_s * 3)

    print("=== RRM with selective refresh (normal operation) ===")
    result, checker = run_with_checker(config, args.workload)
    print(f"fast writes          : {result.fast_writes} "
          f"({result.fast_write_fraction:.0%} of demand writes)")
    print(f"selective refreshes  : "
          f"{result.rrm_fast_refreshes + result.rrm_slow_refreshes}")
    print(f"integrity checks     : {checker.checks_performed}")
    print(f"expired-data events  : {checker.violation_count}")
    assert checker.violation_count == 0

    print()
    print("=== fault injection: all maintenance paths disabled ===")
    # Disable every mechanism that rewrites short-retention data in time:
    # the selective-refresh interrupt, decay demotion rewrites, and
    # eviction rewrites. Whatever expires is then caught by the checker.
    broken = config.with_rrm(
        dataclasses.replace(
            config.rrm,
            selective_refresh_enabled=False,
            decay_enabled=False,
            refresh_on_eviction=False,
        )
    )
    result, checker = run_with_checker(broken, args.workload)
    print(f"fast writes          : {result.fast_writes}")
    print(f"selective refreshes  : "
          f"{result.rrm_fast_refreshes + result.rrm_slow_refreshes}")
    print(f"expired-data events  : {checker.violation_count}")
    if checker.violations:
        worst = max(checker.violations, key=lambda v: v.age_s / v.retention_s)
        print(f"worst expiry         : block {worst.block} aged "
              f"{worst.age_s:.3f}s against a {worst.retention_s:.3f}s "
              f"retention ({worst.kind})")
    print()
    print("Without the RRM's selective refresh, short-retention data "
          "outlives its drift margin — the monitor's refresh traffic is "
          "exactly what keeps fast writes safe.")


if __name__ == "__main__":
    main()
