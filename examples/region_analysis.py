#!/usr/bin/env python3
"""Region write-interval analysis (paper Table III / Section III-C).

The insight behind the RRM is that writes are extremely skewed: a small
set of 4KB regions absorbs almost all memory writes, at intervals of
milliseconds, while most of memory is written rarely or never. This
example runs a workload under the slow baseline scheme, records every
demand write, and prints the same region histogram the paper uses to make
that case.

Run:  python examples/region_analysis.py [--workload NAME] [--tiny]
"""

import argparse

from repro import Scheme, SystemConfig
from repro.analysis.regions import RegionIntervalAnalyzer
from repro.analysis.report import format_table
from repro.sim.system import System
from repro.utils.units import s_to_ns


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="GemsFDTD")
    parser.add_argument("--tiny", action="store_true")
    args = parser.parse_args()

    config = SystemConfig.tiny() if args.tiny else SystemConfig.scaled()
    analyzer = RegionIntervalAnalyzer(
        drift_scale=config.drift_scale,
        total_regions=config.memory.size_bytes // 4096,
    )

    system = System(
        config, args.workload, Scheme.STATIC_7,
        write_trace_sink=analyzer.record,
    )
    result = system.run()

    rows = [
        [row.label, row.regions, f"{row.region_pct:.1f}%",
         row.writes, f"{row.write_pct:.2f}%"]
        for row in analyzer.histogram()
    ]
    print(format_table(
        ["Average Write Interval", "# Regions", "% Regions", "# Writes", "% Writes"],
        rows,
        title=(f"Region write behaviour of {args.workload} "
               f"({result.writes} memory writes, intervals on the paper's "
               f"timescale)"),
    ))

    share = analyzer.hot_write_share(interval_cutoff_ns=s_to_ns(0.1))
    pct_regions = 100.0 * analyzer.regions_written / (
        config.memory.size_bytes // 4096
    )
    print()
    print(f"{pct_regions:.1f}% of memory regions were written at all; "
          f"{share:.0%} of all writes hit regions with an average interval "
          f"below 10^8 ns.")
    print("This is the skew the Region Retention Monitor exploits: only "
          "those regions need fast short-retention writes and selective "
          "refresh.")


if __name__ == "__main__":
    main()
