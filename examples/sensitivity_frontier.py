#!/usr/bin/env python3
"""The performance/lifetime frontier across RRM operating points.

Sweeps the three design knobs the paper studies — hot_threshold (Fig 11),
LLC coverage rate (Fig 12) and entry coverage size (Fig 13) — through the
library's sweep API and prints every operating point as a
(speedup, lifetime) pair, with an ASCII frontier plot. This is the view a
system owner uses to pick a configuration: points up-and-right dominate.

Run:  python examples/sensitivity_frontier.py [--workloads W...] [--tiny]
"""

import argparse

from repro import SystemConfig
from repro.analysis.report import format_table
from repro.sim.sweeps import (
    coverage_sweep,
    entry_size_sweep,
    hot_threshold_sweep,
)


def ascii_frontier(points, width=56, height=12):
    """Minimal scatter plot of (speedup, lifetime) operating points."""
    xs = [p.speedup for _, p in points]
    ys = [p.lifetime_years for _, p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, point in points:
        col = int((point.speedup - x_low) / x_span * (width - 1))
        row = int((point.lifetime_years - y_low) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker
    lines = [f"lifetime {y_high:6.2f}y +" + "-" * width + "+"]
    for row in grid:
        lines.append(" " * 17 + "|" + "".join(row) + "|")
    lines.append(f"lifetime {y_low:6.2f}y +" + "-" * width + "+")
    lines.append(
        " " * 18 + f"speedup {x_low:.2f}x" + " " * (width - 22)
        + f"{x_high:.2f}x"
    )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", nargs="*", default=["GemsFDTD"])
    parser.add_argument("--tiny", action="store_true")
    args = parser.parse_args()

    config = SystemConfig.tiny() if args.tiny else SystemConfig.scaled()
    progress = lambda label, w: print(f"  running {label} / {w} ...")  # noqa: E731

    sweeps = [
        ("T", "hot_threshold", hot_threshold_sweep(config, args.workloads,
                                                   progress=progress)),
        ("C", "coverage", coverage_sweep(config, args.workloads,
                                         progress=progress)),
        ("E", "entry size", entry_size_sweep(config, args.workloads,
                                             progress=progress)),
    ]

    rows = []
    plotted = []
    for marker, _, points in sweeps:
        for point in points:
            rows.append([
                point.label,
                point.speedup,
                point.lifetime_years,
                f"{point.fast_write_fraction:.0%}",
            ])
            plotted.append((marker, point))

    print()
    print(format_table(
        ["operating point", "speedup vs S7", "lifetime (y)", "fast writes"],
        rows,
        title=f"RRM operating points over {', '.join(args.workloads)}",
    ))
    print()
    print(ascii_frontier(plotted))
    print()
    print("T = hot_threshold sweep, C = coverage sweep, E = entry-size sweep.")
    print("Up-and-right dominates; the default configuration (threshold 16,")
    print("4x coverage, 4KB entries) sits on the knee of the frontier.")


if __name__ == "__main__":
    main()
