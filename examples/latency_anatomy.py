#!/usr/bin/env python3
"""The RRM's bargain, measured causally: fast writes buy performance by
spending refresh traffic, and that refresh traffic taxes reads.

The headline comparison (RRM beats Static-7 on IPC) says nothing about
*why* read latency moves. This example runs both schemes with latency
attribution enabled and decomposes every read's queue wait by what
actually occupied the bank — demand writes, RRM selective refreshes, or
other reads. Under Static-7 the refresh-blamed wait is exactly zero (no
selective refresh exists); under RRM it is nonzero, the measured price
of the fast-write mode whose short retention forces refreshes. The same
anatomy shows the compensating win: reads wait far less behind Static-7's
slow (7-SET) demand writes once the RRM issues most writes fast.

Run:  python examples/latency_anatomy.py [--tiny] [--workload NAME]
"""

import argparse

from repro import Scheme, SystemConfig
from repro.attribution import CLASS_WRITE_FAST, CLASS_WRITE_SLOW
from repro.sim.system import System
from repro.telemetry import TelemetryConfig


def run_with_anatomy(config, workload, scheme):
    system = System(
        config,
        workload,
        scheme,
        telemetry=TelemetryConfig(attribution=True, trace=False),
    )
    result = system.run()
    return result, system.attribution_report()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="GemsFDTD")
    parser.add_argument(
        "--tiny", action="store_true", help="tiny config (seconds, for CI)"
    )
    args = parser.parse_args()

    config = SystemConfig.tiny() if args.tiny else SystemConfig.scaled()

    rows = []
    for scheme in (Scheme.STATIC_7, Scheme.RRM):
        result, report = run_with_anatomy(config, args.workload, scheme)
        # Conservation is exact by construction (remainder-defined
        # components; Sterbenz-exact subtractions), not approximately so.
        assert report.max_conservation_error_ns == 0.0  # repro-lint: disable=RL004
        write_blame = sum(
            report.matrix.get("read", cls)
            for cls in (CLASS_WRITE_FAST, CLASS_WRITE_SLOW)
        )
        rows.append((scheme, result, report, write_blame))
        print(f"=== {scheme.value} / {args.workload} ===")
        print(f"IPC                     : {result.ipc:.3f}")
        print(f"avg read latency        : {result.avg_read_latency_ns:.1f} ns")
        print(
            f"read wait blamed on     : "
            f"writes {write_blame / 1000.0:.1f} us, "
            f"refreshes {report.read_refresh_blame_ns / 1000.0:.1f} us "
            f"({report.read_refresh_share:.2%} of read latency)"
        )
        print(
            f"write-pause preemption  : "
            f"{report.pause_preempt_total_ns / 1000.0:.1f} us"
        )
        print()

    (_, s7_res, s7_rep, s7_write), (_, rrm_res, rrm_rep, rrm_write) = rows
    # Exactly zero, not small: Static-7 issues no selective refreshes,
    # so no read can ever be blamed on one.
    assert s7_rep.read_refresh_blame_ns == 0.0  # repro-lint: disable=RL004
    assert rrm_rep.read_refresh_blame_ns > 0.0  # the fast-write tax

    print("=== the tradeoff, causally attributed ===")
    print(
        f"refresh tax on reads    : +{rrm_rep.read_refresh_blame_ns / 1000.0:.1f} us "
        f"(RRM) vs +0.0 us (Static-7)"
    )
    print(
        f"write-blocking relief   : {s7_write / 1000.0:.1f} us (Static-7) -> "
        f"{rrm_write / 1000.0:.1f} us (RRM)"
    )
    print(
        f"net                     : IPC {s7_res.ipc:.3f} -> {rrm_res.ipc:.3f}, "
        f"read latency {s7_res.avg_read_latency_ns:.1f} -> "
        f"{rrm_res.avg_read_latency_ns:.1f} ns"
    )
    print()
    print(
        "The RRM's refresh traffic measurably delays reads — but the"
        " anatomy shows it buys back more by replacing slow 7-SET demand"
        " writes, which block reads for far longer per occupancy."
    )


if __name__ == "__main__":
    main()
