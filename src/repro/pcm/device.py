"""The assembled multi-channel MLC PCM device.

A :class:`PCMDevice` owns the bank array, the write-mode table, and the
built-in self-refresh circuit. Per the paper (Section IV-F), global
refreshes — rewriting every block with the long-retention mode before its
retention expires — are handled by the device itself and are accounted
analytically for wear and energy, not simulated per block (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError
from repro.pcm.bank import Bank
from repro.pcm.energy import EnergyModel
from repro.pcm.endurance import WearTracker
from repro.pcm.timing import PCMTimings
from repro.pcm.write_modes import WriteModeTable

#: Memory block (cache line) size in bytes.
BLOCK_BYTES = 64


@dataclass
class PCMDevice:
    """Banks + write modes + self-refresh circuit for one memory system.

    Attributes:
        size_bytes: Total device capacity.
        n_channels: Independent channels (each with its own bus).
        banks_per_channel: Banks per channel.
        row_bytes: Bytes per row (the activation granularity feeding the
            row buffer; 1KB row-buffer slice of a 16KB row in the paper —
            we use the row-buffer size since that defines hit behaviour).
        timings: Shared timing parameters.
        modes: Write-mode table (drift-model derived).
    """

    size_bytes: int
    n_channels: int = 4
    banks_per_channel: int = 16
    row_bytes: int = 1024
    timings: PCMTimings = field(default_factory=PCMTimings)
    modes: WriteModeTable = field(default_factory=WriteModeTable)
    allow_write_pausing: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % BLOCK_BYTES:
            raise ConfigError("device size must be a positive multiple of 64B")
        if self.n_channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigError("channel/bank counts must be positive")
        if self.row_bytes <= 0 or self.row_bytes % BLOCK_BYTES:
            raise ConfigError("row size must be a positive multiple of 64B")
        self._banks: List[List[Bank]] = [
            [
                Bank(timings=self.timings, allow_write_pausing=self.allow_write_pausing)
                for _ in range(self.banks_per_channel)
            ]
            for _ in range(self.n_channels)
        ]

    @property
    def n_blocks(self) -> int:
        """Total number of 64-byte blocks in the device."""
        return self.size_bytes // BLOCK_BYTES

    @property
    def blocks_per_row(self) -> int:
        return self.row_bytes // BLOCK_BYTES

    @property
    def n_banks(self) -> int:
        return self.n_channels * self.banks_per_channel

    def bank(self, channel: int, bank: int) -> Bank:
        """The :class:`Bank` at (*channel*, *bank*)."""
        return self._banks[channel][bank]

    def banks(self) -> List[Bank]:
        """All banks, flattened (channel-major)."""
        return [b for channel in self._banks for b in channel]

    def global_refresh_rounds(self, duration_s: float, interval_s: float) -> float:
        """How many full-device refresh sweeps occur in *duration_s*.

        The self-refresh circuit rewrites each block once per *interval_s*.
        Fractional rounds are meaningful: half an interval of elapsed time
        wears the device by half a sweep on average.
        """
        if duration_s < 0:
            raise ValueError("negative duration")
        if interval_s <= 0:
            raise ConfigError("refresh interval must be positive")
        return duration_s / interval_s

    def account_global_refresh(
        self,
        duration_s: float,
        interval_s: float,
        n_sets: int,
        wear: WearTracker,
        energy: EnergyModel,
    ) -> float:
        """Apply analytic global-refresh wear and energy for a run.

        Returns the number of block rewrites accounted.
        """
        rounds = self.global_refresh_rounds(duration_s, interval_s)
        if rounds > 0:
            wear.record_global_refresh_round(self.n_blocks, rounds)
            energy.record_global_refresh(n_sets, int(round(self.n_blocks * rounds)))
        return self.n_blocks * rounds
