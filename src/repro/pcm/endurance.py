"""Wear tracking and the PCM lifetime model.

PCM cells endure a limited number of RESET pulses (5e6 in the paper's
configuration); every write — demand, RRM selective refresh, or global
refresh — begins with a RESET and therefore wears its block by one. SET
iterations do not meaningfully wear the cell (Kim & Ahn, IRPS 2005), so
all write modes cost the same endurance.

Lifetime follows the paper's assumptions: an effective wear-levelling
scheme (e.g. Start-Gap) spreads wear across the device at 95% of the ideal
uniform distribution, so

    lifetime_seconds = endurance * n_blocks * efficiency / write_rate

with ``write_rate`` the total block-writes per second including refreshes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.utils.units import S_PER_YEAR

#: Cell endurance in RESET cycles (paper Table V).
DEFAULT_ENDURANCE_WRITES = 5_000_000
#: Fraction of ideal uniform-wear lifetime achieved by the assumed
#: wear-levelling scheme (paper Table V, "Misc").
DEFAULT_WEAR_LEVELING_EFFICIENCY = 0.95


@dataclass
class WearBreakdown:
    """Block-write counts by source over a simulated window."""

    demand_writes: int = 0
    rrm_refresh_writes: int = 0
    global_refresh_writes: int = 0

    @property
    def refresh_writes(self) -> int:
        return self.rrm_refresh_writes + self.global_refresh_writes

    @property
    def total(self) -> int:
        return self.demand_writes + self.refresh_writes

    def as_dict(self) -> Dict[str, int]:
        return {
            "demand": self.demand_writes,
            "rrm_refresh": self.rrm_refresh_writes,
            "global_refresh": self.global_refresh_writes,
            "total": self.total,
        }


@dataclass
class WearTracker:
    """Tracks per-block wear for demand traffic and refreshes.

    Per-block counts are kept sparsely (a Counter over touched blocks);
    global refreshes touch every block uniformly, so they are tracked as a
    single scalar rather than materialising billions of entries.
    """

    track_per_block: bool = True
    breakdown: WearBreakdown = field(default_factory=WearBreakdown)
    per_block: Counter = field(default_factory=Counter)
    #: Uniform per-block wear applied to *all* blocks (global refreshes).
    uniform_wear: float = 0.0

    def record_demand_write(self, block: int) -> None:
        """One demand write to *block* (a block index)."""
        self.breakdown.demand_writes += 1
        if self.track_per_block:
            self.per_block[block] += 1

    def record_rrm_refresh(self, block: int) -> None:
        """One RRM selective-refresh write to *block*."""
        self.breakdown.rrm_refresh_writes += 1
        if self.track_per_block:
            self.per_block[block] += 1

    def record_global_refresh_round(self, n_blocks: int, rounds: float = 1.0) -> None:
        """Account *rounds* global refresh sweeps over *n_blocks* blocks."""
        if n_blocks <= 0:
            raise ConfigError(f"n_blocks must be positive, got {n_blocks}")
        if rounds < 0:
            raise ValueError(f"negative refresh rounds: {rounds}")
        self.breakdown.global_refresh_writes += int(round(n_blocks * rounds))
        self.uniform_wear += rounds

    def max_block_wear(self) -> float:
        """Highest wear of any single block (demand+RRM plus uniform)."""
        hottest = max(self.per_block.values()) if self.per_block else 0
        return hottest + self.uniform_wear

    def register_metrics(self, registry, prefix: str = "pcm.wear") -> None:
        """Publish wear counters into a telemetry registry."""
        registry.gauge(
            f"{prefix}.demand_writes", lambda: self.breakdown.demand_writes
        )
        registry.gauge(
            f"{prefix}.rrm_refresh_writes",
            lambda: self.breakdown.rrm_refresh_writes,
        )
        registry.gauge(
            f"{prefix}.global_refresh_writes",
            lambda: self.breakdown.global_refresh_writes,
        )
        registry.gauge(f"{prefix}.uniform_wear", lambda: self.uniform_wear)
        registry.gauge(f"{prefix}.tracked_blocks", lambda: len(self.per_block))
        registry.derived(f"{prefix}.total_writes", lambda: self.breakdown.total)


@dataclass(frozen=True)
class EnduranceModel:
    """Computes device lifetime from observed wear rates.

    Attributes:
        endurance_writes: RESET cycles a cell survives.
        wear_leveling_efficiency: Fraction of the ideal uniform-wear
            lifetime the wear-levelling scheme achieves.
    """

    endurance_writes: int = DEFAULT_ENDURANCE_WRITES
    wear_leveling_efficiency: float = DEFAULT_WEAR_LEVELING_EFFICIENCY

    def __post_init__(self) -> None:
        if self.endurance_writes <= 0:
            raise ConfigError("endurance must be positive")
        if not 0 < self.wear_leveling_efficiency <= 1:
            raise ConfigError("wear-levelling efficiency must be in (0, 1]")

    def lifetime_seconds(
        self,
        total_block_writes: float,
        window_seconds: float,
        n_blocks: int,
    ) -> float:
        """Projected device lifetime in seconds.

        Args:
            total_block_writes: All block writes (demand + refresh)
                observed during the measurement window.
            window_seconds: Length of the measurement window (virtual
                seconds, i.e. already corrected for any drift scaling).
            n_blocks: Number of blocks in the device.
        """
        if window_seconds <= 0:
            raise ConfigError("measurement window must be positive")
        if n_blocks <= 0:
            raise ConfigError("n_blocks must be positive")
        if total_block_writes < 0:
            raise ValueError("negative write count")
        if total_block_writes == 0:
            return float("inf")
        write_rate = total_block_writes / window_seconds
        capacity = self.endurance_writes * n_blocks * self.wear_leveling_efficiency
        return capacity / write_rate

    def lifetime_years(
        self,
        total_block_writes: float,
        window_seconds: float,
        n_blocks: int,
    ) -> float:
        """Projected lifetime in years (the paper's reporting unit)."""
        seconds = self.lifetime_seconds(total_block_writes, window_seconds, n_blocks)
        return seconds / S_PER_YEAR

    def lifetime_years_from_wear(
        self,
        wear: WearBreakdown,
        window_seconds: float,
        n_blocks: int,
        extra_writes: float = 0.0,
    ) -> float:
        """Lifetime from a :class:`WearBreakdown` plus optional analytic
        *extra_writes* not included in the breakdown."""
        total = wear.total + extra_writes
        return self.lifetime_years(total, window_seconds, n_blocks)
