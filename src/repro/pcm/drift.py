"""Resistance-drift physics for MLC PCM.

Due to chalcogenide structural relaxation, the resistance of a programmed
PCM cell increases over time following the classic power law

    R(t) = R0 * (t / t0) ** nu

(Awasthi et al., HPCA 2012). In a multi-level cell the resistance window is
split into narrow bands separated by *guardbands*; once drift carries the
resistance across the guardband above its band, the stored value is lost.
The *retention time* is therefore set by how much log-resistance margin the
write left between the programmed distribution and the edge of the
guardband:

    t_ret = t0 * 10 ** (margin_decades / nu)

A write with more SET iterations programs a tighter resistance distribution
(smaller sigma), leaving a larger margin and hence an exponentially longer
retention. The per-iteration programming sigmas below are calibrated so the
derived retention times reproduce the paper's Table I (itself recomputed by
the authors from Li et al.'s model with 20nm-chip parameters).

The ``drift_scale`` knob uniformly accelerates drift (``> 1`` shortens all
retention times by that factor). Scaled runs use it together with an
equally scaled simulation duration so the number of refresh intervals and
decay windows per run matches the paper's 5-second experiments; see
DESIGN.md, substitution 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError

#: Minimum/maximum number of SET iterations modelled (paper Table I).
MIN_SET_ITERATIONS = 3
MAX_SET_ITERATIONS = 7

#: Programming sigma (in log10-resistance decades) after n SET iterations.
#: Calibrated against Table I: tighter distributions with more iterations.
_CALIBRATED_SIGMA_DECADES: Dict[int, float] = {
    3: 0.123230,
    4: 0.087279,
    5: 0.066042,
    6: 0.033457,
    7: 0.017166,
}


@dataclass(frozen=True)
class DriftParameters:
    """Physical constants of the drift model.

    Attributes:
        nu: Drift exponent of the power law (dimensionless). 0.1 is the
            commonly used value for amorphous GST.
        t0: Normalisation time of the power law in seconds.
        guardband_decades: Width of the log-resistance guardband between
            adjacent levels, in decades.
        sigma_multiplier: Worst-case multiplier applied to the programming
            sigma when computing the usable margin (a "z-score"; 3.0 covers
            99.7% of cells).
        drift_scale: Uniform drift acceleration factor (1.0 = paper values).
    """

    nu: float = 0.1
    t0: float = 1.0
    guardband_decades: float = 0.4
    sigma_multiplier: float = 3.0
    drift_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.nu <= 0:
            raise ConfigError(f"drift exponent nu must be positive, got {self.nu}")
        if self.t0 <= 0:
            raise ConfigError(f"t0 must be positive, got {self.t0}")
        if self.guardband_decades <= 0:
            raise ConfigError("guardband must be positive")
        if self.sigma_multiplier <= 0:
            raise ConfigError("sigma_multiplier must be positive")
        if self.drift_scale <= 0:
            raise ConfigError(f"drift_scale must be positive, got {self.drift_scale}")


@dataclass
class DriftModel:
    """Maps programming precision to retention time and back.

    >>> model = DriftModel()
    >>> round(model.retention_seconds(7), 1)
    3054.9
    >>> round(model.retention_seconds(3), 2)
    2.01
    """

    params: DriftParameters = field(default_factory=DriftParameters)

    def resistance_ratio(self, elapsed_seconds: float) -> float:
        """R(t)/R0 after *elapsed_seconds* of drift."""
        if elapsed_seconds < 0:
            raise ValueError(f"negative elapsed time: {elapsed_seconds}")
        scaled = elapsed_seconds * self.params.drift_scale
        if scaled < self.params.t0:
            # The power law only applies after t0; before that drift is
            # negligible and we clamp the ratio at 1.
            return 1.0
        return (scaled / self.params.t0) ** self.params.nu

    def drift_decades(self, elapsed_seconds: float) -> float:
        """Log10 resistance shift after *elapsed_seconds*."""
        return math.log10(self.resistance_ratio(elapsed_seconds))

    def programming_sigma(self, n_sets: int) -> float:
        """Programmed log-resistance sigma after *n_sets* SET iterations."""
        self._check_n_sets(n_sets)
        return _CALIBRATED_SIGMA_DECADES[n_sets]

    def margin_decades(self, n_sets: int) -> float:
        """Usable drift margin (decades) left by an *n_sets* write."""
        sigma = self.programming_sigma(n_sets)
        margin = self.params.guardband_decades - self.params.sigma_multiplier * sigma
        if margin <= 0:
            raise ConfigError(
                f"{n_sets}-SETs write leaves no drift margin "
                f"(guardband {self.params.guardband_decades}, sigma {sigma})"
            )
        return margin

    def retention_from_margin(self, margin_decades: float) -> float:
        """Retention time (seconds) for a given drift margin."""
        if margin_decades <= 0:
            raise ValueError(f"margin must be positive, got {margin_decades}")
        unscaled = self.params.t0 * 10.0 ** (margin_decades / self.params.nu)
        return unscaled / self.params.drift_scale

    def margin_for_retention(self, retention_seconds: float) -> float:
        """Inverse of :meth:`retention_from_margin`."""
        if retention_seconds <= 0:
            raise ValueError("retention must be positive")
        scaled = retention_seconds * self.params.drift_scale
        return self.params.nu * math.log10(scaled / self.params.t0)

    def retention_seconds(self, n_sets: int) -> float:
        """Retention time of an *n_sets*-SETs write.

        With default parameters this reproduces the paper's Table I:
        3054.9s for 7 SETs down to 2.01s for 3 SETs.
        """
        return self.retention_from_margin(self.margin_decades(n_sets))

    def data_valid(self, n_sets: int, elapsed_seconds: float) -> bool:
        """Whether data written with *n_sets* SETs is still readable after
        *elapsed_seconds* (i.e. drift has not consumed the margin)."""
        return self.drift_decades(elapsed_seconds) < self.margin_decades(n_sets)

    @staticmethod
    def _check_n_sets(n_sets: int) -> None:
        if not MIN_SET_ITERATIONS <= n_sets <= MAX_SET_ITERATIONS:
            raise ConfigError(
                f"n_sets must be in [{MIN_SET_ITERATIONS}, {MAX_SET_ITERATIONS}], "
                f"got {n_sets}"
            )
