"""Start-Gap wear levelling (Qureshi et al., MICRO 2009).

The paper assumes "an effective wear leveling scheme (e.g., [13]), which
makes the whole memory achieve 95% of the average cell lifetime" (Table
V). This module implements that substrate: the Start-Gap algebraic
remapper, which needs only two registers and no translation table.

Mechanism over N logical lines mapped onto N+1 physical lines (one spare,
the *gap*):

- every ``gap_write_interval`` writes, the line just above the gap moves
  into the gap and the gap pointer walks down one slot;
- when the gap has walked through all N+1 slots (one *rotation*), the
  start pointer advances by one, so every logical line has shifted by one
  physical slot.

Over many rotations each logical address visits every physical slot,
spreading any write hot-spot across the device. The mapping is pure
arithmetic:

    physical = (logical + start + (1 if gap <= position else 0)) mod (N+1)

The classic result is that Start-Gap with a gap interval of ~100 achieves
~97% of perfect levelling on typical workloads and ~50% under adversarial
attacks; combined with region randomisation it motivates the paper's 95%
efficiency assumption, which :meth:`StartGapLeveler.leveling_efficiency`
lets us measure instead of assume (see ``bench_wear_leveling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.errors import ConfigError


@dataclass
class StartGapLeveler:
    """Start-Gap remapping over ``n_lines`` logical lines.

    Attributes:
        n_lines: Number of logical lines (blocks) being levelled.
        gap_write_interval: Demand writes between gap movements (psi; 100
            in the original paper — each gap move costs one extra device
            write, a 1% overhead).
    """

    n_lines: int
    gap_write_interval: int = 100

    def __post_init__(self) -> None:
        if self.n_lines <= 0:
            raise ConfigError("n_lines must be positive")
        if self.gap_write_interval <= 0:
            raise ConfigError("gap_write_interval must be positive")
        #: Physical slot currently holding the gap (in [0, n_lines]).
        self.gap = self.n_lines
        #: Number of completed full gap rotations (start-pointer value).
        self.start = 0
        self._writes_since_move = 0
        #: Extra device writes performed by gap movements.
        self.gap_moves = 0

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        """Physical slots: one spare beyond the logical lines."""
        return self.n_lines + 1

    def physical(self, logical: int) -> int:
        """Physical slot currently holding *logical*.

        The Start-Gap algebra: rotate by ``start`` modulo N, then skip
        over the gap slot (positions at or above the gap shift up one).
        """
        if not 0 <= logical < self.n_lines:
            raise ConfigError(f"logical line {logical} out of range")
        position = (logical + self.start) % self.n_lines
        if position >= self.gap:
            position += 1
        return position

    def logical(self, physical: int) -> Optional[int]:
        """Logical line stored at *physical*; None for the gap slot."""
        if not 0 <= physical < self.n_slots:
            raise ConfigError(f"physical slot {physical} out of range")
        if physical == self.gap:
            return None
        position = physical - 1 if physical > self.gap else physical
        return (position - self.start) % self.n_lines

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def record_write(self) -> Optional[int]:
        """Account one demand write.

        Returns the physical slot the gap-move *copied into* when the gap
        moved (that slot absorbed one extra device write), or None when
        the gap did not move.
        """
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_write_interval:
            return None
        self._writes_since_move = 0
        return self._move_gap()

    def _move_gap(self) -> int:
        """Advance the gap one slot; returns the slot written by the copy."""
        self.gap_moves += 1
        if self.gap == 0:
            # The hole is at slot 0: the line at the top slot is copied
            # down into it, the gap returns to the top, and the start
            # pointer advances — one full rotation is complete.
            self.gap = self.n_lines
            self.start = (self.start + 1) % self.n_lines
            return 0
        # Normal move: the line just below the gap is copied up into it.
        copied_into = self.gap
        self.gap -= 1
        return copied_into

    @property
    def rotations(self) -> int:
        """Completed full rotations of the gap through the device."""
        return self.gap_moves // self.n_slots

    def register_metrics(self, registry, prefix: str = "pcm.startgap") -> None:
        """Publish remapping progress counters into *registry*."""
        registry.gauge(f"{prefix}.gap_moves", lambda: self.gap_moves)
        registry.gauge(f"{prefix}.rotations", lambda: self.rotations)
        registry.gauge(f"{prefix}.start", lambda: self.start)
        registry.gauge(f"{prefix}.gap_slot", lambda: self.gap)

    # ------------------------------------------------------------------
    # Efficiency measurement
    # ------------------------------------------------------------------
    @staticmethod
    def leveling_efficiency(per_slot_wear: Iterable[int]) -> float:
        """Achieved fraction of the ideal uniform-wear lifetime.

        Lifetime is limited by the most-worn slot; perfect levelling
        would give every slot the average wear, so efficiency is
        ``average / max`` (1.0 = perfect, the paper assumes 0.95).
        """
        wear = list(per_slot_wear)
        if not wear:
            raise ConfigError("no wear data")
        peak = max(wear)
        if peak == 0:
            return 1.0
        return (sum(wear) / len(wear)) / peak


@dataclass
class LeveledWearSimulator:
    """Replays a logical write stream through a :class:`StartGapLeveler`
    and accumulates physical per-slot wear — the harness behind the
    wear-levelling bench."""

    leveler: StartGapLeveler
    per_slot_wear: Dict[int, int] = field(default_factory=dict)

    def write(self, logical: int) -> None:
        slot = self.leveler.physical(logical)
        self.per_slot_wear[slot] = self.per_slot_wear.get(slot, 0) + 1
        copied_into = self.leveler.record_write()
        if copied_into is not None:
            self.per_slot_wear[copied_into] = (
                self.per_slot_wear.get(copied_into, 0) + 1
            )

    def efficiency(self) -> float:
        wear = [
            self.per_slot_wear.get(slot, 0)
            for slot in range(self.leveler.n_slots)
        ]
        return StartGapLeveler.leveling_efficiency(wear)

    def total_writes(self) -> int:
        return sum(self.per_slot_wear.values())
