"""Device timing parameters (paper Table V).

All values in nanoseconds unless noted. The defaults reproduce the paper's
MLC PCM configuration: 400MHz bus (2.5ns cycles), tRCD of 48 cycles, tCAS
of 1 cycle, and per-mode write pulse times equal to the write-mode latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Memory bus clock period for the paper's 400MHz device.
BUS_CYCLE_NS = 2.5


@dataclass(frozen=True)
class PCMTimings:
    """Timing constraints of the PCM device.

    Attributes:
        t_rcd_ns: Row-to-column delay — activating a row into the row
            buffer (48 cycles = 120ns in the paper).
        t_cas_ns: Column access latency on a row-buffer hit (1 cycle).
        t_faw_ns: Four-activation window constraint.
        bus_cycle_ns: Bus clock period.
        data_burst_ns: Time to transfer one 64-byte block over the 64-bit
            bus (8 bus cycles).
        write_through: Paper's controller writes through, bypassing the row
            buffer, so writes pay the full write-pulse time but do not
            disturb the open row.
    """

    t_rcd_ns: float = 48 * BUS_CYCLE_NS
    t_cas_ns: float = 1 * BUS_CYCLE_NS
    t_faw_ns: float = 50.0
    bus_cycle_ns: float = BUS_CYCLE_NS
    data_burst_ns: float = 8 * BUS_CYCLE_NS
    write_through: bool = True

    def __post_init__(self) -> None:
        for name in ("t_rcd_ns", "t_cas_ns", "t_faw_ns", "bus_cycle_ns", "data_burst_ns"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def row_hit_read_ns(self) -> float:
        """Read service time on a row-buffer hit."""
        return self.t_cas_ns + self.data_burst_ns

    @property
    def row_miss_read_ns(self) -> float:
        """Read service time on a row-buffer miss (activate + access)."""
        return self.t_rcd_ns + self.t_cas_ns + self.data_burst_ns
