"""PCM bank model: row buffer, busy tracking and write pausing.

Banks are the unit of service concurrency inside the PCM device. Each bank
has a row buffer managed with an open-page policy; writes go *through* the
bank (bypassing the row buffer, paper Table V) and occupy it for the write
pulse time; reads occupy it for the activate/access time.

Write pausing (Qureshi et al., HPCA 2010) lets a read preempt an in-flight
write at the next SET-iteration boundary; the paused write resumes once
the read completes. This is the key mechanism through which long writes
hurt read latency — and thus why the paper's fast 3-SETs writes improve
IPC so much.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import SimulationError
from repro.pcm.timing import PCMTimings


@dataclass
class RowBuffer:
    """Open-page row buffer of one bank."""

    open_row: Optional[int] = None
    hits: int = 0
    misses: int = 0

    def access(self, row: int) -> bool:
        """Access *row*; returns True on a row-buffer hit and updates the
        open row on a miss."""
        if self.open_row == row:
            self.hits += 1
            return True
        self.misses += 1
        self.open_row = row
        return False

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish row-buffer locality counters into *registry*."""
        registry.gauge(f"{prefix}.hits", lambda: self.hits)
        registry.gauge(f"{prefix}.misses", lambda: self.misses)
        registry.derived(f"{prefix}.hit_rate", lambda: self.hit_rate)


@dataclass
class _InFlightWrite:
    """Book-keeping for a write currently occupying the bank."""

    start_ns: float
    end_ns: float
    #: Absolute times at which the write may be paused.
    boundaries_ns: Tuple[float, ...]
    pauses: int = 0


@dataclass
class Bank:
    """One PCM bank.

    The bank does not know about queues or priorities — the memory
    controller decides *what* to schedule; the bank answers *when* it can
    be serviced and tracks occupancy.
    """

    timings: PCMTimings = field(default_factory=PCMTimings)
    allow_write_pausing: bool = True
    max_pauses_per_write: int = 4

    row_buffer: RowBuffer = field(default_factory=RowBuffer)
    busy_until: float = 0.0
    reads_served: int = 0
    writes_served: int = 0
    write_pauses: int = 0
    busy_time_ns: float = 0.0
    #: Total time added to in-flight writes by reads cutting in at SET
    #: boundaries — the bank-side view of write-pause preemption.
    pause_time_ns: float = 0.0

    _in_flight_write: Optional[_InFlightWrite] = None

    def available_at(self, now: float) -> float:
        """Earliest time the bank can begin a new non-preempting operation."""
        return max(now, self.busy_until)

    def read_start_time(self, now: float) -> float:
        """Earliest time a *read* could start, exploiting write pausing."""
        if (
            self.allow_write_pausing
            and self._in_flight_write is not None
            and now < self._in_flight_write.end_ns
            and self._in_flight_write.pauses < self.max_pauses_per_write
        ):
            boundary = self._next_pause_boundary(now)
            if boundary is not None:
                return max(now, boundary)
        return self.available_at(now)

    def schedule_read(self, now: float, row: int) -> Tuple[float, float, bool]:
        """Schedule a block read of *row* at or after *now*.

        Returns ``(start, finish, row_hit)``. If a pausable write is in
        flight, the read preempts it at the next SET boundary and the write
        is pushed back by the read's service time.
        """
        write = self._in_flight_write
        paused = False
        if (
            self.allow_write_pausing
            and write is not None
            and now < write.end_ns
            and write.pauses < self.max_pauses_per_write
        ):
            boundary = self._next_pause_boundary(now)
            if boundary is not None:
                start = max(now, boundary)
                paused = True
            else:
                start = self.available_at(now)
        else:
            start = self.available_at(now)

        hit = self.row_buffer.access(row)
        service = self.timings.row_hit_read_ns if hit else self.timings.row_miss_read_ns
        finish = start + service

        if paused and write is not None:
            remaining = write.end_ns - start
            if remaining < 0:
                raise SimulationError("pause boundary after write end")
            write.end_ns = finish + remaining
            write.pauses += 1
            # Shift the not-yet-executed boundaries past the read.
            write.boundaries_ns = tuple(
                b + service if b > start else b for b in write.boundaries_ns
            )
            self.write_pauses += 1
            self.pause_time_ns += service
            self.busy_until = write.end_ns
        else:
            self.busy_until = max(self.busy_until, finish)

        self.reads_served += 1
        self.busy_time_ns += service
        return start, finish, hit

    def schedule_write(
        self,
        now: float,
        row: int,
        latency_ns: float,
        pause_boundaries_ns: Tuple[float, ...] = (),
    ) -> Tuple[float, float]:
        """Schedule a block write at or after *now*; returns (start, finish).

        *pause_boundaries_ns* are offsets from the write start at which the
        write may later be paused by a read (the write mode's SET
        boundaries).
        """
        start = self.available_at(now)
        finish = start + latency_ns
        self._in_flight_write = _InFlightWrite(
            start_ns=start,
            end_ns=finish,
            boundaries_ns=tuple(start + b for b in pause_boundaries_ns),
        )
        self.busy_until = finish
        self.writes_served += 1
        self.busy_time_ns += latency_ns
        # Write-through: the row buffer is bypassed, so the open row is
        # unchanged (paper Table V, "Misc").
        if not self.timings.write_through:
            self.row_buffer.access(row)
        return start, finish

    def write_end_time(self) -> Optional[float]:
        """Finish time of the in-flight write, if any."""
        if self._in_flight_write is None:
            return None
        return self._in_flight_write.end_ns

    def _next_pause_boundary(self, now: float) -> Optional[float]:
        """Next absolute pause point of the in-flight write at/after *now*."""
        write = self._in_flight_write
        if write is None:
            return None
        candidates = [b for b in write.boundaries_ns if b >= now and b < write.end_ns]
        return min(candidates) if candidates else None

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of *elapsed_ns* the bank spent busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_time_ns / elapsed_ns)

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish per-bank service counters into *registry*."""
        registry.gauge(f"{prefix}.reads_served", lambda: self.reads_served)
        registry.gauge(f"{prefix}.writes_served", lambda: self.writes_served)
        registry.gauge(f"{prefix}.write_pauses", lambda: self.write_pauses)
        registry.gauge(f"{prefix}.busy_time_ns", lambda: self.busy_time_ns)
        registry.gauge(f"{prefix}.pause_time_ns", lambda: self.pause_time_ns)
        self.row_buffer.register_metrics(registry, f"{prefix}.row_buffer")
