"""Write-mode table: the write latency vs. retention trade-off (Table I).

An MLC PCM write is one RESET pulse followed by a number of SET iterations.
RESET takes 100ns at 50uA regardless of what follows; each SET iteration
takes 150ns. Writes with fewer SET iterations must use a higher SET current
to reach the target band quickly, which programs a wider distribution and
thus a shorter retention (see :mod:`repro.pcm.drift`).

:class:`WriteModeTable` derives latency and retention from first
principles (the latency recurrence and the drift model) and carries the
measured per-mode current and normalised energy from the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.errors import ConfigError
from repro.pcm.drift import (
    MAX_SET_ITERATIONS,
    MIN_SET_ITERATIONS,
    DriftModel,
)

#: RESET pulse duration (ns); independent of the SET count that follows.
RESET_LATENCY_NS = 100.0
#: Duration of one SET iteration (ns).
SET_ITERATION_LATENCY_NS = 150.0
#: RESET pulse current (uA).
RESET_CURRENT_UA = 50.0

#: Per-mode SET current in uA (paper Table I).
SET_CURRENT_UA: Dict[int, float] = {3: 42.0, 4: 37.0, 5: 35.0, 6: 32.0, 7: 30.0}

#: Per-mode write energy normalised to the 7-SETs write (paper Table I).
NORMALIZED_ENERGY: Dict[int, float] = {3: 0.840, 4: 0.869, 5: 0.972, 6: 0.975, 7: 1.0}


@dataclass(frozen=True)
class WriteMode:
    """One row of the write-mode table.

    Attributes:
        n_sets: Number of SET iterations in the write.
        set_current_ua: SET pulse current in microamps.
        normalized_energy: Write energy relative to the 7-SETs write.
        retention_s: Data retention time in seconds (drift model output).
        latency_ns: Total write pulse latency in nanoseconds.
    """

    n_sets: int
    set_current_ua: float
    normalized_energy: float
    retention_s: float
    latency_ns: float

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``"7-SETs-Write"``."""
        return f"{self.n_sets}-SETs-Write"

    @property
    def set_boundaries_ns(self) -> tuple:
        """Times (ns, from write start) at which the write may be paused.

        Write pausing (Qureshi et al.) preempts a write at SET-iteration
        boundaries: after the RESET pulse and after each SET iteration.
        """
        return tuple(
            RESET_LATENCY_NS + i * SET_ITERATION_LATENCY_NS
            for i in range(self.n_sets + 1)
        )


def write_latency_ns(n_sets: int) -> float:
    """Total write latency for an *n_sets*-SETs write.

    >>> write_latency_ns(7)
    1150.0
    >>> write_latency_ns(3)
    550.0
    """
    if not MIN_SET_ITERATIONS <= n_sets <= MAX_SET_ITERATIONS:
        raise ConfigError(f"unsupported SET count: {n_sets}")
    return RESET_LATENCY_NS + n_sets * SET_ITERATION_LATENCY_NS


@dataclass
class WriteModeTable:
    """All supported write modes, derived from a :class:`DriftModel`.

    The table regenerates the paper's Table I: with the default drift
    parameters, ``table.mode(7).retention_s`` is 3054.9s and
    ``table.mode(3).retention_s`` is 2.01s (to within calibration error).
    """

    drift: DriftModel = field(default_factory=DriftModel)

    def __post_init__(self) -> None:
        self._modes: Dict[int, WriteMode] = {}
        for n in range(MIN_SET_ITERATIONS, MAX_SET_ITERATIONS + 1):
            self._modes[n] = WriteMode(
                n_sets=n,
                set_current_ua=SET_CURRENT_UA[n],
                normalized_energy=NORMALIZED_ENERGY[n],
                retention_s=self.drift.retention_seconds(n),
                latency_ns=write_latency_ns(n),
            )

    def mode(self, n_sets: int) -> WriteMode:
        """The :class:`WriteMode` with *n_sets* SET iterations."""
        try:
            return self._modes[n_sets]
        except KeyError:
            raise ConfigError(f"unsupported SET count: {n_sets}") from None

    @property
    def fast(self) -> WriteMode:
        """The short-latency-short-retention mode (3 SETs)."""
        return self._modes[MIN_SET_ITERATIONS]

    @property
    def slow(self) -> WriteMode:
        """The long-latency-long-retention mode (7 SETs)."""
        return self._modes[MAX_SET_ITERATIONS]

    def __iter__(self) -> Iterator[WriteMode]:
        return iter(self._modes[n] for n in sorted(self._modes))

    def __len__(self) -> int:
        return len(self._modes)

    def refresh_interval_s(self, n_sets: int, slack_s: Optional[float] = None) -> float:
        """Refresh interval for data written with *n_sets* SETs.

        The interval is the retention time minus a safety *slack* (default:
        0.5% of the retention, matching the paper's 2s interval against the
        2.01s retention of 3-SETs writes).
        """
        retention = self.mode(n_sets).retention_s
        if slack_s is None:
            slack_s = retention * 0.005
        if slack_s < 0 or slack_s >= retention:
            raise ConfigError(
                f"refresh slack {slack_s}s invalid for retention {retention}s"
            )
        return retention - slack_s
