"""MLC PCM device model.

This package models the phase-change-memory substrate the paper depends on:

- :mod:`repro.pcm.drift` — resistance-drift physics and the retention model;
- :mod:`repro.pcm.write_modes` — the write latency / retention trade-off
  table (paper Table I) derived from the drift model;
- :mod:`repro.pcm.timing` — device timing parameters (paper Table V);
- :mod:`repro.pcm.energy` — per-operation energy accounting;
- :mod:`repro.pcm.endurance` — wear tracking and the lifetime model;
- :mod:`repro.pcm.bank` / :mod:`repro.pcm.device` — banks, row buffers and
  the assembled multi-channel device with its self-refresh circuit.
"""

from repro.pcm.drift import DriftModel, DriftParameters
from repro.pcm.write_modes import (
    RESET_LATENCY_NS,
    SET_ITERATION_LATENCY_NS,
    WriteMode,
    WriteModeTable,
)
from repro.pcm.timing import PCMTimings
from repro.pcm.energy import EnergyModel, EnergyBreakdown
from repro.pcm.endurance import EnduranceModel, WearTracker, WearBreakdown
from repro.pcm.bank import Bank, RowBuffer
from repro.pcm.device import PCMDevice
from repro.pcm.wear_leveling import LeveledWearSimulator, StartGapLeveler

__all__ = [
    "DriftModel",
    "DriftParameters",
    "RESET_LATENCY_NS",
    "SET_ITERATION_LATENCY_NS",
    "WriteMode",
    "WriteModeTable",
    "PCMTimings",
    "EnergyModel",
    "EnergyBreakdown",
    "EnduranceModel",
    "WearTracker",
    "WearBreakdown",
    "Bank",
    "RowBuffer",
    "PCMDevice",
    "LeveledWearSimulator",
    "StartGapLeveler",
]
