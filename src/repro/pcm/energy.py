"""Per-operation energy accounting (drives the paper's Figure 10).

Energy is tracked in *normalised write-energy units*: one unit is the
energy of a single 7-SETs block write, matching the paper's Table I
normalisation. The model splits totals into demand writes, demand reads,
RRM selective refreshes, and global refreshes, so reports can show the
same stacked breakdown as Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.pcm.write_modes import WriteModeTable

#: Energy of one block read in normalised write-energy units. PCM reads
#: are roughly an order of magnitude cheaper than writes.
DEFAULT_READ_ENERGY_UNITS = 0.05


@dataclass
class EnergyBreakdown:
    """Accumulated energy, split by source, in normalised units."""

    write_energy: float = 0.0
    read_energy: float = 0.0
    rrm_refresh_energy: float = 0.0
    global_refresh_energy: float = 0.0

    @property
    def refresh_energy(self) -> float:
        """Energy of all refresh activity (RRM selective + global)."""
        return self.rrm_refresh_energy + self.global_refresh_energy

    @property
    def total(self) -> float:
        return self.write_energy + self.read_energy + self.refresh_energy

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dict (for reports and JSON export)."""
        return {
            "write": self.write_energy,
            "read": self.read_energy,
            "rrm_refresh": self.rrm_refresh_energy,
            "global_refresh": self.global_refresh_energy,
            "total": self.total,
        }


@dataclass
class EnergyModel:
    """Accumulates energy per operation class.

    The caller reports each demand write / read / refresh as it completes;
    global refreshes are reported in bulk (they are accounted analytically,
    as in the paper — see DESIGN.md substitution 4).
    """

    modes: WriteModeTable = field(default_factory=WriteModeTable)
    read_energy_units: float = DEFAULT_READ_ENERGY_UNITS
    breakdown: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    def __post_init__(self) -> None:
        if self.read_energy_units < 0:
            raise ConfigError("read energy must be non-negative")

    def record_write(self, n_sets: int, count: int = 1) -> None:
        """Account *count* demand block writes using *n_sets* SETs."""
        self._check_count(count)
        self.breakdown.write_energy += self.modes.mode(n_sets).normalized_energy * count

    def record_read(self, count: int = 1) -> None:
        """Account *count* demand block reads."""
        self._check_count(count)
        self.breakdown.read_energy += self.read_energy_units * count

    def record_rrm_refresh(self, n_sets: int, count: int = 1) -> None:
        """Account *count* RRM selective refresh writes."""
        self._check_count(count)
        energy = self.modes.mode(n_sets).normalized_energy * count
        self.breakdown.rrm_refresh_energy += energy

    def record_global_refresh(self, n_sets: int, count: int) -> None:
        """Account *count* global (self-refresh circuit) block rewrites."""
        self._check_count(count)
        energy = self.modes.mode(n_sets).normalized_energy * count
        self.breakdown.global_refresh_energy += energy

    @staticmethod
    def _check_count(count: int) -> None:
        if count < 0:
            raise ValueError(f"negative operation count: {count}")

    def register_metrics(self, registry, prefix: str = "pcm.energy") -> None:
        """Publish the energy breakdown into a telemetry registry."""
        for field_name in (
            "write_energy",
            "read_energy",
            "rrm_refresh_energy",
            "global_refresh_energy",
        ):
            registry.gauge(
                f"{prefix}.{field_name}",
                lambda f=field_name: getattr(self.breakdown, f),
            )
        registry.derived(f"{prefix}.total", lambda: self.breakdown.total)
