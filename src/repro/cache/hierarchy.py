"""Three-level cache hierarchy wiring (paper Table IV).

Per-core L1 data caches and private L2s sit above a shared L3 (the LLC).
The hierarchy turns core loads/stores into the three event streams the
rest of the system consumes:

- *memory reads*: LLC misses that must fetch from PCM;
- *memory writes*: dirty LLC victims written back to PCM;
- *LLC writes*: dirty L2 victims landing in the LLC — each generates an
  RRM LLC Write Registration carrying ``was_dirty``.

Instruction caches are not modelled: the paper's workloads are
memory-intensive SPEC2006 benchmarks whose instruction footprints fit in
the 32KB L1I, so instruction traffic never reaches the PCM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.cache import Cache, CacheConfig
from repro.errors import ConfigError
from repro.utils.units import parse_size


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry for the whole hierarchy (paper Table IV defaults)."""

    n_cores: int = 4
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=parse_size("32KB"), n_ways=4, hit_latency_cycles=2, name="L1D"
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=parse_size("256KB"), n_ways=8, hit_latency_cycles=12, name="L2"
        )
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=parse_size("6MB"), n_ways=24, hit_latency_cycles=35, name="LLC"
        )
    )

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigError("n_cores must be positive")

    @classmethod
    def scaled(cls, factor: int, n_cores: int = 4) -> "HierarchyConfig":
        """A hierarchy shrunk by *factor* (for fast tests/benchmarks)."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return cls(
            n_cores=n_cores,
            l1=CacheConfig(
                size_bytes=max(64 * 4, parse_size("32KB") // factor),
                n_ways=4, hit_latency_cycles=2, name="L1D",
            ),
            l2=CacheConfig(
                size_bytes=max(64 * 8, parse_size("256KB") // factor),
                n_ways=8, hit_latency_cycles=12, name="L2",
            ),
            llc=CacheConfig(
                size_bytes=max(64 * 24, parse_size("6MB") // factor),
                n_ways=24, hit_latency_cycles=35, name="LLC",
            ),
        )


@dataclass
class MemoryTraffic:
    """Side effects of one CPU access, to be applied by the caller.

    Attributes:
        latency_cycles: Sum of hit latencies along the lookup path (the
            PCM read latency, if any, is added by the timing model).
        memory_read_block: Block to fetch from PCM, or None on an LLC hit.
        memory_write_blocks: Dirty LLC victims to write back to PCM.
        llc_writes: (block, was_dirty) registrations for the RRM.
    """

    latency_cycles: int = 0
    memory_read_block: Optional[int] = None
    memory_write_blocks: List[int] = field(default_factory=list)
    llc_writes: List[Tuple[int, bool]] = field(default_factory=list)


class CacheHierarchy:
    """Owns the cache levels of one simulated CMP."""

    def __init__(self, config: HierarchyConfig, seed: int = 0) -> None:
        self.config = config
        self.l1 = [Cache(config.l1, seed=seed + core) for core in range(config.n_cores)]
        self.l2 = [
            Cache(config.l2, seed=seed + 100 + core) for core in range(config.n_cores)
        ]
        self.llc = Cache(config.llc, seed=seed + 1000)

    def access(self, core: int, block: int, is_write: bool) -> MemoryTraffic:
        """One load/store from *core* to *block*; returns the resulting
        traffic and the hierarchy-latency of the lookup path."""
        if not 0 <= core < self.config.n_cores:
            raise ConfigError(f"core {core} out of range")
        traffic = MemoryTraffic()

        l1_result = self.l1[core].access(block, is_write)
        traffic.latency_cycles += l1_result.latency_cycles
        if l1_result.writeback_block is not None:
            self._writeback_to_l2(core, l1_result.writeback_block, traffic)
        if l1_result.hit:
            return traffic

        l2_result = self.l2[core].access(block, is_write=False)
        traffic.latency_cycles += l2_result.latency_cycles
        if l2_result.writeback_block is not None:
            self._writeback_to_llc(l2_result.writeback_block, traffic)
        if l2_result.hit:
            return traffic

        llc_result = self.llc.access(block, is_write=False)
        traffic.latency_cycles += llc_result.latency_cycles
        if llc_result.writeback_block is not None:
            traffic.memory_write_blocks.append(llc_result.writeback_block)
        if not llc_result.hit:
            traffic.memory_read_block = block
        return traffic

    def _writeback_to_l2(self, core: int, block: int, traffic: MemoryTraffic) -> None:
        """A dirty L1 victim lands in the core's L2."""
        result = self.l2[core].write_into(block)
        if result.writeback_block is not None:
            self._writeback_to_llc(result.writeback_block, traffic)

    def _writeback_to_llc(self, block: int, traffic: MemoryTraffic) -> None:
        """A dirty L2 victim lands in the LLC — the RRM registration point."""
        result = self.llc.write_into(block)
        traffic.llc_writes.append((block, result.was_dirty))
        if result.writeback_block is not None:
            traffic.memory_write_blocks.append(result.writeback_block)

    def drain_dirty(self) -> List[int]:
        """Flush the hierarchy; returns all blocks that would be written to
        memory (used to settle statistics at end of run)."""
        written: List[int] = []
        for core in range(self.config.n_cores):
            for block in self.l1[core].dirty_blocks():
                self.l1[core].invalidate(block)
                self.l2[core].write_into(block)
            for block in self.l2[core].dirty_blocks():
                self.l2[core].invalidate(block)
                self.llc.write_into(block)
        for block in self.llc.dirty_blocks():
            self.llc.invalidate(block)
            written.append(block)
        return written

    def register_metrics(self, registry, prefix: str = "cache") -> None:
        """Publish the hierarchy's counters into a telemetry registry.

        Private levels aggregate across cores (``cache.l1.read_hits`` is
        the sum over all L1Ds); the shared LLC registers its own counters
        plus occupancy.
        """
        for level_name, caches in (("l1", self.l1), ("l2", self.l2)):
            for field_name in (
                "read_hits",
                "read_misses",
                "write_hits",
                "write_misses",
                "writebacks",
                "dirty_write_hits",
            ):
                registry.gauge(
                    f"{prefix}.{level_name}.{field_name}",
                    lambda cs=caches, f=field_name: sum(
                        getattr(c.stats, f) for c in cs
                    ),
                )
        self.llc.register_metrics(registry, f"{prefix}.llc")

    def mpki(self, core_instructions: List[int]) -> float:
        """LLC misses per thousand instructions over the whole run."""
        total_instructions = sum(core_instructions)
        if total_instructions <= 0:
            return 0.0
        return 1000.0 * self.llc.stats.misses / total_instructions
