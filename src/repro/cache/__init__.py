"""Write-back set-associative cache hierarchy (paper Table IV substrate).

The hierarchy filters CPU loads/stores into the memory traffic the RRM and
memory controller observe: LLC misses become memory reads, LLC dirty
evictions become memory writes, and writes *into* LLC entries (dirty
writebacks arriving from L2) generate the RRM's LLC Write Registrations.
"""

from repro.cache.replacement import (
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.cache.cache import Cache, CacheConfig, CacheStats, AccessResult
from repro.cache.mshr import MSHRFile
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig, MemoryTraffic

__all__ = [
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "AccessResult",
    "MSHRFile",
    "CacheHierarchy",
    "HierarchyConfig",
    "MemoryTraffic",
]
