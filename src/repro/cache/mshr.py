"""Miss Status Holding Registers.

An MSHR file bounds the number of outstanding misses a cache (or core) can
sustain and merges secondary misses to an already-outstanding block. The
paper's caches have 8/12/32 MSHRs for L1/L2/L3; in the CPU model the MSHR
bound is what limits memory-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError, SimulationError


@dataclass
class MSHRFile:
    """Tracks outstanding misses by block index."""

    capacity: int
    name: str = "mshr"

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        self._outstanding: Dict[int, List[Callable[[], None]]] = {}
        self.allocations = 0
        self.merges = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._outstanding)

    @property
    def full(self) -> bool:
        return len(self._outstanding) >= self.capacity

    def outstanding(self, block: int) -> bool:
        """Whether a miss to *block* is already in flight."""
        return block in self._outstanding

    def allocate(self, block: int, waiter: Optional[Callable[[], None]] = None) -> bool:
        """Register a miss to *block*.

        Returns True if this is a *primary* miss (the caller must issue the
        memory read); False if it merged into an existing entry. Raises if
        the file is full and the block is not already outstanding — the
        caller must check :attr:`full` / :meth:`outstanding` first.
        """
        if block in self._outstanding:
            self.merges += 1
            if waiter is not None:
                self._outstanding[block].append(waiter)
            return False
        if self.full:
            raise SimulationError(f"{self.name} full: unchecked allocate")
        self._outstanding[block] = [waiter] if waiter is not None else []
        self.allocations += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._outstanding))
        return True

    def complete(self, block: int) -> List[Callable[[], None]]:
        """Retire the miss to *block*; returns the waiters to wake."""
        try:
            waiters = self._outstanding.pop(block)
        except KeyError:
            raise SimulationError(f"{self.name}: completing unknown miss {block}") from None
        return waiters

    def can_accept(self, block: int) -> bool:
        """Whether a miss to *block* can be tracked (free slot or merge)."""
        return block in self._outstanding or not self.full

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Publish MSHR counters and occupancy into a telemetry registry."""
        prefix = prefix or f"cache.{self.name}"
        registry.gauge(f"{prefix}.allocations", lambda: self.allocations)
        registry.gauge(f"{prefix}.merges", lambda: self.merges)
        registry.gauge(f"{prefix}.peak_occupancy", lambda: self.peak_occupancy)
        registry.gauge(f"{prefix}.occupancy", lambda: len(self._outstanding))
