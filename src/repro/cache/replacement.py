"""Replacement policies for set-associative caches.

Policies operate on way indices within one set, so the cache can swap
policies without changing its storage layout. LRU is the paper's policy
for both caches and the RRM; random and tree-PLRU are provided for
sensitivity experiments.
"""

from __future__ import annotations

import abc
import random
from typing import List

from repro.errors import ConfigError


class ReplacementPolicy(abc.ABC):
    """Tracks recency state for one cache set of ``n_ways`` ways."""

    def __init__(self, n_ways: int) -> None:
        if n_ways <= 0:
            raise ConfigError(f"n_ways must be positive, got {n_ways}")
        self.n_ways = n_ways

    @abc.abstractmethod
    def touch(self, way: int) -> None:
        """Record an access to *way*."""

    @abc.abstractmethod
    def victim(self, valid_ways: List[bool]) -> int:
        """Pick the way to evict. Invalid ways are preferred by the caller;
        this is only consulted when the set is full."""

    def reset(self, way: int) -> None:
        """Way was invalidated; default: nothing to do."""


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via monotonically increasing stamps."""

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        self._clock = 0
        self._stamps = [0] * n_ways

    def touch(self, way: int) -> None:
        self._clock += 1
        self._stamps[way] = self._clock

    def victim(self, valid_ways: List[bool]) -> int:
        return min(range(self.n_ways), key=lambda w: self._stamps[w])

    def reset(self, way: int) -> None:
        self._stamps[way] = 0


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    def __init__(self, n_ways: int, seed: int = 0) -> None:
        super().__init__(n_ways)
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        pass

    def victim(self, valid_ways: List[bool]) -> int:
        return self._rng.randrange(self.n_ways)


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two way count.

    For non-power-of-two associativities the tree covers the next power of
    two and out-of-range leaves fall back to their in-range neighbour.
    """

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        self._leaves = 1
        while self._leaves < n_ways:
            self._leaves *= 2
        self._bits = [False] * max(1, self._leaves - 1)

    def touch(self, way: int) -> None:
        node = 0
        low, high = 0, self._leaves
        while high - low > 1:
            mid = (low + high) // 2
            went_right = way >= mid
            # Point the bit *away* from the touched way.
            self._bits[node] = not went_right
            node = 2 * node + (2 if went_right else 1)
            if went_right:
                low = mid
            else:
                high = mid

    def victim(self, valid_ways: List[bool]) -> int:
        node = 0
        low, high = 0, self._leaves
        while high - low > 1:
            mid = (low + high) // 2
            go_right = self._bits[node]
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                low = mid
            else:
                high = mid
        return min(low, self.n_ways - 1)


def make_policy(name: str, n_ways: int, seed: int = 0) -> ReplacementPolicy:
    """Factory: ``"lru"``, ``"random"`` or ``"plru"``."""
    name = name.lower()
    if name == "lru":
        return LRUPolicy(n_ways)
    if name == "random":
        return RandomPolicy(n_ways, seed=seed)
    if name == "plru":
        return TreePLRUPolicy(n_ways)
    raise ConfigError(f"unknown replacement policy: {name!r}")
