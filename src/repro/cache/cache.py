"""Generic write-back, write-allocate set-associative cache.

The cache operates on 64-byte block indices (byte address >> 6). An access
returns what happened (hit/miss), which block was written back (if a dirty
victim was evicted), and — for writes — whether the written line was
already dirty, which is exactly the information the RRM's LLC Write
Registration needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.errors import ConfigError
from repro.pcm.device import BLOCK_BYTES
from repro.utils.mathx import is_power_of_two
from repro.utils.units import parse_size


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level."""

    size_bytes: int
    n_ways: int
    hit_latency_cycles: int = 1
    policy: str = "lru"
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % BLOCK_BYTES:
            raise ConfigError(f"{self.name}: size must be a positive multiple of 64B")
        if self.n_ways <= 0:
            raise ConfigError(f"{self.name}: ways must be positive")
        if self.size_bytes % (self.n_ways * BLOCK_BYTES):
            raise ConfigError(f"{self.name}: size not divisible into {self.n_ways} ways")
        if not is_power_of_two(self.n_sets):
            raise ConfigError(
                f"{self.name}: set count {self.n_sets} is not a power of two"
            )
        if self.hit_latency_cycles < 0:
            raise ConfigError(f"{self.name}: negative hit latency")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.n_ways * BLOCK_BYTES)

    @classmethod
    def parse(cls, size: "str | int", n_ways: int, **kwargs) -> "CacheConfig":
        """Build from a human-readable size, e.g. ``CacheConfig.parse("6MB", 24)``."""
        return cls(size_bytes=parse_size(size), n_ways=n_ways, **kwargs)


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    #: Writes that landed on an already-dirty line (RRM registration input).
    dirty_write_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish this cache's counters into a telemetry registry."""
        for field_name in (
            "read_hits",
            "read_misses",
            "write_hits",
            "write_misses",
            "writebacks",
            "dirty_write_hits",
        ):
            registry.gauge(
                f"{prefix}.{field_name}",
                lambda f=field_name: getattr(self, f),
            )
        registry.derived(f"{prefix}.miss_rate", lambda: self.miss_rate)


@dataclass
class AccessResult:
    """Outcome of one cache access.

    Attributes:
        hit: Whether the block was present.
        writeback_block: Block index written back to the next level (a
            dirty victim), or None.
        was_dirty: For writes that hit (or write-allocated lines being
            rewritten), whether the line was dirty *before* this write.
        latency_cycles: Hit latency of this level (the caller accumulates
            across levels).
    """

    hit: bool
    writeback_block: Optional[int] = None
    was_dirty: bool = False
    latency_cycles: int = 0


class _Line:
    __slots__ = ("block", "dirty")

    def __init__(self, block: int, dirty: bool) -> None:
        self.block = block
        self.dirty = dirty


class Cache:
    """One cache level over block indices."""

    def __init__(self, config: CacheConfig, seed: int = 0) -> None:
        self.config = config
        self.stats = CacheStats()
        self._sets: List[Dict[int, int]] = [dict() for _ in range(config.n_sets)]
        self._lines: List[List[Optional[_Line]]] = [
            [None] * config.n_ways for _ in range(config.n_sets)
        ]
        self._policies: List[ReplacementPolicy] = [
            make_policy(config.policy, config.n_ways, seed=seed + i)
            for i in range(config.n_sets)
        ]

    def _set_index(self, block: int) -> int:
        return block & (self.config.n_sets - 1)

    def contains(self, block: int) -> bool:
        """Presence check without touching replacement state."""
        return block in self._sets[self._set_index(block)]

    def is_dirty(self, block: int) -> bool:
        """Whether *block* is present and dirty."""
        set_index = self._set_index(block)
        way = self._sets[set_index].get(block)
        if way is None:
            return False
        line = self._lines[set_index][way]
        return line is not None and line.dirty

    def access(self, block: int, is_write: bool) -> AccessResult:
        """Perform a read or write access to *block*.

        Misses allocate (write-allocate); dirty victims surface as
        ``writeback_block`` for the caller to push to the next level.
        """
        set_index = self._set_index(block)
        bucket = self._sets[set_index]
        policy = self._policies[set_index]

        way = bucket.get(block)
        if way is not None:
            line = self._lines[set_index][way]
            assert line is not None
            policy.touch(way)
            was_dirty = line.dirty
            if is_write:
                self.stats.write_hits += 1
                if was_dirty:
                    self.stats.dirty_write_hits += 1
                line.dirty = True
            else:
                self.stats.read_hits += 1
            return AccessResult(
                hit=True,
                was_dirty=was_dirty,
                latency_cycles=self.config.hit_latency_cycles,
            )

        # Miss: allocate, possibly evicting a dirty victim.
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1

        writeback = self._allocate(set_index, block, dirty=is_write)
        return AccessResult(
            hit=False,
            writeback_block=writeback,
            was_dirty=False,
            latency_cycles=self.config.hit_latency_cycles,
        )

    def fill(self, block: int, dirty: bool = False) -> Optional[int]:
        """Insert *block* (e.g. a writeback arriving from an upper level).

        Returns the dirty victim's block index, if one was evicted. Filling
        a present block merges state (dirty is sticky).
        """
        set_index = self._set_index(block)
        way = self._sets[set_index].get(block)
        if way is not None:
            line = self._lines[set_index][way]
            assert line is not None
            self._policies[set_index].touch(way)
            line.dirty = line.dirty or dirty
            return None
        return self._allocate(set_index, block, dirty=dirty)

    def write_into(self, block: int) -> AccessResult:
        """A dirty writeback from the level above lands in this cache.

        This is the "LLC write" of the paper when applied to the last
        level: the result's ``was_dirty`` says whether the written line was
        already dirty (the streaming filter input), and ``hit`` whether the
        line was present at all.
        """
        set_index = self._set_index(block)
        way = self._sets[set_index].get(block)
        if way is not None:
            line = self._lines[set_index][way]
            assert line is not None
            self._policies[set_index].touch(way)
            was_dirty = line.dirty
            line.dirty = True
            self.stats.write_hits += 1
            if was_dirty:
                self.stats.dirty_write_hits += 1
            return AccessResult(
                hit=True, was_dirty=was_dirty,
                latency_cycles=self.config.hit_latency_cycles,
            )
        self.stats.write_misses += 1
        writeback = self._allocate(set_index, block, dirty=True)
        return AccessResult(
            hit=False, writeback_block=writeback, was_dirty=False,
            latency_cycles=self.config.hit_latency_cycles,
        )

    def invalidate(self, block: int) -> bool:
        """Drop *block* if present. Returns True if it was dirty (the
        caller is responsible for the writeback)."""
        set_index = self._set_index(block)
        way = self._sets[set_index].pop(block, None)
        if way is None:
            return False
        line = self._lines[set_index][way]
        self._lines[set_index][way] = None
        self._policies[set_index].reset(way)
        return line is not None and line.dirty

    def dirty_blocks(self) -> List[int]:
        """All dirty blocks currently resident (for drain/flush)."""
        result = []
        for ways in self._lines:
            for line in ways:
                if line is not None and line.dirty:
                    result.append(line.block)
        return result

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Publish stats plus live occupancy into a telemetry registry."""
        prefix = prefix or f"cache.{self.config.name}"
        self.stats.register_metrics(registry, prefix)
        registry.gauge(f"{prefix}.occupancy", lambda: self.occupancy)

    def _allocate(self, set_index: int, block: int, dirty: bool) -> Optional[int]:
        bucket = self._sets[set_index]
        lines = self._lines[set_index]
        policy = self._policies[set_index]

        # Prefer a free way.
        way = next((w for w in range(self.config.n_ways) if lines[w] is None), None)
        writeback = None
        if way is None:
            way = policy.victim([line is not None for line in lines])
            victim = lines[way]
            assert victim is not None
            del bucket[victim.block]
            if victim.dirty:
                writeback = victim.block
                self.stats.writebacks += 1

        lines[way] = _Line(block, dirty)
        bucket[block] = way
        policy.touch(way)
        return writeback
