"""Retention-integrity checking.

The scheduler-level deadline counter (``ControllerStats.retention_violations``)
catches refreshes that complete *late*. This module catches the stronger
failure: data that *expired* — a block whose stored value drifted out of
its band before it was rewritten, refreshed or read.

:class:`RetentionIntegrityChecker` observes every completed memory
operation and keeps, per block, the mode and completion time of the most
recent write. A violation is recorded when

- a block is **read** after its last write's retention has elapsed, or
- a block is **rewritten** after having been expired (the stale window
  existed even though nobody observed it), or
- at **end of run**, a live block's age exceeds its retention.

Slow-mode writes are additionally protected by the device's global
self-refresh circuit: their effective age is capped by the global refresh
interval, so only short-retention (fast-mode) data can realistically
expire — exactly the data the RRM's selective refresh must cover. With
``RRMConfig.selective_refresh_enabled=False`` (fault injection), the
checker reports the expiries the RRM would otherwise have prevented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memctrl.request import MemRequest, RequestType
from repro.pcm.write_modes import WriteModeTable


@dataclass
class RetentionViolation:
    """One detected data-expiry event."""

    block: int
    kind: str  # "read-expired", "stale-overwrite", "expired-at-end"
    age_s: float
    retention_s: float
    n_sets: int


@dataclass
class RetentionIntegrityChecker:
    """Tracks per-block write recency and flags expired data.

    Attach to a system with::

        checker = RetentionIntegrityChecker(system.modes,
                                            global_interval_s=...)
        system.controller.add_completion_listener(checker.on_completion)
        ...run...
        checker.finalize(system.sim.now)

    Args:
        modes: The device's (possibly drift-scaled) write-mode table.
        global_refresh_interval_s: Interval of the built-in self-refresh
            circuit, capping the effective age of slow-mode data. None
            disables the cap (strictest checking).
    """

    modes: WriteModeTable
    global_refresh_interval_s: Optional[float] = None
    violations: List[RetentionViolation] = field(default_factory=list)
    checks_performed: int = 0
    #: block -> (n_sets, completion time ns)
    _last_write: Dict[int, Tuple[int, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def on_completion(self, request: MemRequest) -> None:
        """Completion listener for the memory controller."""
        finish = request.finish_time_ns
        assert finish is not None
        if request.rtype is RequestType.READ:
            self._check(request.block, finish, kind="read-expired")
        else:
            assert request.n_sets is not None
            self._check(request.block, finish, kind="stale-overwrite")
            self._last_write[request.block] = (request.n_sets, finish)

    def finalize(self, now_ns: float) -> List[RetentionViolation]:
        """End-of-run sweep: every live block must still be valid."""
        for block in list(self._last_write):
            self._check(block, now_ns, kind="expired-at-end")
        return self.violations

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def tracked_blocks(self) -> int:
        return len(self._last_write)

    # ------------------------------------------------------------------
    def _check(self, block: int, now_ns: float, kind: str) -> None:
        record = self._last_write.get(block)
        if record is None:
            return
        n_sets, written_ns = record
        self.checks_performed += 1
        age_s = (now_ns - written_ns) / 1e9
        effective_age = age_s
        if (
            self.global_refresh_interval_s is not None
            and n_sets == self.modes.slow.n_sets
        ):
            # Slow data is rewritten by the self-refresh circuit at least
            # once per interval, so its drift age is capped.
            effective_age = min(age_s, self.global_refresh_interval_s)
        retention = self.modes.mode(n_sets).retention_s
        if effective_age > retention:
            self.violations.append(
                RetentionViolation(
                    block=block,
                    kind=kind,
                    age_s=age_s,
                    retention_s=retention,
                    n_sets=n_sets,
                )
            )
            # One report per stale window: re-arm on the next write.
            del self._last_write[block]
