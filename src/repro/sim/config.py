"""System configuration (paper Tables IV and V).

Two stock configurations are provided:

- :meth:`SystemConfig.paper` — the paper's full-scale setup: 4 cores at
  2GHz, 8GB of MLC PCM over 4 channels x 16 banks, 5 simulated seconds,
  real drift constants. Feasible event counts make this a smoke-test
  configuration in pure Python; it exists so the scaled runs have an
  explicit anchor.
- :meth:`SystemConfig.scaled` — the default experiment configuration: the
  memory system width, CPU frequency, footprints and drift timescale are
  all shrunk together so that per-bank contention, refresh-interval counts
  and decay-window counts per run match the paper's (see DESIGN.md,
  substitution 3), at ~1000x fewer events.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import RRMConfig
from repro.cpu.core_model import CoreParams
from repro.errors import ConfigError
from repro.pcm.device import BLOCK_BYTES
from repro.utils.mathx import is_power_of_two
from repro.utils.units import parse_size


@dataclass(frozen=True)
class MemoryConfig:
    """MLC PCM memory system parameters (paper Table V)."""

    size_bytes: int = parse_size("8GB")
    n_channels: int = 4
    banks_per_channel: int = 16
    row_buffer_bytes: int = 1024
    refresh_queue_capacity: int = 64
    read_queue_capacity: int = 32
    write_queue_capacity: int = 64
    endurance_writes: int = 5_000_000
    wear_leveling_efficiency: float = 0.95
    allow_write_pausing: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % BLOCK_BYTES:
            raise ConfigError("memory size must be a positive multiple of 64B")
        if not is_power_of_two(self.n_channels):
            raise ConfigError("channel count must be a power of two")
        if not is_power_of_two(self.banks_per_channel):
            raise ConfigError("bank count must be a power of two")
        for cap in (
            self.refresh_queue_capacity,
            self.read_queue_capacity,
            self.write_queue_capacity,
        ):
            if cap <= 0:
                raise ConfigError("queue capacities must be positive")

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // BLOCK_BYTES


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build and run one simulated system."""

    memory: MemoryConfig = field(default_factory=MemoryConfig)
    cores: CoreParams = field(default_factory=CoreParams)
    n_cores: int = 4
    rrm: RRMConfig = field(default_factory=RRMConfig)
    #: Nominal LLC capacity — the RRM coverage-rate anchor (paper: 6MB).
    llc_bytes: int = parse_size("6MB")
    #: Drift acceleration (1.0 = real constants). Retention times, refresh
    #: intervals and decay periods all shrink by this factor; the lifetime
    #: model converts refresh rates back to the real timescale.
    drift_scale: float = 1.0
    #: Simulated duration in (drift-scaled) seconds.
    duration_s: float = 5.0
    #: Workload footprint scale relative to the profiles' nominal region
    #: counts (1.0 = nominal).
    footprint_scale: float = 1.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigError("n_cores must be positive")
        if self.drift_scale <= 0:
            raise ConfigError("drift_scale must be positive")
        if self.duration_s <= 0:
            raise ConfigError("duration must be positive")
        if self.footprint_scale <= 0:
            raise ConfigError("footprint_scale must be positive")
        if self.llc_bytes <= 0:
            raise ConfigError("llc_bytes must be positive")

    @property
    def virtual_duration_s(self) -> float:
        """Duration on the paper's (unscaled) timescale."""
        return self.duration_s * self.drift_scale

    # ------------------------------------------------------------------
    # Stock configurations
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, seed: int = 1) -> "SystemConfig":
        """The full-scale configuration of paper Tables IV/V."""
        return cls(seed=seed)

    @classmethod
    def scaled(
        cls,
        seed: int = 1,
        duration_s: Optional[float] = None,
        drift_scale: float = 50.0,
    ) -> "SystemConfig":
        """The default experiment configuration (~1000x fewer events).

        Scaling keeps three dimensionless quantities at paper values:
        per-bank utilisation (traffic and bank count shrink together, via
        the reduced core frequency), refresh intervals per run, and decay
        windows per run (drift scale and duration shrink together).
        """
        if duration_s is None:
            duration_s = 5.0 / drift_scale
        return cls(
            memory=MemoryConfig(
                size_bytes=parse_size("4GB"),
                n_channels=1,
                banks_per_channel=2,
                read_queue_capacity=32,
                write_queue_capacity=64,
                refresh_queue_capacity=64,
            ),
            cores=CoreParams(freq_ghz=0.125, base_cpi=0.5, mlp=16),
            n_cores=4,
            # RRM scaled with the notional LLC: 16 sets x 24 ways x 4KB =
            # 1.5MB coverage = 4x a 384KB LLC. The refresh slack is 10% of
            # the fast retention (paper: 0.5%) because the narrow scaled
            # memory drains each refresh burst more slowly (DESIGN.md).
            rrm=RRMConfig(n_sets=16, n_ways=24, refresh_slack_fraction=0.10),
            llc_bytes=parse_size("384KB"),
            drift_scale=drift_scale,
            duration_s=duration_s,
            # Footprints shrink with the memory-system width so the RRM's
            # refresh bursts cost the same bandwidth share as at paper
            # scale (hot-set size and bank count scale together).
            footprint_scale=1.0 / 16.0,
            seed=seed,
        )

    @classmethod
    def tiny(cls, seed: int = 1) -> "SystemConfig":
        """A minimal configuration for unit/integration tests."""
        return cls(
            memory=MemoryConfig(
                size_bytes=parse_size("256MB"),
                n_channels=1,
                banks_per_channel=2,
                read_queue_capacity=8,
                write_queue_capacity=16,
                refresh_queue_capacity=16,
            ),
            cores=CoreParams(freq_ghz=0.125, base_cpi=0.5, mlp=8),
            n_cores=2,
            # 128KB LLC keeps coverage-rate variants at power-of-two set
            # counts (sets = 4 x rate with 8 ways of 4KB regions).
            rrm=RRMConfig(n_sets=4, n_ways=8, refresh_slack_fraction=0.10),
            llc_bytes=parse_size("128KB"),
            drift_scale=200.0,
            duration_s=0.02,
            footprint_scale=1.0 / 32.0,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_rrm(self, rrm: RRMConfig) -> "SystemConfig":
        return replace(self, rrm=rrm)

    def with_seed(self, seed: int) -> "SystemConfig":
        return replace(self, seed=seed)

    def with_duration(self, duration_s: float) -> "SystemConfig":
        return replace(self, duration_s=duration_s)
