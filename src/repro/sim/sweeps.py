"""Parameter-sweep helpers: the paper's sensitivity studies as a library.

The benchmark harness drives these sweeps through its own cache; this
module exposes them as plain functions so users (and the CLI's
``sensitivity`` command) can run them directly:

- :func:`hot_threshold_sweep` — paper Section VI-D / Figure 11;
- :func:`coverage_sweep` — Section VI-E / Figure 12;
- :func:`entry_size_sweep` — Section VI-F / Figure 13.

Every sweep returns :class:`SweepPoint` rows, each carrying the variant
label, the RRM result and its speedup against a shared Static-7 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.runner import run_workload
from repro.sim.schemes import Scheme
from repro.utils.mathx import geomean


@dataclass
class SweepPoint:
    """One variant of a sensitivity sweep, aggregated over workloads."""

    label: str
    config: SystemConfig
    results: Dict[str, SimResult]
    baselines: Dict[str, SimResult]

    @property
    def speedup(self) -> float:
        """Geomean IPC speedup over the Static-7 baseline."""
        return geomean(
            [
                self.results[w].ipc / self.baselines[w].ipc
                for w in self.results
            ]
        )

    @property
    def lifetime_years(self) -> float:
        return geomean([r.lifetime_years for r in self.results.values()])

    @property
    def fast_write_fraction(self) -> float:
        values = [r.fast_write_fraction for r in self.results.values()]
        return sum(values) / len(values)


def _run_sweep(
    base: SystemConfig,
    workloads: Sequence[str],
    variants: Iterable,
    label_of: Callable,
    config_of: Callable,
    progress: Optional[Callable] = None,
) -> List[SweepPoint]:
    if not workloads:
        raise ConfigError("sweep needs at least one workload")
    baselines = {
        w: run_workload(base, w, Scheme.STATIC_7) for w in workloads
    }
    points = []
    for variant in variants:
        config = config_of(variant)
        results = {}
        for workload in workloads:
            results[workload] = run_workload(config, workload, Scheme.RRM)
            if progress is not None:
                progress(label_of(variant), workload)
        points.append(
            SweepPoint(
                label=label_of(variant),
                config=config,
                results=results,
                baselines=baselines,
            )
        )
    return points


def hot_threshold_sweep(
    base: SystemConfig,
    workloads: Sequence[str],
    thresholds: Sequence[int] = (8, 16, 32, 64),
    progress=None,
) -> List[SweepPoint]:
    """Vary the RRM's aggressiveness (paper Fig. 11)."""
    return _run_sweep(
        base,
        workloads,
        thresholds,
        label_of=lambda t: f"hot_threshold={t}",
        config_of=lambda t: base.with_rrm(base.rrm.with_hot_threshold(t)),
        progress=progress,
    )


def coverage_sweep(
    base: SystemConfig,
    workloads: Sequence[str],
    rates: Sequence[int] = (2, 4, 8, 16),
    progress=None,
) -> List[SweepPoint]:
    """Vary the RRM's LLC coverage rate (paper Fig. 12)."""
    return _run_sweep(
        base,
        workloads,
        rates,
        label_of=lambda r: f"coverage={r}x",
        config_of=lambda r: base.with_rrm(
            base.rrm.with_coverage_rate(base.llc_bytes, r)
        ),
        progress=progress,
    )


def entry_size_sweep(
    base: SystemConfig,
    workloads: Sequence[str],
    region_sizes: Sequence[int] = (2048, 4096, 8192, 16384),
    progress=None,
) -> List[SweepPoint]:
    """Vary the Retention Region size at constant coverage (paper Fig. 13)."""
    return _run_sweep(
        base,
        workloads,
        region_sizes,
        label_of=lambda size: f"region={size}B",
        config_of=lambda size: base.with_rrm(base.rrm.with_region_bytes(size)),
        progress=progress,
    )


def sweep_table(points: Sequence[SweepPoint]) -> List[List[object]]:
    """Rows for :func:`repro.analysis.report.format_table`."""
    return [
        [
            point.label,
            point.speedup,
            point.lifetime_years,
            f"{point.fast_write_fraction:.0%}",
        ]
        for point in points
    ]
