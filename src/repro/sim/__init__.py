"""Full-system simulation: configuration, schemes, assembly and metrics."""

from repro.sim.config import MemoryConfig, SystemConfig
from repro.sim.schemes import Scheme, scheme_from_name, all_schemes
from repro.sim.metrics import SimResult, WearReport, EnergyReport
from repro.sim.system import System
from repro.sim.runner import ExperimentRunner, run_workload
from repro.sim.sweeps import (
    SweepPoint,
    coverage_sweep,
    entry_size_sweep,
    hot_threshold_sweep,
    sweep_table,
)
from repro.sim.validation import RetentionIntegrityChecker, RetentionViolation

__all__ = [
    "SweepPoint",
    "coverage_sweep",
    "entry_size_sweep",
    "hot_threshold_sweep",
    "sweep_table",
    "RetentionIntegrityChecker",
    "RetentionViolation",
    "MemoryConfig",
    "SystemConfig",
    "Scheme",
    "scheme_from_name",
    "all_schemes",
    "SimResult",
    "WearReport",
    "EnergyReport",
    "System",
    "ExperimentRunner",
    "run_workload",
]
