"""Experiment orchestration: sweeps over workloads and schemes.

Runs are independent, so the runner can optionally fan them out over a
process pool. Results are keyed by ``(workload, scheme)`` and exposed with
geometric-mean helpers matching the paper's reporting.
"""

from __future__ import annotations

import concurrent.futures
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.schemes import Scheme, all_schemes
from repro.sim.system import System
from repro.utils.mathx import geomean
from repro.workloads.mixes import all_workload_names

ResultKey = Tuple[str, Scheme]


def run_workload(
    config: SystemConfig,
    workload: str,
    scheme: Scheme,
    *,
    track_wear_per_block: bool = False,
    max_events: Optional[int] = None,
) -> SimResult:
    """Build and run one system; the basic unit of every experiment."""
    system = System(
        config, workload, scheme, track_wear_per_block=track_wear_per_block
    )
    return system.run(max_events=max_events)


def _run_job(args) -> "tuple[str, str, SimResult]":
    """Process-pool entry point (must be module-level for pickling)."""
    config, workload, scheme_value, max_events = args
    scheme = Scheme(scheme_value)
    result = run_workload(config, workload, scheme, max_events=max_events)
    return workload, scheme_value, result


class ExperimentRunner:
    """Sweeps workloads x schemes and aggregates results."""

    def __init__(
        self,
        config: SystemConfig,
        workloads: Optional[Iterable[str]] = None,
        schemes: Optional[Iterable[Scheme]] = None,
        *,
        max_events: Optional[int] = None,
        n_workers: int = 1,
    ) -> None:
        self.config = config
        self.workloads = list(workloads) if workloads else all_workload_names()
        self.schemes = list(schemes) if schemes else all_schemes()
        self.max_events = max_events
        self.n_workers = max(1, n_workers)
        self.results: Dict[ResultKey, SimResult] = {}

    # ------------------------------------------------------------------
    def run_all(self, progress=None) -> Dict[ResultKey, SimResult]:
        """Run every (workload, scheme) pair not yet cached.

        Args:
            progress: Optional callable ``(workload, scheme, result)``
                invoked after each run (e.g. to print a line).
        """
        jobs = [
            (self.config, workload, scheme.value, self.max_events)
            for workload in self.workloads
            for scheme in self.schemes
            if (workload, scheme) not in self.results
        ]
        if not jobs:
            return self.results

        if self.n_workers == 1:
            for config, workload, scheme_value, max_events in jobs:
                scheme = Scheme(scheme_value)
                result = run_workload(
                    config, workload, scheme, max_events=max_events
                )
                self.results[(workload, scheme)] = result
                if progress is not None:
                    progress(workload, scheme, result)
        else:
            with concurrent.futures.ProcessPoolExecutor(self.n_workers) as pool:
                for workload, scheme_value, result in pool.map(_run_job, jobs):
                    scheme = Scheme(scheme_value)
                    self.results[(workload, scheme)] = result
                    if progress is not None:
                        progress(workload, scheme, result)
        return self.results

    # ------------------------------------------------------------------
    # Aggregation (the paper's reporting conventions)
    # ------------------------------------------------------------------
    def result(self, workload: str, scheme: Scheme) -> SimResult:
        try:
            return self.results[(workload, scheme)]
        except KeyError:
            raise ConfigError(
                f"no result for ({workload}, {scheme.value}); run run_all() first"
            ) from None

    def ipc_series(self, scheme: Scheme) -> List[float]:
        return [self.result(w, scheme).ipc for w in self.workloads]

    def normalized_ipc(self, scheme: Scheme, baseline: Scheme) -> List[float]:
        """Per-workload IPC normalised to *baseline* (Figures 2 and 7)."""
        return [
            self.result(w, scheme).ipc / self.result(w, baseline).ipc
            for w in self.workloads
        ]

    def geomean_ipc(self, scheme: Scheme) -> float:
        return geomean(self.ipc_series(scheme))

    def geomean_speedup(self, scheme: Scheme, baseline: Scheme) -> float:
        return geomean(self.normalized_ipc(scheme, baseline))

    def lifetime_series(self, scheme: Scheme) -> List[float]:
        return [self.result(w, scheme).lifetime_years for w in self.workloads]

    def geomean_lifetime(self, scheme: Scheme) -> float:
        return geomean(self.lifetime_series(scheme))

    # ------------------------------------------------------------------
    def save_json(self, path) -> None:
        """Persist all results as JSON (one record per run)."""
        records = [result.as_dict() for result in self.results.values()]
        Path(path).write_text(json.dumps(records, indent=2), encoding="utf-8")
