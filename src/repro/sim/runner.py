"""Experiment orchestration: sweeps over workloads and schemes.

Runs are independent, so the runner fans them out through the
:mod:`repro.resilience` supervisor: each (workload, scheme) job gets a
per-attempt wall-clock timeout, bounded deterministic retries, and crash
isolation, so one bad job degrades to a structured :class:`FailedRun`
instead of aborting the sweep. With a ``journal_path`` every settled job
is checkpointed to an append-only JSONL journal, and :meth:`resume`
restarts an interrupted sweep from its surviving results. Aggregation
helpers follow the paper's reporting conventions and tolerate sweeps
with failed cells.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CheckpointCorruptError, ConfigError
from repro.resilience import (
    FailedRun,
    FaultPlan,
    Job,
    JobSupervisor,
    ResultJournal,
    RetryPolicy,
)
from repro.resilience.journal import sweep_fingerprint
from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.schemes import Scheme, all_schemes
from repro.sim.system import System
from repro.telemetry import TelemetryConfig
from repro.utils.persist import atomic_write_text
from repro.telemetry.trace import NULL_TRACER
from repro.utils.mathx import geomean
from repro.workloads.mixes import all_workload_names

ResultKey = Tuple[str, Scheme]


def run_workload(
    config: SystemConfig,
    workload: str,
    scheme: Scheme,
    *,
    track_wear_per_block: bool = False,
    max_events: Optional[int] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> SimResult:
    """Build and run one system; the basic unit of every experiment."""
    system = System(
        config,
        workload,
        scheme,
        track_wear_per_block=track_wear_per_block,
        telemetry=telemetry,
    )
    return system.run(max_events=max_events)


def _run_job(config, workload, scheme_value, max_events) -> SimResult:
    """Supervised-job entry point (must be module-level for pickling)."""
    return run_workload(
        config, workload, Scheme(scheme_value), max_events=max_events
    )


def _validate_sim_result(key, value) -> Optional[str]:
    """Result validation run supervisor-side; non-None marks corruption."""
    workload, scheme_value = key
    if not isinstance(value, SimResult):
        return f"expected a SimResult, got {type(value).__name__}"
    if value.workload != workload or value.scheme.value != scheme_value:
        return (
            f"result is for ({value.workload}, {value.scheme.value}), "
            f"not ({workload}, {scheme_value})"
        )
    if not math.isfinite(value.ipc) or value.ipc < 0:
        return f"non-finite or negative IPC: {value.ipc}"
    return None


class ExperimentRunner:
    """Sweeps workloads x schemes and aggregates results.

    Args:
        timeout_s: optional per-attempt wall-clock limit per job.
        retry: retry policy for failed jobs (default: 2 retries with
            exponential backoff and seeded jitter).
        journal_path: optional JSONL checkpoint journal; every settled
            job is appended atomically so a crashed sweep can resume.
        n_jobs: when > 1, the sweep runs on the sharded fabric
            (:class:`~repro.fabric.executor.FabricExecutor`): N worker
            processes share the journal as a work-stealing queue.
            Results are bit-identical to ``n_jobs=1`` for the same
            seeds. Distinct from *n_workers*, which sizes the serial
            supervisor's crash-isolation subprocess pool.
        lease_s: fabric claim lease duration (ignored serially).
        ledger_path: optional run ledger; fabric workers append their
            cells to per-worker shards which are merged deterministically
            when the sweep completes (ignored serially — the CLI appends
            serial sweeps itself).
        profile_path: optional sampling-profile artifact (fabric mode
            only): each worker samples its own stacks and the merged
            profile lands here when the sweep completes. Ignored
            serially — serial cells run inside supervisor subprocesses,
            where an in-coordinator sampler would see nothing.
        fault_plan: optional fault-injection plan (tests / drills).
        tracer: optional wall-clock :class:`~repro.telemetry.Tracer`
            (``Tracer.wallclock()``); job lifecycle transitions and
            journal appends are recorded as instant events (category
            ``sweep`` / ``journal``), giving an orchestration timeline.
        on_event: optional ``(name, args)`` observer for the same
            supervisor lifecycle events the tracer sees (``job.attempt``
            / ``job.result`` / ``job.retry`` / ``job.failed``); used by
            :class:`~repro.obs.progress.SweepProgress`.
        recorder_dir: optional directory for per-worker crash flight
            recorders (fabric mode only); crash/timeout failure records
            then carry a ``recorder_path`` post-mortem pointer.
    """

    def __init__(
        self,
        config: SystemConfig,
        workloads: Optional[Iterable[str]] = None,
        schemes: Optional[Iterable[Scheme]] = None,
        *,
        max_events: Optional[int] = None,
        n_workers: int = 1,
        n_jobs: int = 1,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        journal_path=None,
        lease_s: float = 300.0,
        ledger_path=None,
        profile_path=None,
        fault_plan: Optional[FaultPlan] = None,
        tracer=NULL_TRACER,
        on_event=None,
        recorder_dir=None,
    ) -> None:
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        if n_jobs < 1:
            raise ConfigError(f"n_jobs must be >= 1, got {n_jobs}")
        if max_events is not None and max_events < 1:
            raise ConfigError(f"max_events must be >= 1, got {max_events}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {timeout_s}")
        self.config = config
        self.workloads = list(workloads) if workloads else all_workload_names()
        self.schemes = list(schemes) if schemes else all_schemes()
        self.max_events = max_events
        self.n_workers = n_workers
        self.n_jobs = n_jobs
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self.journal_path = journal_path
        self.lease_s = lease_s
        self.ledger_path = ledger_path
        self.profile_path = profile_path
        self.fault_plan = fault_plan
        self.tracer = tracer
        self.on_event = on_event
        self.recorder_dir = recorder_dir
        self.results: Dict[ResultKey, SimResult] = {}
        self.failures: Dict[ResultKey, FailedRun] = {}
        #: Live FabricStats during an n_jobs > 1 sweep (set before the
        #: fleet starts, zeroed in place per sweep), so observers can
        #: scrape mid-run.
        self.fabric_stats = None
        #: Live FleetStatus (aggregated worker heartbeats) during an
        #: n_jobs > 1 sweep.
        self.fleet = None
        self._journal: Optional[ResultJournal] = None
        self._resumed = False

    def _on_supervisor_event(self, name: str, args: dict) -> None:
        """Forward supervisor lifecycle transitions to the sweep tracer
        and to any external observer (e.g. a progress reporter)."""
        self.tracer.instant(name, "sweep", args=args)
        if self.on_event is not None:
            self.on_event(name, args)

    # ------------------------------------------------------------------
    def run_all(self, progress=None) -> Dict[ResultKey, SimResult]:
        """Run every (workload, scheme) pair not yet cached.

        Results are harvested as jobs complete: the ``progress`` callback
        fires in completion order and every finished result is in
        ``self.results`` (and the journal) even if a later job fails. A
        job that exhausts its retries lands in ``self.failures`` as a
        :class:`FailedRun` instead of raising.

        Args:
            progress: Optional callable ``(workload, scheme, result)``
                invoked after each run (e.g. to print a line).
        """
        if self.n_jobs > 1:
            return self._run_fabric(progress)
        jobs = [
            Job(
                key=(workload, scheme.value),
                fn=_run_job,
                args=(self.config, workload, scheme.value, self.max_events),
            )
            for workload in self.workloads
            for scheme in self.schemes
            if (workload, scheme) not in self.results
        ]
        if not jobs:
            return self.results

        journal = self._ensure_journal()

        def on_result(key, result) -> None:
            workload, scheme_value = key
            scheme = Scheme(scheme_value)
            self.results[(workload, scheme)] = result
            self.failures.pop((workload, scheme), None)
            if journal is not None:
                journal.append_result(
                    workload, scheme_value, result.to_json_dict()
                )
            if progress is not None:
                progress(workload, scheme, result)

        def on_failure(failed: FailedRun) -> None:
            workload, scheme_value = failed.key
            self.failures[(workload, Scheme(scheme_value))] = failed
            if journal is not None:
                journal.append_failure(workload, scheme_value, failed.as_dict())

        supervisor = JobSupervisor(
            self.n_workers,
            timeout_s=self.timeout_s,
            retry=self.retry,
            fault_plan=self.fault_plan,
            seed=self.config.seed,
            validate=_validate_sim_result,
            on_event=(
                self._on_supervisor_event
                if (self.tracer.enabled or self.on_event is not None)
                else None
            ),
        )
        supervisor.run(jobs, on_result=on_result, on_failure=on_failure)
        return self.results

    def _run_fabric(self, progress=None) -> Dict[ResultKey, SimResult]:
        """Route the sweep through the sharded multiprocess fabric."""
        from repro.fabric.executor import FabricExecutor

        remaining = [
            (workload, scheme)
            for workload in self.workloads
            for scheme in self.schemes
            if (workload, scheme) not in self.results
        ]
        if not remaining:
            return self.results

        def on_result(key, result) -> None:
            workload, scheme_value = key
            scheme = Scheme(scheme_value)
            self.results[(workload, scheme)] = result
            self.failures.pop((workload, scheme), None)
            if progress is not None:
                progress(workload, scheme, result)

        def on_failure(failed: FailedRun) -> None:
            workload, scheme_value = failed.key
            self.failures[(workload, Scheme(scheme_value))] = failed

        executor = FabricExecutor(
            self.n_jobs,
            journal_path=self.journal_path,
            lease_s=self.lease_s,
            timeout_s=self.timeout_s,
            retry=self.retry,
            fault_plan=self.fault_plan,
            seed=self.config.seed,
            ledger_path=self.ledger_path,
            profile_path=self.profile_path,
            on_event=(
                self._on_supervisor_event
                if (self.tracer.enabled or self.on_event is not None)
                else None
            ),
            on_result=on_result,
            on_failure=on_failure,
            recorder_dir=self.recorder_dir,
        )
        # Expose the live observability surfaces before the fleet
        # starts: stats reset in place, so mid-sweep scrapes see
        # current numbers through these references.
        self.fabric_stats = executor.stats
        self.fleet = executor.fleet
        outcome = executor.run(
            self.config,
            self.workloads,
            self.schemes,
            max_events=self.max_events,
            meta=self._journal_meta(),
            # resume() already seeded the journal with surviving results;
            # a fresh start here would wipe them.
            fresh=not self._resumed,
        )
        # The journal is the truth; events were only the live stream.
        for (workload, scheme_value), result in outcome.results.items():
            self.results[(workload, Scheme(scheme_value))] = result
        for (workload, scheme_value), failed in outcome.failures.items():
            key = (workload, Scheme(scheme_value))
            if key not in self.results:
                self.failures[key] = failed
        return self.results

    def _ensure_journal(self) -> Optional[ResultJournal]:
        """The active journal, starting a fresh one on first use."""
        if self.journal_path is None:
            return None
        if self._journal is None:
            self._journal = ResultJournal(self.journal_path, tracer=self.tracer)
            self._journal.start(self._journal_meta())
        return self._journal

    def _journal_meta(self) -> dict:
        return {
            "seed": self.config.seed,
            "workloads": list(self.workloads),
            "schemes": [s.value for s in self.schemes],
            "fingerprint": sweep_fingerprint(
                self.config,
                self.workloads,
                [s.value for s in self.schemes],
                self.max_events,
            ),
        }

    def _validate_fingerprint(self, path, meta: Optional[dict]) -> None:
        """Refuse to resume a journal written for a different sweep.

        Journals carry a ``fingerprint`` in their meta record (config
        hash + sweep-spec hash). A mismatch means the resuming runner
        would silently mix results from different configurations, so it
        raises :class:`CheckpointCorruptError` instead. Journals from
        before fingerprinting (no ``fingerprint`` key) are trusted
        as-is.
        """
        recorded = (meta or {}).get("fingerprint")
        if not isinstance(recorded, dict):
            return
        expected = sweep_fingerprint(
            self.config,
            self.workloads,
            [s.value for s in self.schemes],
            self.max_events,
        )
        mismatched = [
            name
            for name in ("config_sha256", "spec_sha256")
            if recorded.get(name) != expected[name]
        ]
        if mismatched:
            detail = ", ".join(
                f"{name}: journal {str(recorded.get(name))[:12]}… != "
                f"sweep {expected[name][:12]}…"
                for name in mismatched
            )
            raise CheckpointCorruptError(
                f"{path}: journal belongs to a different sweep ({detail}). "
                "Resuming would mix results across configurations; re-run "
                "with the journal's original config/workloads/schemes/"
                "max-events, or delete the journal to start over."
            )

    # ------------------------------------------------------------------
    def resume(self, path=None, progress=None) -> Dict[ResultKey, SimResult]:
        """Restart an interrupted sweep from its checkpoint journal.

        Loads every surviving result from *path* (default: this runner's
        ``journal_path``), then runs only the missing pairs — jobs the
        journal recorded as failed, jobs lost to a truncated final line,
        and jobs never reached. Journaling continues into the same file.
        """
        path = path if path is not None else self.journal_path
        if path is None:
            raise ConfigError("resume() needs a journal path")
        contents = ResultJournal.load(path)
        self._validate_fingerprint(path, contents.meta)
        domain = {
            (w, s.value) for w in self.workloads for s in self.schemes
        }
        for (workload, scheme_value), record in contents.results.items():
            if (workload, scheme_value) not in domain:
                continue
            result = SimResult.from_json_dict(record)
            problem = _validate_sim_result((workload, scheme_value), result)
            if problem is not None:
                continue  # journaled garbage: just re-run the pair
            self.results[(workload, Scheme(scheme_value))] = result
        # Journaled failures are *not* preloaded into self.failures: their
        # pairs are missing from self.results, so run_all re-runs them.
        self.journal_path = path
        self._journal = ResultJournal(path, tracer=self.tracer)
        self._journal.resume_from(contents, self._journal_meta())
        self._resumed = True
        return self.run_all(progress=progress)

    # ------------------------------------------------------------------
    # Aggregation (the paper's reporting conventions)
    # ------------------------------------------------------------------
    def result(self, workload: str, scheme: Scheme) -> SimResult:
        try:
            return self.results[(workload, scheme)]
        except KeyError:
            failed = self.failures.get((workload, scheme))
            if failed is not None:
                raise ConfigError(
                    f"run for ({workload}, {scheme.value}) failed: "
                    f"{failed.kind} — {failed.message}"
                ) from None
            raise ConfigError(
                f"no result for ({workload}, {scheme.value}); run run_all() first"
            ) from None

    def has_result(self, workload: str, scheme: Scheme) -> bool:
        return (workload, scheme) in self.results

    def completed_workloads(self, *schemes: Scheme) -> List[str]:
        """Workloads with a result under every given scheme, sweep order."""
        return [
            w
            for w in self.workloads
            if all((w, s) in self.results for s in schemes)
        ]

    def ipc_series(self, scheme: Scheme) -> List[float]:
        """Per-workload IPC, skipping failed/missing cells."""
        return [
            self.results[(w, scheme)].ipc
            for w in self.completed_workloads(scheme)
        ]

    def normalized_ipc(self, scheme: Scheme, baseline: Scheme) -> List[float]:
        """Per-workload IPC normalised to *baseline* (Figures 2 and 7).

        Workloads missing either cell are skipped, so a sweep containing
        failed runs still aggregates over its surviving pairs.
        """
        return [
            self.results[(w, scheme)].ipc / self.results[(w, baseline)].ipc
            for w in self.completed_workloads(scheme, baseline)
        ]

    def geomean_ipc(self, scheme: Scheme) -> float:
        series = self.ipc_series(scheme)
        return geomean(series) if series else float("nan")

    def geomean_speedup(self, scheme: Scheme, baseline: Scheme) -> float:
        series = self.normalized_ipc(scheme, baseline)
        return geomean(series) if series else float("nan")

    def lifetime_series(self, scheme: Scheme) -> List[float]:
        return [
            self.results[(w, scheme)].lifetime_years
            for w in self.completed_workloads(scheme)
        ]

    def geomean_lifetime(self, scheme: Scheme) -> float:
        series = self.lifetime_series(scheme)
        return geomean(series) if series else float("nan")

    # ------------------------------------------------------------------
    def save_json(self, path) -> None:
        """Persist all settled runs as JSON (one record per run).

        Successful runs carry ``"status": "ok"``; failed runs appear as
        ``"status": "failed"`` records with the failure's kind, message
        and attempt count, so downstream tooling sees the full sweep
        outcome. The write is atomic (tmp file + ``os.replace``) so a
        mid-write crash cannot truncate an existing results file.
        """
        records = [
            {"status": "ok", **result.as_dict()}
            for result in self.results.values()
        ]
        records.extend(
            {
                "status": "failed",
                "workload": workload,
                "scheme": scheme.value,
                "kind": failed.kind,
                "message": failed.message,
                "attempts": failed.attempts,
            }
            for (workload, scheme), failed in self.failures.items()
        )
        path = Path(path)
        atomic_write_text(path, json.dumps(records, indent=2))
