"""Simulated schemes (paper Table VI).

``Static-N-SETs`` writes everything with N SET iterations and relies on
global refresh at that mode's retention interval. ``RRM`` selects between
3-SETs and 7-SETs per block under the Region Retention Monitor and keeps
global refresh at the slow mode's long interval.
"""

from __future__ import annotations

import enum
from typing import List

from repro.errors import ConfigError


class Scheme(enum.Enum):
    """A write-mode management scheme."""

    STATIC_3 = "Static-3-SETs"
    STATIC_4 = "Static-4-SETs"
    STATIC_5 = "Static-5-SETs"
    STATIC_6 = "Static-6-SETs"
    STATIC_7 = "Static-7-SETs"
    RRM = "RRM"

    @property
    def is_static(self) -> bool:
        return self is not Scheme.RRM

    @property
    def static_n_sets(self) -> int:
        """SET count of a static scheme (raises for RRM)."""
        if self is Scheme.RRM:
            raise ConfigError("RRM has no single static write mode")
        return int(self.value.split("-")[1])

    @property
    def global_refresh_n_sets(self) -> int:
        """Mode used by the self-refresh circuit: the demand mode for
        static schemes, the slow mode for RRM."""
        return 7 if self is Scheme.RRM else self.static_n_sets

    def __str__(self) -> str:
        return self.value


def scheme_from_name(name: str) -> Scheme:
    """Parse a scheme name, accepting ``rrm``, ``static-3``, ``Static-3-SETs``."""
    normalized = name.strip().lower()
    if normalized == "rrm":
        return Scheme.RRM
    for scheme in Scheme:
        if scheme.value.lower() == normalized:
            return scheme
        if scheme.is_static and normalized in (
            f"static-{scheme.static_n_sets}",
            f"static{scheme.static_n_sets}",
            f"s{scheme.static_n_sets}",
        ):
            return scheme
    raise ConfigError(f"unknown scheme: {name!r}")


def all_schemes() -> List[Scheme]:
    """All schemes, statics from slow to fast, RRM last (paper order)."""
    return [
        Scheme.STATIC_7,
        Scheme.STATIC_6,
        Scheme.STATIC_5,
        Scheme.STATIC_4,
        Scheme.STATIC_3,
        Scheme.RRM,
    ]


def static_schemes() -> List[Scheme]:
    return [s for s in all_schemes() if s.is_static]
