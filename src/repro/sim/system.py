"""End-to-end system assembly.

``System`` wires together the discrete-event engine, the workload
generators, the core models, the (optional) Region Retention Monitor, the
memory controller and the PCM device, runs the configured duration, and
produces a :class:`~repro.sim.metrics.SimResult`.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import List, Optional

from repro.attribution import AttributionCollector
from repro.attribution.report import AttributionReport
from repro.core.monitor import RegionRetentionMonitor
from repro.cpu.multicore import Multicore
from repro.engine import Simulator
from repro.errors import ConfigError
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, RequestType
from repro.pcm.device import PCMDevice
from repro.pcm.drift import DriftModel, DriftParameters
from repro.pcm.endurance import EnduranceModel, WearTracker
from repro.pcm.energy import EnergyModel
from repro.pcm.write_modes import WriteModeTable
from repro.profiling import SamplingProfiler, take_census
from repro.sim.config import SystemConfig
from repro.sim.metrics import EnergyReport, SimResult, WearReport
from repro.sim.schemes import Scheme
from repro.telemetry import Telemetry, TelemetryConfig
from repro.utils.units import s_to_ns
from repro.workloads.mixes import workload_profiles
from repro.workloads.synthetic import BLOCKS_PER_REGION, RegionTrafficGenerator


class System:
    """One simulated machine running one workload under one scheme."""

    def __init__(
        self,
        config: SystemConfig,
        workload: str,
        scheme: Scheme,
        *,
        track_wear_per_block: bool = False,
        write_trace_sink=None,
        monitor_factory=None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        """
        Args:
            config: System parameters.
            workload: A benchmark name (4 copies) or a mix name.
            scheme: Write-mode management scheme.
            track_wear_per_block: Keep a per-block wear Counter (slower;
                needed only for wear-distribution analyses).
            write_trace_sink: Optional callable ``(time_ns, block)`` fired
                on every completed demand write — used by the Table III
                region-interval analysis.
            monitor_factory: Optional callable ``(modes, sim, controller)
                -> monitor`` replacing the stock RegionRetentionMonitor
                when the scheme is RRM — the extension point used by the
                tiered multi-mode monitor.
            telemetry: Observability switches; None keeps the no-op
                tracer and the run byte-identical to an uninstrumented
                one. Metrics always harvest through the registry either
                way.
        """
        self.config = config
        self.workload = workload
        self.scheme = scheme
        self.sim = Simulator()
        self.telemetry = Telemetry(telemetry, clock=lambda: self.sim.now)
        self._profiler: Optional[SamplingProfiler] = None
        if telemetry is not None and telemetry.profile:
            # Enabled before any event is scheduled so every owner
            # resolves; the clock is passed as a reference — the engine
            # itself never calls a wall clock it wasn't handed (RL001).
            self.sim.enable_cost_accounting(clock=time.perf_counter)

        # --- PCM substrate ------------------------------------------------
        drift = DriftModel(DriftParameters(drift_scale=config.drift_scale))
        self.modes = WriteModeTable(drift)
        # Unscaled table for reporting on the paper's timescale.
        self._real_modes = WriteModeTable(DriftModel(DriftParameters(drift_scale=1.0)))
        self.device = PCMDevice(
            size_bytes=config.memory.size_bytes,
            n_channels=config.memory.n_channels,
            banks_per_channel=config.memory.banks_per_channel,
            row_bytes=config.memory.row_buffer_bytes,
            modes=self.modes,
            allow_write_pausing=config.memory.allow_write_pausing,
        )
        self.attribution: Optional[AttributionCollector] = None
        if telemetry is not None and telemetry.attribution:
            self.attribution = AttributionCollector(
                n_banks=self.device.n_banks,
                banks_per_channel=self.device.banks_per_channel,
                fast_n_sets=self.modes.fast.n_sets,
                slow_n_sets=self.modes.slow.n_sets,
                row_hit_read_ns=self.device.timings.row_hit_read_ns,
                region_of=config.rrm.region_of_block,
            )
        self.controller = MemoryController(
            self.sim,
            self.device,
            refresh_queue_capacity=config.memory.refresh_queue_capacity,
            read_queue_capacity=config.memory.read_queue_capacity,
            write_queue_capacity=config.memory.write_queue_capacity,
            tracer=self.telemetry.tracer,
            attribution=self.attribution,
        )
        self.wear = WearTracker(track_per_block=track_wear_per_block)
        self.energy = EnergyModel(modes=self.modes)
        self.endurance = EnduranceModel(
            endurance_writes=config.memory.endurance_writes,
            wear_leveling_efficiency=config.memory.wear_leveling_efficiency,
        )
        self._write_trace_sink = write_trace_sink
        self.controller.add_completion_listener(self._on_completion)

        # --- Scheme -------------------------------------------------------
        self.rrm: Optional[RegionRetentionMonitor] = None
        if scheme is Scheme.RRM:
            if monitor_factory is not None:
                self.rrm = monitor_factory(self.modes, self.sim, self.controller)
            else:
                self.rrm = RegionRetentionMonitor(
                    config.rrm,
                    self.modes,
                    sim=self.sim,
                    controller=self.controller,
                    tracer=self.telemetry.tracer,
                )
            chooser = self.rrm.decide_write_mode
            register_sink = self.rrm.register_llc_write
        else:
            static_mode = scheme.static_n_sets
            chooser = lambda block: static_mode  # noqa: E731 - hot path
            register_sink = None

        # --- Workload + cores ----------------------------------------------
        streams = self._build_streams()
        self.multicore = Multicore(
            self.sim,
            self.controller,
            streams,
            config.cores,
            write_mode_chooser=chooser,
            register_sink=register_sink,
            end_time_ns=s_to_ns(config.duration_s),
            seed=config.seed,
        )
        self._ran = False
        self._register_metrics()

    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        """Wire every subsystem into the run's metric registry.

        All registrations are pull gauges over existing stats objects, so
        this is one-time wiring with zero hot-path cost; ``_finalize``
        harvests results through ``registry.snapshot()``.
        """
        registry = self.telemetry.registry
        self.sim.register_metrics(registry)
        self.controller.register_metrics(registry, detailed=self.telemetry.detailed)
        self.multicore.register_metrics(registry)
        self.wear.register_metrics(registry)
        self.energy.register_metrics(registry)
        if self.rrm is not None and hasattr(self.rrm, "register_metrics"):
            self.rrm.register_metrics(registry)
        if self.attribution is not None:
            self.attribution.register_metrics(registry)
        if self.sim.cost_accounting is not None:
            self.sim.cost_accounting.register_metrics(registry)

    # ------------------------------------------------------------------
    def _build_streams(self) -> List:
        config = self.config
        profiles = workload_profiles(self.workload, config.n_cores)
        core_window = config.memory.n_blocks // config.n_cores
        streams = []
        self._footprint_regions = 0
        for core_id, profile in enumerate(profiles):
            scaled = profile.scaled_footprint(config.footprint_scale)
            footprint_blocks = scaled.traffic.footprint_regions * BLOCKS_PER_REGION
            if footprint_blocks > core_window:
                # Clamp the footprint into the core's address window rather
                # than failing: tier proportions are preserved.
                shrink = core_window / footprint_blocks * 0.95
                scaled = scaled.scaled_footprint(shrink)
            generator = RegionTrafficGenerator(
                scaled.traffic,
                base_block=core_id * core_window,
                seed=config.seed * 1013 + core_id,
            )
            # Touched-region denominator for the memory census: the
            # regions this workload's footprint actually visits.
            self._footprint_regions += scaled.traffic.footprint_regions
            streams.append(iter(generator))
        return streams

    # ------------------------------------------------------------------
    def attribution_report(self) -> AttributionReport:
        """The run's full latency-anatomy report (attribution must be on)."""
        if self.attribution is None:
            raise ConfigError(
                "attribution is not enabled; pass "
                "TelemetryConfig(attribution=True)"
            )
        return AttributionReport.from_collector(self.attribution)

    # ------------------------------------------------------------------
    def _on_completion(self, request: MemRequest) -> None:
        rtype = request.rtype
        if rtype is RequestType.READ:
            self.energy.record_read()
        elif rtype is RequestType.WRITE:
            assert request.n_sets is not None
            self.wear.record_demand_write(request.block)
            self.energy.record_write(request.n_sets)
            if self._write_trace_sink is not None:
                self._write_trace_sink(request.finish_time_ns, request.block)
        elif rtype is RequestType.RRM_REFRESH:
            self.wear.record_rrm_refresh(request.block)
            self.energy.record_rrm_refresh(request.n_sets or 3)
        else:  # RRM slow refresh (demotion rewrite)
            self.wear.record_rrm_refresh(request.block)
            self.energy.record_rrm_refresh(request.n_sets or 7)

    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> SimResult:
        """Run the configured duration and return the metrics."""
        if self._ran:
            raise ConfigError("System.run() may only be called once")
        self._ran = True
        started = time.perf_counter()

        telemetry = self.telemetry
        if telemetry.enabled:
            for bank in range(self.device.n_banks):
                telemetry.tracer.set_thread_name(bank, f"bank{bank}")
        tcfg = telemetry.config
        if tcfg is not None and tcfg.metrics_interval_s is not None:
            telemetry.make_profiler(
                self.sim, s_to_ns(tcfg.metrics_interval_s)
            ).start()

        if self.rrm is not None:
            self.rrm.start()
        self.multicore.start()
        duration_ns = s_to_ns(self.config.duration_s)
        if tcfg is not None and tcfg.profile:
            self._profiler = SamplingProfiler(
                interval_s=tcfg.profile_interval_s
            )
            self._profiler.register_metrics(self.telemetry.registry)
        if self._profiler is not None:
            # Context manager: the sampler thread is joined even when a
            # model callback raises mid-run.
            with self._profiler:
                self.sim.run(until=duration_ns, max_events=max_events)
        else:
            self.sim.run(until=duration_ns, max_events=max_events)

        if telemetry.enabled:
            telemetry.tracer.complete(
                "run",
                "engine",
                0.0,
                self.sim.now,
                args={
                    "workload": self.workload,
                    "scheme": self.scheme.value,
                    "events": self.sim.events_processed,
                },
            )
        return self._finalize(time.perf_counter() - started)

    # ------------------------------------------------------------------
    def _finalize(self, wall_time_s: float) -> SimResult:
        config = self.config
        duration_s = config.duration_s
        duration_ns = s_to_ns(duration_s)
        # Uniform harvest: every counter below reaches the result through
        # the registry's pull gauges, so the SimResult and any telemetry
        # consumer (profiler samples, `repro-rrm trace`) see one source of
        # truth. Gauges read the live stats objects, so values are
        # identical to direct attribute access.
        snap = self.telemetry.registry.snapshot()

        result = SimResult(
            scheme=self.scheme,
            workload=self.workload,
            duration_s=duration_s,
            drift_scale=config.drift_scale,
            n_blocks=config.memory.n_blocks,
        )
        result.wall_time_s = wall_time_s
        result.sim_events = self.sim.events_processed
        result.per_core_ipc = self.multicore.per_core_ipc(duration_ns)
        result.ipc = self.multicore.aggregate_ipc(duration_ns)
        result.instructions = snap["cpu.retired_instructions"]
        result.reads = snap["memctrl.reads_completed"]
        result.writes = snap["memctrl.writes_completed"]
        result.fast_writes = snap["memctrl.fast_writes"]
        result.slow_writes = snap["memctrl.slow_writes"]
        result.rrm_fast_refreshes = snap["memctrl.rrm_refreshes_completed"]
        result.rrm_slow_refreshes = snap["memctrl.rrm_slow_refreshes_completed"]
        result.retention_violations = snap["memctrl.retention_violations"]
        result.avg_read_latency_ns = snap["memctrl.avg_read_latency_ns"]
        result.avg_write_latency_ns = snap["memctrl.avg_write_latency_ns"]
        result.row_hit_rate = snap["memctrl.row_hit_rate"]
        result.stalls = {
            key: snap[f"cpu.{key}"]
            for key in (
                "blocking_stalls",
                "mlp_stalls",
                "write_queue_stalls",
                "read_queue_stalls",
            )
        }
        if self.rrm is not None:
            result.rrm_stats = asdict(self.rrm.stats)
        if self.attribution is not None:
            report = self.attribution_report()
            # The anatomy summary rides on its own field; as_dict() — the
            # bit-identity surface for attribution-on == attribution-off
            # comparisons — is deliberately untouched.
            result.attribution = {
                **report.summary_dict(),
                "ledger_metrics": report.ledger_metrics(),
            }

        if self._profiler is not None:
            # Same contract as attribution: the profile rides on its own
            # side-field and as_dict() stays the bit-identity surface.
            result.profile = self._build_profile(wall_time_s)

        result.wear = self._wear_report(snap)
        result.energy = self._energy_report(snap, result.wear)
        result.compute_lifetime(self.endurance)
        return result

    # ------------------------------------------------------------------
    def _build_profile(self, wall_time_s: float) -> dict:
        """Assemble the run's host-profile artifact (sampler + engine
        accounting + memory census)."""
        assert self._profiler is not None
        prof = self._profiler.build_profile()
        accounting = self.sim.cost_accounting
        if accounting is not None:
            prof.dispatch_counts = dict(accounting.counts)
            prof.dispatch_time_ns = dict(accounting.host_ns)
        # Most specific owners first: back-references (RRM -> controller,
        # controller -> device) must not swallow their neighbours. The
        # engine leads because every subsystem back-references the sim,
        # while the engine reaches others only through callbacks, which
        # the walker treats as opaque — so the event queue is charged to
        # the engine and nothing else is.
        roots = {
            "engine": self.sim,
            "pcm": (self.device, self.modes, self.wear, self.energy),
            "memctrl": self.controller,
            "core": self.rrm,
            "cpu": self.multicore,
            "attribution": self.attribution,
            "telemetry": self.telemetry,
        }
        prof.memory = take_census(
            roots, touched_regions=self._footprint_regions
        )
        prof.meta = {
            "workload": self.workload,
            "scheme": self.scheme.value,
            "duration_s": self.config.duration_s,
            "wall_time_s": wall_time_s,
        }
        return prof.to_json_dict()

    def _wear_report(self, snap) -> WearReport:
        """Wear rates on the paper's timescale (see metrics module docs)."""
        config = self.config
        duration_s = config.duration_s
        virtual_s = config.virtual_duration_s

        # Global refresh: every block, once per real (unscaled) interval of
        # the scheme's global-refresh mode.
        interval_real = self._real_modes.refresh_interval_s(
            self.scheme.global_refresh_n_sets
        )
        global_rate = config.memory.n_blocks / interval_real

        return WearReport(
            demand_rate=snap["pcm.wear.demand_writes"] / duration_s,
            rrm_fast_refresh_rate=snap["memctrl.rrm_refreshes_completed"] / virtual_s,
            rrm_slow_refresh_rate=(
                snap["memctrl.rrm_slow_refreshes_completed"] / virtual_s
            ),
            global_refresh_rate=global_rate,
        )

    def _energy_report(self, snap, wear: WearReport) -> EnergyReport:
        config = self.config
        duration_s = config.duration_s
        virtual_s = config.virtual_duration_s

        global_mode = self._real_modes.mode(self.scheme.global_refresh_n_sets)
        global_energy_rate = wear.global_refresh_rate * global_mode.normalized_energy

        return EnergyReport(
            write_rate=snap["pcm.energy.write_energy"] / duration_s,
            read_rate=snap["pcm.energy.read_energy"] / duration_s,
            rrm_refresh_rate=snap["pcm.energy.rrm_refresh_energy"] / virtual_s,
            global_refresh_rate=global_energy_rate,
        )
