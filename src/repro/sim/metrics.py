"""Run metrics: IPC, wear, energy and lifetime reporting.

The paper reports wear and energy per 5-second window and lifetime in
years. Under drift scaling (DESIGN.md, substitution 3) demand traffic is
measured on the real timescale while refresh traffic follows the scaled
retention clock, so rates are reconstructed separately:

- demand write rate   = demand_writes / duration
- RRM refresh rate    = rrm_refresh_writes / (duration * drift_scale)
- global refresh rate = n_blocks / real_refresh_interval

With drift_scale == 1 these reduce to the plain per-second rates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.pcm.endurance import EnduranceModel
from repro.sim.schemes import Scheme
from repro.utils.units import S_PER_YEAR


@dataclass
class WearReport:
    """Block-write rates by source, on the paper's (virtual) timescale."""

    demand_rate: float = 0.0
    rrm_fast_refresh_rate: float = 0.0
    rrm_slow_refresh_rate: float = 0.0
    global_refresh_rate: float = 0.0

    @property
    def rrm_refresh_rate(self) -> float:
        return self.rrm_fast_refresh_rate + self.rrm_slow_refresh_rate

    @property
    def refresh_rate(self) -> float:
        return self.rrm_refresh_rate + self.global_refresh_rate

    @property
    def total_rate(self) -> float:
        return self.demand_rate + self.refresh_rate

    def per_window(self, window_s: float = 5.0) -> Dict[str, float]:
        """Block writes per *window_s* virtual seconds (Figure 4/9 unit)."""
        return {
            "write": self.demand_rate * window_s,
            "rrm_refresh": self.rrm_refresh_rate * window_s,
            "global_refresh": self.global_refresh_rate * window_s,
            "total": self.total_rate * window_s,
        }


@dataclass
class EnergyReport:
    """Energy rates by source in normalised write-energy units per virtual
    second (Figure 10 reports the same split per window)."""

    write_rate: float = 0.0
    read_rate: float = 0.0
    rrm_refresh_rate: float = 0.0
    global_refresh_rate: float = 0.0

    @property
    def refresh_rate(self) -> float:
        return self.rrm_refresh_rate + self.global_refresh_rate

    @property
    def total_rate(self) -> float:
        return self.write_rate + self.read_rate + self.refresh_rate

    def per_window(self, window_s: float = 5.0) -> Dict[str, float]:
        return {
            "write": self.write_rate * window_s,
            "read": self.read_rate * window_s,
            "rrm_refresh": self.rrm_refresh_rate * window_s,
            "global_refresh": self.global_refresh_rate * window_s,
            "total": self.total_rate * window_s,
        }


@dataclass
class SimResult:
    """Everything a run produces, ready for analysis and reporting."""

    scheme: Scheme
    workload: str
    duration_s: float
    drift_scale: float
    n_blocks: int

    ipc: float = 0.0
    per_core_ipc: list = field(default_factory=list)
    instructions: int = 0

    reads: int = 0
    writes: int = 0
    fast_writes: int = 0
    slow_writes: int = 0
    rrm_fast_refreshes: int = 0
    rrm_slow_refreshes: int = 0
    retention_violations: int = 0
    avg_read_latency_ns: float = 0.0
    avg_write_latency_ns: float = 0.0
    row_hit_rate: float = 0.0

    wear: WearReport = field(default_factory=WearReport)
    energy: EnergyReport = field(default_factory=EnergyReport)
    lifetime_years: float = 0.0

    rrm_stats: Optional[dict] = None
    stalls: Optional[dict] = None
    wall_time_s: float = 0.0
    #: Engine events processed by the run — a deterministic measure of
    #: simulated work. ``sim_events / wall_time_s`` is the simulator's
    #: throughput (events/s), recorded host-dependently in run-ledger
    #: entries as ``sim_events_per_sec``. Kept off :meth:`as_dict`
    #: because observers (progress ticks) legitimately change the event
    #: count without changing any simulation statistic, and the flat
    #: reporting view is the bit-identity comparison surface.
    sim_events: int = 0
    #: Latency-anatomy summary (repro.attribution) when the run had
    #: attribution enabled; holds the blamed-time digest plus a flat
    #: ``ledger_metrics`` map merged into run-ledger entries. Kept off
    #: :meth:`as_dict` so attribution-on == attribution-off comparisons
    #: of simulation statistics stay meaningful.
    attribution: Optional[dict] = None
    #: Host-profile artifact (repro.profiling Profile.to_json_dict) when
    #: the run had ``TelemetryConfig(profile=True)``: folded stacks,
    #: per-owner dispatch accounting, memory census and the flat
    #: ``ledger_metrics`` map merged into run-ledger entries. Kept off
    #: :meth:`as_dict` for the same reason as ``attribution`` — the flat
    #: view is the profiling-on == profiling-off bit-identity surface.
    profile: Optional[dict] = None

    @property
    def virtual_duration_s(self) -> float:
        return self.duration_s * self.drift_scale

    @property
    def fast_write_fraction(self) -> float:
        total = self.fast_writes + self.slow_writes
        return self.fast_writes / total if total else 0.0

    def compute_lifetime(self, endurance: EnduranceModel) -> float:
        """Project lifetime (years) from the wear rates; stores and
        returns it."""
        if self.wear.total_rate <= 0:
            self.lifetime_years = float("inf")
            return self.lifetime_years
        capacity = (
            endurance.endurance_writes
            * self.n_blocks
            * endurance.wear_leveling_efficiency
        )
        self.lifetime_years = capacity / self.wear.total_rate / S_PER_YEAR
        return self.lifetime_years

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:<12} {self.scheme.value:<14} "
            f"IPC={self.ipc:6.3f}  life={self.lifetime_years:7.2f}y  "
            f"fast%={100 * self.fast_write_fraction:5.1f}  "
            f"rdlat={self.avg_read_latency_ns:7.1f}ns"
        )

    def to_json_dict(self) -> dict:
        """Lossless JSON-able form; inverse of :meth:`from_json_dict`.

        Unlike :meth:`as_dict` (a flat reporting view), this round-trips
        every field so checkpoint journals can reconstruct the result.
        """
        d = dataclasses.asdict(self)
        d["scheme"] = self.scheme.value
        return d

    @classmethod
    def from_json_dict(cls, d: dict) -> "SimResult":
        """Rebuild a result journaled by :meth:`to_json_dict`."""
        d = dict(d)
        d["scheme"] = Scheme(d["scheme"])
        d["wear"] = WearReport(**d["wear"])
        d["energy"] = EnergyReport(**d["energy"])
        return cls(**d)

    def as_dict(self) -> dict:
        """Flat dict for JSON export / DataFrame assembly."""
        return {
            "workload": self.workload,
            "scheme": self.scheme.value,
            "ipc": self.ipc,
            "instructions": self.instructions,
            "reads": self.reads,
            "writes": self.writes,
            "fast_writes": self.fast_writes,
            "slow_writes": self.slow_writes,
            "rrm_fast_refreshes": self.rrm_fast_refreshes,
            "rrm_slow_refreshes": self.rrm_slow_refreshes,
            "retention_violations": self.retention_violations,
            "avg_read_latency_ns": self.avg_read_latency_ns,
            "row_hit_rate": self.row_hit_rate,
            "lifetime_years": self.lifetime_years,
            "wear_demand_rate": self.wear.demand_rate,
            "wear_rrm_refresh_rate": self.wear.rrm_refresh_rate,
            "wear_global_refresh_rate": self.wear.global_refresh_rate,
            "energy_total_rate": self.energy.total_rate,
            "duration_s": self.duration_s,
            "drift_scale": self.drift_scale,
        }
