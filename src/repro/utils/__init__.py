"""Shared helpers: unit conversion, math utilities, atomic persistence."""

from repro.utils.persist import atomic_write_text, save_json
from repro.utils.units import (
    NS_PER_S,
    S_PER_YEAR,
    format_bytes,
    format_seconds,
    ns_to_s,
    parse_size,
    s_to_ns,
)
from repro.utils.mathx import (
    clamp,
    geomean,
    is_power_of_two,
    log2_int,
    weighted_mean,
)

__all__ = [
    "NS_PER_S",
    "S_PER_YEAR",
    "atomic_write_text",
    "save_json",
    "format_bytes",
    "format_seconds",
    "ns_to_s",
    "parse_size",
    "s_to_ns",
    "clamp",
    "geomean",
    "is_power_of_two",
    "log2_int",
    "weighted_mean",
]
