"""Atomic file persistence helpers.

Durable artifacts (ledgers, gate baselines, bench pins, journals' full
rewrites) must never be observable half-written: a worker killed
mid-``write()`` would otherwise leave a torn JSON file that a resumed
sweep either crashes on or — worse — silently trusts. The sanctioned
pattern is write-to-temp-then-``os.replace``: the rename is atomic on
POSIX, so readers see the old complete file or the new complete file,
never a mixture. RL008 (atomic-persistence) lints the orchestration
packages for writes that bypass this module.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union

__all__ = ["atomic_write_text", "save_json"]


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write *text* to *path* atomically (tmp file + ``os.replace``).

    The temp file lives next to the target (same filesystem, so the
    rename cannot degrade to a copy) and is removed on failure.
    """
    target = Path(path)
    tmp = target.with_suffix(target.suffix + f".tmp.{os.getpid()}")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, target)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def save_json(path: Union[str, Path], payload: Any, *, indent: int = 2) -> None:
    """Serialize *payload* as JSON and write it atomically.

    The trailing newline keeps the artifacts diff- and ``cat``-friendly.
    """
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
