"""Unit conversions used throughout the simulator.

Internally the simulator keeps *time in nanoseconds* (float) and
*addresses/sizes in bytes* (int). These helpers convert at the edges.
"""

from __future__ import annotations

from repro.errors import ConfigError

NS_PER_S = 1_000_000_000.0
#: Seconds per (Julian) year, used for lifetime reporting.
S_PER_YEAR = 365.25 * 24 * 3600

_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "KB": 1 << 10,
    "MB": 1 << 20,
    "GB": 1 << 30,
    "TB": 1 << 40,
}


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def s_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


_TIME_SUFFIXES = {
    "ns": 1e-9,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
}


def parse_duration(text: "str | float | int") -> float:
    """Parse a human-readable duration such as ``"1ms"`` into seconds.

    Bare numbers (or numeric strings) are taken as seconds, matching the
    simulator's external unit.

    >>> parse_duration("1ms")
    0.001
    >>> parse_duration("250us")
    0.00025
    >>> parse_duration(2)
    2.0
    """
    if isinstance(text, (int, float)):
        return float(text)
    raw = text.strip().lower().replace(" ", "")
    for suffix in sorted(_TIME_SUFFIXES, key=len, reverse=True):
        if raw.endswith(suffix):
            number = raw[: -len(suffix)]
            break
    else:
        number, suffix = raw, "s"
    try:
        value = float(number)
    except ValueError as exc:
        raise ConfigError(f"unparseable duration: {text!r}") from exc
    return value * _TIME_SUFFIXES[suffix]


def parse_size(text: "str | int") -> int:
    """Parse a human-readable size such as ``"8GB"`` or ``"64"`` into bytes.

    Integers pass through unchanged. Suffixes are binary (KB = 1024 bytes),
    matching the paper's usage of KB/MB/GB for hardware structures.

    >>> parse_size("4KB")
    4096
    >>> parse_size(512)
    512
    """
    if isinstance(text, int):
        return text
    raw = text.strip().upper().replace(" ", "")
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if suffix and raw.endswith(suffix):
            number = raw[: -len(suffix)]
            break
    else:
        number, suffix = raw, ""
    try:
        value = float(number)
    except ValueError as exc:
        raise ConfigError(f"unparseable size: {text!r}") from exc
    result = value * _SIZE_SUFFIXES[suffix]
    if result != int(result):
        raise ConfigError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def format_bytes(n_bytes: int) -> str:
    """Render a byte count with the largest exact binary suffix.

    >>> format_bytes(98304)
    '96KB'
    """
    if n_bytes < 0:
        raise ConfigError(f"negative size: {n_bytes}")
    for suffix in ("TB", "GB", "MB", "KB"):
        unit = _SIZE_SUFFIXES[suffix]
        if n_bytes >= unit and n_bytes % unit == 0:
            return f"{n_bytes // unit}{suffix}"
    for suffix in ("TB", "GB", "MB", "KB"):
        unit = _SIZE_SUFFIXES[suffix]
        if n_bytes >= unit:
            return f"{n_bytes / unit:.2f}{suffix}"
    return f"{n_bytes}B"


def format_seconds(seconds: float) -> str:
    """Render a duration with an appropriate unit (ns/us/ms/s)."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.3g}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g}us"
    return f"{seconds * 1e9:.3g}ns"
