"""Small math helpers (geometric mean, power-of-two checks, clamping)."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigError


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    The paper reports performance and lifetime comparisons as geometric
    means across workloads; we use the log-domain formulation for
    numerical stability.
    """
    logs = []
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        logs.append(math.log(v))
    if not logs:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(logs) / len(logs))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Arithmetic mean of *values* weighted by *weights*."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total


def is_power_of_two(n: int) -> bool:
    """True if *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact integer log2; raises :class:`ConfigError` for non powers of two."""
    if not is_power_of_two(n):
        raise ConfigError(f"{n} is not a power of two")
    return n.bit_length() - 1


def clamp(value: float, low: float, high: float) -> float:
    """Clamp *value* into the inclusive range [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))
