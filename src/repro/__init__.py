"""repro — Region Retention Monitor for MLC PCM.

A from-scratch Python reproduction of "Balancing Performance and Lifetime
of MLC PCM by Using a Region Retention Monitor" (HPCA 2017): the RRM
structure itself plus every substrate it depends on — an MLC PCM device
model with resistance drift, a memory controller with prioritised queues
and write pausing, a cache hierarchy, a trace-driven multi-core CPU model
and synthetic SPEC2006-like workloads.

Quickstart::

    from repro import SystemConfig, Scheme, run_workload

    config = SystemConfig.scaled()
    result = run_workload(config, "GemsFDTD", Scheme.RRM)
    print(result.summary())
"""

from repro.core import RRMConfig, RegionRetentionMonitor
from repro.pcm import DriftModel, DriftParameters, WriteMode, WriteModeTable
from repro.resilience import FailedRun, FaultPlan, ResultJournal, RetryPolicy
from repro.sim import (
    ExperimentRunner,
    MemoryConfig,
    Scheme,
    SimResult,
    System,
    SystemConfig,
    run_workload,
)
from repro.telemetry import (
    MetricRegistry,
    Profiler,
    Telemetry,
    TelemetryConfig,
    Tracer,
)
from repro.workloads import BENCHMARKS, MIXES, get_benchmark

__version__ = "1.8.0"

__all__ = [
    "RRMConfig",
    "RegionRetentionMonitor",
    "DriftModel",
    "DriftParameters",
    "WriteMode",
    "WriteModeTable",
    "ExperimentRunner",
    "FailedRun",
    "FaultPlan",
    "MemoryConfig",
    "MetricRegistry",
    "Profiler",
    "ResultJournal",
    "RetryPolicy",
    "Scheme",
    "SimResult",
    "System",
    "SystemConfig",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "run_workload",
    "BENCHMARKS",
    "MIXES",
    "get_benchmark",
    "__version__",
]
