"""RRM configuration and its hardware-overhead model (paper Table VIII)."""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.pcm.device import BLOCK_BYTES
from repro.utils.mathx import is_power_of_two, log2_int
from repro.utils.units import format_bytes

#: Physical address width assumed by the entry format (paper Section IV-C).
ADDRESS_BITS = 64


@dataclass(frozen=True)
class RRMConfig:
    """Structure and policy parameters of a Region Retention Monitor.

    Defaults reproduce the paper's configuration: 256 sets x 24 ways of
    4KB regions (24MB covered, 4x the 6MB LLC), ``hot_threshold`` 16, a
    4-bit decay counter ticking 16 times per refresh interval, and fast /
    slow write modes of 3 and 7 SET iterations.
    """

    n_sets: int = 256
    n_ways: int = 24
    region_bytes: int = 4096
    hot_threshold: int = 16
    decay_ticks_per_interval: int = 16
    fast_n_sets: int = 3
    slow_n_sets: int = 7
    #: Rewrite short-retention blocks with the slow mode when their entry
    #: is evicted (required for correctness; see monitor docs).
    refresh_on_eviction: bool = True
    #: Fraction of the fast mode's retention reserved as refresh slack.
    #: The paper uses 0.5% (a 2s interval against 2.01s retention) on a
    #: 64-bank device; scaled configurations need a larger fraction since
    #: fewer banks drain the refresh burst more slowly.
    refresh_slack_fraction: float = 0.005
    #: Ablation: when False, clean LLC writes also register (disables the
    #: streaming-write filter of paper Section IV-D).
    streaming_filter: bool = True
    #: Ablation: when False, hot entries never decay back to cold (paper
    #: Section IV-G machinery off) — obsolete hot regions keep taking
    #: selective fast refreshes forever.
    decay_enabled: bool = True
    #: Fault injection: when False, the short-retention interrupt fires
    #: but issues no refreshes. Short-retention data then silently expires
    #: — used to validate the retention-integrity checker.
    selective_refresh_enabled: bool = True
    #: RRM lookup latency in CPU cycles (paper Table IV). Small enough that
    #: the timing model treats it as free; kept for the overhead report.
    access_latency_cycles: int = 4

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n_sets):
            raise ConfigError(f"n_sets must be a power of two, got {self.n_sets}")
        if self.n_ways <= 0:
            raise ConfigError(f"n_ways must be positive, got {self.n_ways}")
        if self.region_bytes % BLOCK_BYTES or self.region_bytes < BLOCK_BYTES:
            raise ConfigError("region size must be a positive multiple of 64B")
        if not is_power_of_two(self.region_bytes):
            raise ConfigError("region size must be a power of two")
        if self.hot_threshold <= 0:
            raise ConfigError(f"hot_threshold must be positive, got {self.hot_threshold}")
        if self.decay_ticks_per_interval <= 0:
            raise ConfigError("decay_ticks_per_interval must be positive")
        if self.fast_n_sets >= self.slow_n_sets:
            raise ConfigError("fast mode must use fewer SETs than slow mode")
        if not 0 < self.refresh_slack_fraction < 1:
            raise ConfigError("refresh_slack_fraction must be in (0, 1)")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def blocks_per_region(self) -> int:
        """Memory blocks covered by one entry (64 for 4KB regions)."""
        return self.region_bytes // BLOCK_BYTES

    @property
    def n_entries(self) -> int:
        return self.n_sets * self.n_ways

    @property
    def coverage_bytes(self) -> int:
        """Memory covered when every entry is valid (24MB by default)."""
        return self.n_entries * self.region_bytes

    def region_of_block(self, block: int) -> int:
        """Region index containing block index *block*."""
        return block // self.blocks_per_region

    def block_offset(self, block: int) -> int:
        """Position of *block* within its region (the vector bit index)."""
        return block % self.blocks_per_region

    def set_index(self, region: int) -> int:
        """RRM set a region maps to."""
        return region & (self.n_sets - 1)

    # ------------------------------------------------------------------
    # Hardware-overhead model (Table VIII)
    # ------------------------------------------------------------------
    @property
    def tag_bits(self) -> int:
        """Address bits stored per entry (full address minus in-region bits).

        The paper stores 52 bits for 4KB regions out of a 64-bit address.
        """
        return ADDRESS_BITS - log2_int(self.region_bytes)

    @property
    def counter_bits(self) -> int:
        """Dirty-write-counter width; 6 bits covers thresholds up to 64."""
        return max(6, math.ceil(math.log2(self.hot_threshold + 1)))

    @property
    def decay_counter_bits(self) -> int:
        return math.ceil(math.log2(self.decay_ticks_per_interval))

    @property
    def entry_bits(self) -> int:
        """Bits per entry: valid + tag + hot + counter + vector + decay."""
        return (
            1
            + self.tag_bits
            + 1
            + self.counter_bits
            + self.blocks_per_region
            + self.decay_counter_bits
        )

    @property
    def storage_bytes(self) -> int:
        """Total RRM storage. 96KB for the default configuration."""
        return (self.entry_bits * self.n_entries) // 8

    def storage_summary(self, llc_bytes: int) -> str:
        """Human-readable overhead line like the paper's Table IV/VIII."""
        pct = 100.0 * self.storage_bytes / llc_bytes
        return (
            f"{format_bytes(self.storage_bytes)} "
            f"({pct:.2f}% of LLC), coverage {format_bytes(self.coverage_bytes)}"
        )

    # ------------------------------------------------------------------
    # Derived variants (sensitivity studies)
    # ------------------------------------------------------------------
    def with_coverage_rate(self, llc_bytes: int, rate: int) -> "RRMConfig":
        """A variant whose coverage is *rate* x the LLC size, varying only
        the set count (paper Section VI-E)."""
        target = llc_bytes * rate
        sets = target // (self.n_ways * self.region_bytes)
        if sets < 1 or not is_power_of_two(sets):
            raise ConfigError(
                f"coverage {rate}x of {format_bytes(llc_bytes)} does not yield a "
                f"power-of-two set count (got {sets})"
            )
        return replace(self, n_sets=sets)

    def with_hot_threshold(self, threshold: int) -> "RRMConfig":
        """A variant with a different aggressiveness (paper Section VI-D)."""
        return replace(self, hot_threshold=threshold)

    def with_region_bytes(self, region_bytes: int) -> "RRMConfig":
        """A variant with a different entry coverage size, keeping total
        coverage constant by adjusting the set count (paper Section VI-F)."""
        if region_bytes == self.region_bytes:
            return self
        scale = self.region_bytes / region_bytes
        sets = int(self.n_sets * scale)
        if sets < 1 or not is_power_of_two(sets):
            raise ConfigError(
                f"region size {region_bytes} does not preserve coverage with a "
                f"power-of-two set count"
            )
        return replace(self, region_bytes=region_bytes, n_sets=sets)
