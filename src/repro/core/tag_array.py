"""Set-associative tag array of the RRM with LRU replacement.

The paper manages the RRM "just like a low-level cache": address tags in a
tag array, per-region state in a retention-information array, LRU eviction
within a set. We keep both arrays in one :class:`RRMEntry` per way since
Python gains nothing from splitting the storage.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import RRMConfig
from repro.core.entry import RRMEntry
from repro.errors import SimulationError


class RRMTagArray:
    """Fixed-geometry set-associative array of :class:`RRMEntry`."""

    def __init__(self, config: RRMConfig) -> None:
        self.config = config
        #: Per-set map of region -> entry. Dict preserves O(1) lookup; the
        #: LRU order lives in the entries' ``last_use`` stamps.
        self._sets: List[Dict[int, RRMEntry]] = [dict() for _ in range(config.n_sets)]
        self._use_clock = 0
        self.lookups = 0
        self.hits = 0
        self.evictions = 0
        self.allocations = 0

    def lookup(self, region: int, touch: bool = True) -> Optional[RRMEntry]:
        """Find the entry for *region*; updates LRU recency when *touch*."""
        self.lookups += 1
        entry = self._sets[self.config.set_index(region)].get(region)
        if entry is not None:
            self.hits += 1
            if touch:
                self._use_clock += 1
                entry.last_use = self._use_clock
        return entry

    def allocate(self, region: int) -> Tuple[RRMEntry, Optional[RRMEntry]]:
        """Allocate an entry for *region*.

        Returns ``(new_entry, victim)`` where *victim* is the LRU entry
        evicted to make room (None if a free way existed). Allocating a
        region that is already present is a protocol error — callers must
        lookup first.
        """
        set_index = self.config.set_index(region)
        bucket = self._sets[set_index]
        if region in bucket:
            raise SimulationError(f"region {region} already present in set {set_index}")

        victim = None
        if len(bucket) >= self.config.n_ways:
            victim_region = min(bucket, key=lambda r: bucket[r].last_use)
            victim = bucket.pop(victim_region)
            victim.valid = False
            self.evictions += 1

        self._use_clock += 1
        entry = RRMEntry(
            region=region,
            blocks_per_region=self.config.blocks_per_region,
            last_use=self._use_clock,
        )
        bucket[region] = entry
        self.allocations += 1
        return entry, victim

    def invalidate(self, region: int) -> Optional[RRMEntry]:
        """Remove and return the entry for *region*, if present."""
        entry = self._sets[self.config.set_index(region)].pop(region, None)
        if entry is not None:
            entry.valid = False
        return entry

    def entries(self) -> Iterator[RRMEntry]:
        """All valid entries (iteration order: set-major, insertion order)."""
        for bucket in self._sets:
            yield from bucket.values()

    def hot_entries(self) -> Iterator[RRMEntry]:
        """All valid entries currently marked hot."""
        return (entry for entry in self.entries() if entry.hot)

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return sum(len(bucket) for bucket in self._sets)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def set_occupancy(self, set_index: int) -> int:
        """Valid entries in one set (for contention diagnostics)."""
        return len(self._sets[set_index])

    def register_metrics(self, registry, prefix: str = "rrm.tags") -> None:
        """Publish tag-array activity counters into *registry*."""
        registry.gauge(f"{prefix}.lookups", lambda: self.lookups)
        registry.gauge(f"{prefix}.hits", lambda: self.hits)
        registry.gauge(f"{prefix}.evictions", lambda: self.evictions)
        registry.gauge(f"{prefix}.allocations", lambda: self.allocations)
        registry.gauge(f"{prefix}.occupancy", lambda: self.occupancy)
        registry.derived(f"{prefix}.hit_rate", lambda: self.hit_rate)
