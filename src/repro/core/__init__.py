"""Region Retention Monitor (RRM) — the paper's primary contribution.

The RRM is a small set-associative structure between the LLC and the
memory controller. It:

1. observes LLC writes (*LLC Write Registration*), counting writes to
   dirty LLC entries per 4KB *Retention Region* to find hot regions while
   filtering out streaming writes;
2. decides the write mode of every memory write (*Memory Mode Decision*):
   3-SETs fast/short-retention for blocks in hot regions, 7-SETs
   slow/long-retention otherwise;
3. issues *Selective Fast Refresh* requests for short-retention blocks
   before their retention expires;
4. *decays* regions that stop being hot, rewriting their short-retention
   blocks with the long-retention mode.
"""

from repro.core.config import RRMConfig
from repro.core.entry import RRMEntry
from repro.core.tag_array import RRMTagArray
from repro.core.monitor import RegionRetentionMonitor, RRMStats
from repro.core.multimode import TieredRetentionMonitor, TieredRRMConfig

__all__ = [
    "RRMConfig",
    "RRMEntry",
    "RRMTagArray",
    "RegionRetentionMonitor",
    "RRMStats",
    "TieredRetentionMonitor",
    "TieredRRMConfig",
]
