"""Comparator baselines using the same write-latency/retention trade-off.

The paper's Section III-B argues that prior schemes built on the same
trade-off do not transfer to MLC PCM main memory. The strongest of them,
Amnesic Cache (Kang et al., MSST 2015), writes everything fast first and
*promotes* frequently surviving blocks to slow writes later. This module
implements that policy at main-memory granularity so the argument can be
measured rather than asserted:

- every demand write uses the fast short-retention mode;
- blocks are tracked in an RRM-sized set-associative structure;
- at each short-retention interrupt, a tracked block that was re-written
  during the interval is refreshed fast (it is hot — rewriting it slow
  would be wasted work), while a block that was *not* re-written is
  *promoted*: rewritten once with the slow mode and dropped from
  tracking;
- evicted entries must promote all their blocks immediately (the
  tracking structure is bounded, unlike a file cache's DRAM index).

The predicted failure mode (paper Section III-B): every cold block costs
two device writes (fast write + slow promotion), so write-once and
low-locality traffic roughly doubles its wear, and the promotion writes
also consume write bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import RRMConfig
from repro.core.entry import RRMEntry
from repro.core.monitor import RegionRetentionMonitor
from repro.engine import Simulator
from repro.memctrl.request import RequestType
from repro.pcm.write_modes import WriteModeTable


class PromotionMonitor(RegionRetentionMonitor):
    """Write-fast-first / promote-later baseline (Amnesic-style).

    Reuses the RRM's tag array, refresh dispatch and interrupt plumbing;
    only the policy differs. LLC write registrations are ignored — the
    policy learns from the memory writes themselves (its decision input
    is "was this block rewritten within the retention window", not LLC
    dirtiness).
    """

    def __init__(
        self,
        config: RRMConfig,
        modes: WriteModeTable,
        sim: Optional[Simulator] = None,
        controller=None,
    ) -> None:
        super().__init__(config, modes, sim=sim, controller=controller)
        self.promotions_issued = 0
        self.fast_refreshes = 0

    # ------------------------------------------------------------------
    def register_llc_write(self, block: int, was_dirty: bool) -> None:
        """LLC activity is irrelevant to this policy."""
        self.stats.clean_writes_filtered += 1

    def decide_write_mode(self, block: int) -> int:
        """Every write is fast; the write itself starts (or renews) the
        block's tracking."""
        region = self.config.region_of_block(block)
        entry = self.tags.lookup(region)
        if entry is None:
            entry, victim = self.tags.allocate(region)
            if victim is not None:
                self._handle_eviction(victim)
        offset = self.config.block_offset(block)
        entry.set_vector_bit(offset)
        entry.touched_vector |= 1 << offset
        self.stats.fast_decisions += 1
        return self.config.fast_n_sets

    # ------------------------------------------------------------------
    def on_refresh_interrupt(self) -> None:
        """Refresh re-written blocks fast; promote idle blocks slow."""
        self.stats.refresh_interrupts += 1
        if not self.config.selective_refresh_enabled:
            return
        deadline = None
        if self.sim is not None:
            deadline = self.sim.now + 1e9 * self.refresh_slack_s
        for entry in list(self.tags.entries()):
            base_block = entry.region * self.config.blocks_per_region
            for offset in list(entry.short_retention_offsets()):
                block = base_block + offset
                if entry.touched_vector >> offset & 1:
                    self.fast_refreshes += 1
                    self._queue_refresh(
                        block=block,
                        n_sets=self.config.fast_n_sets,
                        rtype=RequestType.RRM_REFRESH,
                        deadline_ns=deadline,
                    )
                else:
                    self._promote(entry, offset, block)
            entry.touched_vector = 0
            if entry.short_retention_vector == 0:
                self.tags.invalidate(entry.region)

    def _promote(self, entry: RRMEntry, offset: int, block: int) -> None:
        """Rewrite an idle fast block with the slow mode and untrack it."""
        self.promotions_issued += 1
        entry.short_retention_vector &= ~(1 << offset)
        self._queue_refresh(
            block=block,
            n_sets=self.config.slow_n_sets,
            rtype=RequestType.RRM_SLOW_REFRESH,
            deadline_ns=None,
        )

    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: str = "rrm") -> None:
        """Publish base monitor counters plus the promotion policy's own."""
        super().register_metrics(registry, prefix)
        registry.gauge(
            f"{prefix}.promotions_issued", lambda: self.promotions_issued
        )
        registry.gauge(f"{prefix}.fast_refreshes", lambda: self.fast_refreshes)

    # ------------------------------------------------------------------
    def on_decay_tick(self) -> None:
        """No decay machinery: promotion subsumes it."""
        self.stats.decay_ticks += 1

    def _handle_eviction(self, victim: RRMEntry) -> None:
        """A bounded tracker cannot forget short-retention blocks: an
        evicted entry's blocks must all be promoted immediately."""
        if victim.short_retention_vector == 0:
            return
        self.stats.evictions_with_fast_blocks += 1
        base_block = victim.region * self.config.blocks_per_region
        for offset in victim.short_retention_offsets():
            self.promotions_issued += 1
            self._queue_refresh(
                block=base_block + offset,
                n_sets=self.config.slow_n_sets,
                rtype=RequestType.RRM_SLOW_REFRESH,
                deadline_ns=None,
            )
