"""RRM entry: the per-region record (paper Section IV-C).

Each entry tracks one aligned *Retention Region* (4KB by default) with:

- ``valid`` (1 bit) and the region address tag;
- ``hot`` (1 bit) — set once ``dirty_write_counter`` reaches
  ``hot_threshold``;
- ``dirty_write_counter`` — counts LLC writes to *dirty* LLC lines in the
  region (clean writes are ignored to filter streaming patterns);
- ``short_retention_vector`` — one bit per block; a set bit means the
  block's next memory write (and its refreshes) use the fast 3-SETs mode;
- ``decay_counter`` — a small cyclic counter driving demotion of regions
  that stop being hot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SimulationError


@dataclass
class RRMEntry:
    """One Retention Region record inside the RRM."""

    region: int
    blocks_per_region: int
    valid: bool = True
    hot: bool = False
    dirty_write_counter: int = 0
    #: Bitmask over the region's blocks; bit i set => block i is currently
    #: written with the fast short-retention mode.
    short_retention_vector: int = 0
    #: Bitmask for the optional middle tier (tiered/multi-mode RRM only;
    #: always zero under the paper's two-mode monitor).
    mid_retention_vector: int = 0
    #: Scratch bitmask for policies that track per-interval activity
    #: (e.g. the promotion baseline's "written this interval" bits).
    touched_vector: int = 0
    decay_counter: int = 0
    #: LRU timestamp maintained by the tag array.
    last_use: int = 0

    def vector_bit(self, offset: int) -> bool:
        """Whether block *offset* within the region is short-retention."""
        self._check_offset(offset)
        return bool(self.short_retention_vector >> offset & 1)

    def set_vector_bit(self, offset: int) -> None:
        """Mark block *offset* as short-retention."""
        self._check_offset(offset)
        self.short_retention_vector |= 1 << offset

    def clear_vector(self) -> None:
        """Reset every block to the default long-retention mode."""
        self.short_retention_vector = 0

    def short_retention_offsets(self) -> Iterator[int]:
        """Offsets of all short-retention blocks, ascending."""
        vector = self.short_retention_vector
        offset = 0
        while vector:
            if vector & 1:
                yield offset
            vector >>= 1
            offset += 1

    @property
    def short_retention_count(self) -> int:
        """Number of short-retention blocks in the region."""
        return bin(self.short_retention_vector).count("1")

    def record_dirty_write(self, hot_threshold: int) -> bool:
        """Apply one dirty-LLC-write registration.

        Increments the counter while below *hot_threshold*; promotes the
        entry to hot exactly when the counter reaches the threshold.
        Returns True if this call promoted the entry.
        """
        promoted = False
        if self.dirty_write_counter < hot_threshold:
            self.dirty_write_counter += 1
            if self.dirty_write_counter == hot_threshold and not self.hot:
                self.hot = True
                promoted = True
        return promoted

    def tick_decay(self, ticks_per_interval: int) -> bool:
        """Advance the cyclic decay counter; True when it wraps to zero
        (the moment hotness is re-evaluated)."""
        self.decay_counter = (self.decay_counter + 1) % ticks_per_interval
        return self.decay_counter == 0

    def reevaluate_hotness(self, hot_threshold: int) -> bool:
        """Decay-wrap policy (paper Section IV-G).

        Returns True if the entry *stays hot* (counter still saturated; it
        is halved to demand renewed activity next interval). Returns False
        if the entry must be demoted — the caller then clears ``hot``,
        rewrites the short-retention blocks slowly and clears the vector.
        """
        if not self.hot:
            raise SimulationError("reevaluate_hotness on a cold entry")
        if self.dirty_write_counter >= hot_threshold:
            self.dirty_write_counter //= 2
            return True
        return False

    def demote(self) -> int:
        """Demote to cold; returns the short-retention vector that must be
        rewritten with the slow mode (the caller issues the refreshes)."""
        vector = self.short_retention_vector
        self.hot = False
        self.clear_vector()
        return vector

    # ------------------------------------------------------------------
    # Middle-tier helpers (tiered multi-mode RRM extension)
    # ------------------------------------------------------------------
    def mid_bit(self, offset: int) -> bool:
        """Whether block *offset* is in the middle retention tier."""
        self._check_offset(offset)
        return bool(self.mid_retention_vector >> offset & 1)

    def set_mid_bit(self, offset: int) -> None:
        """Move block *offset* into the middle tier (clearing fast)."""
        self._check_offset(offset)
        self.mid_retention_vector |= 1 << offset
        self.short_retention_vector &= ~(1 << offset)

    def mid_offsets(self) -> Iterator[int]:
        """Offsets of all middle-tier blocks, ascending."""
        vector = self.mid_retention_vector
        offset = 0
        while vector:
            if vector & 1:
                yield offset
            vector >>= 1
            offset += 1

    @property
    def mid_count(self) -> int:
        return bin(self.mid_retention_vector).count("1")

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.blocks_per_region:
            raise SimulationError(
                f"block offset {offset} out of range for "
                f"{self.blocks_per_region}-block region"
            )
