"""The Region Retention Monitor proper (paper Section IV).

The monitor glues together the tag array, the write-mode decision, the
selective-fast-refresh interrupt, and the decay machinery. It talks to the
memory controller through a narrow protocol (``can_accept`` / ``enqueue``
/ ``notify_space``) so it can be unit-tested against a stub.

Timing: the monitor does not consume simulation time itself — its 4-cycle
lookup is negligible against memory latencies (paper Table IV) — but its
refresh requests occupy banks and its refresh queue is bounded, so refresh
pressure is simulated faithfully.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Protocol

from repro.core.config import RRMConfig
from repro.core.entry import RRMEntry
from repro.core.tag_array import RRMTagArray
from repro.engine import Simulator
from repro.errors import ConfigError
from repro.memctrl.request import MemRequest, RequestType
from repro.pcm.write_modes import WriteModeTable
from repro.telemetry.trace import NULL_TRACER
from repro.utils.units import s_to_ns


class RefreshSink(Protocol):
    """What the monitor needs from the memory controller."""

    def can_accept(self, rtype: RequestType, block: int) -> bool: ...

    def enqueue(self, request: MemRequest) -> None: ...

    def notify_space(self, rtype, block, callback) -> None: ...


@dataclass
class RRMStats:
    """Counters describing RRM behaviour during a run."""

    registrations: int = 0
    clean_writes_filtered: int = 0
    promotions: int = 0
    demotions: int = 0
    renewals: int = 0
    evictions_with_fast_blocks: int = 0
    fast_decisions: int = 0
    slow_decisions: int = 0
    fast_refreshes_issued: int = 0
    slow_refreshes_issued: int = 0
    refresh_interrupts: int = 0
    decay_ticks: int = 0

    @property
    def decisions(self) -> int:
        return self.fast_decisions + self.slow_decisions

    @property
    def fast_write_fraction(self) -> float:
        return self.fast_decisions / self.decisions if self.decisions else 0.0

    def register_metrics(self, registry, prefix: str = "rrm") -> None:
        """Publish every monitor counter into a telemetry registry."""
        for field_name in (
            "registrations",
            "clean_writes_filtered",
            "promotions",
            "demotions",
            "renewals",
            "evictions_with_fast_blocks",
            "fast_decisions",
            "slow_decisions",
            "fast_refreshes_issued",
            "slow_refreshes_issued",
            "refresh_interrupts",
            "decay_ticks",
        ):
            registry.gauge(
                f"{prefix}.{field_name}",
                lambda f=field_name: getattr(self, f),
            )
        registry.derived(
            f"{prefix}.fast_write_fraction", lambda: self.fast_write_fraction
        )


class RegionRetentionMonitor:
    """Tracks region write hotness and directs write modes and refreshes.

    Args:
        config: Structure/policy parameters.
        modes: The device's write-mode table (supplies retention times
            from which the refresh interval and deadline slack derive).
        sim: Simulator used for the periodic refresh interrupt and decay
            ticks. May be None for purely combinational unit tests; then
            :meth:`start` must not be called.
        controller: Refresh request sink. May be None in unit tests, in
            which case refreshes are only counted.
    """

    def __init__(
        self,
        config: RRMConfig,
        modes: WriteModeTable,
        sim: Optional[Simulator] = None,
        controller: Optional[RefreshSink] = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.config = config
        self.modes = modes
        self.sim = sim
        self.controller = controller
        #: Telemetry recorder; the shared no-op unless tracing is on.
        self.tracer = tracer
        self.tags = RRMTagArray(config)
        self.stats = RRMStats()

        fast_retention = modes.mode(config.fast_n_sets).retention_s
        #: Interval between short-retention interrupts: the fast mode's
        #: retention minus a safety slack (2.0s vs 2.01s in the paper).
        self.refresh_slack_s = fast_retention * config.refresh_slack_fraction
        self.refresh_interval_s = modes.refresh_interval_s(
            config.fast_n_sets, slack_s=self.refresh_slack_s
        )
        #: Decay tick period: 1/16 of the refresh interval by default.
        self.decay_period_s = self.refresh_interval_s / config.decay_ticks_per_interval

        self._pending_refreshes: Deque[MemRequest] = deque()
        self._draining = False
        self._space_wait_registered = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic refresh interrupt and decay tick."""
        if self.sim is None:
            raise ConfigError("monitor started without a simulator")
        if self._started:
            raise ConfigError("monitor already started")
        self._started = True
        self.sim.schedule_periodic(
            s_to_ns(self.refresh_interval_s), self.on_refresh_interrupt
        )
        self.sim.schedule_periodic(s_to_ns(self.decay_period_s), self.on_decay_tick)

    # ------------------------------------------------------------------
    # Input 1: LLC write registration (paper Section IV-D)
    # ------------------------------------------------------------------
    def register_llc_write(self, block: int, was_dirty: bool) -> None:
        """Record one LLC write.

        Only writes to *dirty* LLC entries are registered — a streaming
        pattern touches each line once (clean), so requiring dirtiness
        filters spatial-only locality out of the hotness statistics.
        (``config.streaming_filter=False`` disables this, for ablation.)
        """
        if not was_dirty and self.config.streaming_filter:
            self.stats.clean_writes_filtered += 1
            return
        self.stats.registrations += 1

        region = self.config.region_of_block(block)
        entry = self.tags.lookup(region)
        if entry is None:
            entry, victim = self.tags.allocate(region)
            if victim is not None:
                self._handle_eviction(victim)

        if entry.record_dirty_write(self.config.hot_threshold):
            self.stats.promotions += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "promotion", "monitor", args={"region": region}
                )
        if entry.hot:
            entry.set_vector_bit(self.config.block_offset(block))

    # ------------------------------------------------------------------
    # Input 2 / Output 1: memory write mode decision (Section IV-E)
    # ------------------------------------------------------------------
    def decide_write_mode(self, block: int) -> int:
        """SET count for a memory write to *block*.

        Fast (3-SETs) iff the block's region is tracked and the block's
        short-retention bit is set; slow (7-SETs) otherwise. The lookup
        does not disturb LRU (it is a read of the retention array, not a
        registration).
        """
        region = self.config.region_of_block(block)
        entry = self.tags.lookup(region, touch=False)
        if entry is not None and entry.vector_bit(self.config.block_offset(block)):
            self.stats.fast_decisions += 1
            return self.config.fast_n_sets
        self.stats.slow_decisions += 1
        return self.config.slow_n_sets

    # ------------------------------------------------------------------
    # Output 2: selective fast refresh (Section IV-F)
    # ------------------------------------------------------------------
    def on_refresh_interrupt(self) -> None:
        """Re-write every short-retention block of every hot entry with the
        fast mode, before the fast retention expires."""
        self.stats.refresh_interrupts += 1
        if not self.config.selective_refresh_enabled:
            return  # fault injection: let short-retention data expire
        deadline = None
        if self.sim is not None:
            deadline = self.sim.now + s_to_ns(self.refresh_slack_s)
        issued_before = self.stats.fast_refreshes_issued
        for entry in self.tags.hot_entries():
            base_block = entry.region * self.config.blocks_per_region
            for offset in entry.short_retention_offsets():
                self._queue_refresh(
                    block=base_block + offset,
                    n_sets=self.config.fast_n_sets,
                    rtype=RequestType.RRM_REFRESH,
                    deadline_ns=deadline,
                )
        if self.tracer.enabled:
            self.tracer.instant(
                "refresh_interrupt",
                "monitor",
                args={
                    "interrupt": self.stats.refresh_interrupts,
                    "refreshes": self.stats.fast_refreshes_issued - issued_before,
                },
            )

    # ------------------------------------------------------------------
    # Decay (Section IV-G)
    # ------------------------------------------------------------------
    def on_decay_tick(self) -> None:
        """Advance every entry's decay counter; re-evaluate hotness on wrap."""
        self.stats.decay_ticks += 1
        if not self.config.decay_enabled:
            return
        for entry in list(self.tags.entries()):
            if not entry.tick_decay(self.config.decay_ticks_per_interval):
                continue
            if not entry.hot:
                continue
            if entry.reevaluate_hotness(self.config.hot_threshold):
                self.stats.renewals += 1
            else:
                self._demote(entry)

    def _demote(self, entry: RRMEntry) -> None:
        """Demote a no-longer-hot entry: its short-retention blocks must be
        rewritten with the slow mode so they survive without fast refresh."""
        self.stats.demotions += 1
        base_block = entry.region * self.config.blocks_per_region
        offsets = list(entry.short_retention_offsets())
        if self.tracer.enabled:
            # Drift demotion: the entry went cold, so its short-retention
            # blocks must be rewritten slow before drift expires them.
            self.tracer.instant(
                "demotion",
                "monitor",
                args={"region": entry.region, "rewrites": len(offsets)},
            )
        entry.demote()
        for offset in offsets:
            self._queue_refresh(
                block=base_block + offset,
                n_sets=self.config.slow_n_sets,
                rtype=RequestType.RRM_SLOW_REFRESH,
                deadline_ns=None,
            )

    def _handle_eviction(self, victim: RRMEntry) -> None:
        """An evicted entry's short-retention blocks lose their refresh
        coverage; rewrite them with the slow mode (the paper leaves this
        case implicit — dropping them would corrupt data, so we rewrite,
        controlled by ``config.refresh_on_eviction``)."""
        if victim.short_retention_vector == 0:
            return
        self.stats.evictions_with_fast_blocks += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "eviction",
                "monitor",
                args={"region": victim.region,
                      "rewritten": self.config.refresh_on_eviction},
            )
        if not self.config.refresh_on_eviction:
            return
        base_block = victim.region * self.config.blocks_per_region
        for offset in victim.short_retention_offsets():
            self._queue_refresh(
                block=base_block + offset,
                n_sets=self.config.slow_n_sets,
                rtype=RequestType.RRM_SLOW_REFRESH,
                deadline_ns=None,
            )

    # ------------------------------------------------------------------
    # Refresh dispatch with queue backpressure
    # ------------------------------------------------------------------
    def _queue_refresh(
        self,
        block: int,
        n_sets: int,
        rtype: RequestType,
        deadline_ns: Optional[float],
    ) -> None:
        if rtype is RequestType.RRM_REFRESH:
            self.stats.fast_refreshes_issued += 1
        else:
            self.stats.slow_refreshes_issued += 1
        if self.controller is None:
            return
        request = MemRequest(
            rtype=rtype,
            block=block,
            n_sets=n_sets,
            deadline_ns=deadline_ns,
            # Stamp creation time so latency attribution can report the
            # pre-queue backpressure a full refresh queue imposes.
            generated_time_ns=self.sim.now if self.sim is not None else None,
        )
        self._pending_refreshes.append(request)
        if not self._space_wait_registered:
            self._drain_refreshes()

    def _drain_refreshes(self) -> None:
        """Push pending refreshes into the controller's bounded refresh
        queues; re-arm on space when a queue is full.

        Guarded against reentrancy: enqueueing a refresh kicks the
        scheduler, which may free a queue slot and wake this very drain —
        the guard turns that recursive wake into a no-op since the
        outermost call is already draining.
        """
        if self._draining:
            return
        assert self.controller is not None
        self._draining = True
        try:
            while self._pending_refreshes:
                head = self._pending_refreshes[0]
                if not self.controller.can_accept(head.rtype, head.block):
                    if not self._space_wait_registered:
                        self._space_wait_registered = True
                        self.controller.notify_space(
                            head.rtype, head.block, self._on_refresh_space
                        )
                    return
                self._pending_refreshes.popleft()
                self.controller.enqueue(head)
        finally:
            self._draining = False

    def _on_refresh_space(self) -> None:
        """Wake path for refresh-queue space: exactly one waiter is kept
        registered at a time."""
        self._space_wait_registered = False
        self._drain_refreshes()

    @property
    def pending_refresh_count(self) -> int:
        """Refreshes generated but not yet accepted by the controller."""
        return len(self._pending_refreshes)

    def register_metrics(self, registry, prefix: str = "rrm") -> None:
        """Publish monitor counters plus live queue state into *registry*."""
        self.stats.register_metrics(registry, prefix)
        registry.gauge(
            f"{prefix}.pending_refreshes", lambda: len(self._pending_refreshes)
        )
        registry.gauge(f"{prefix}.tracked_regions", lambda: self.tags.occupancy)
        self.tags.register_metrics(registry, f"{prefix}.tags")
