"""Tiered (multi-mode) Region Retention Monitor — a paper extension.

The paper restricts the RRM to two write modes "for implementation
simplicity" (Section IV-A). This module implements the natural extension
it leaves open: a *middle tier*. Regions whose dirty-write counter sits
between ``warm_threshold`` and ``hot_threshold`` are written with an
intermediate mode (5 SET iterations by default — 850ns latency, ~104s
retention), capturing part of the fast mode's latency benefit at a
refresh interval two orders of magnitude longer than the fast mode's.

Tier transitions:

- counter reaches ``hot_threshold``      -> region is *hot*; subsequent
  registrations mark blocks fast (3-SETs), as in the base monitor;
- counter reaches ``warm_threshold``     -> region is *warm*; subsequent
  registrations mark blocks mid (5-SETs);
- decay wrap, counter still >= hot       -> stays hot (counter halves);
- decay wrap, counter in [warm, hot)     -> hot entries *downgrade*: fast
  blocks are rewritten with the mid mode and join the mid vector;
- decay wrap, counter < warm             -> full demotion: fast and mid
  blocks are rewritten with the slow mode.

The mid tier gets its own refresh interrupt at the mid mode's retention
(minus the configured slack fraction) and its own deadline accounting;
eviction rewrites both vectors with the slow mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import RRMConfig
from repro.core.entry import RRMEntry
from repro.core.monitor import RegionRetentionMonitor
from repro.engine import Simulator
from repro.errors import ConfigError
from repro.memctrl.request import RequestType
from repro.pcm.write_modes import WriteModeTable
from repro.utils.units import s_to_ns


@dataclass(frozen=True)
class TieredRRMConfig(RRMConfig):
    """RRM configuration with a middle retention tier.

    Attributes:
        mid_n_sets: SET count of the middle tier (strictly between the
            fast and slow modes).
        warm_threshold: Dirty-write count at which a region enters the
            warm tier (defaults to half the hot threshold).
    """

    mid_n_sets: int = 5
    warm_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.fast_n_sets < self.mid_n_sets < self.slow_n_sets:
            raise ConfigError(
                f"mid mode ({self.mid_n_sets} SETs) must lie strictly "
                f"between fast ({self.fast_n_sets}) and slow ({self.slow_n_sets})"
            )
        warm = self.effective_warm_threshold
        if not 0 < warm < self.hot_threshold:
            raise ConfigError(
                f"warm_threshold {warm} must be in (0, hot_threshold)"
            )

    @property
    def effective_warm_threshold(self) -> int:
        if self.warm_threshold is not None:
            return self.warm_threshold
        return max(1, self.hot_threshold // 2)


class TieredRetentionMonitor(RegionRetentionMonitor):
    """Three-tier variant of the Region Retention Monitor."""

    def __init__(
        self,
        config: TieredRRMConfig,
        modes: WriteModeTable,
        sim: Optional[Simulator] = None,
        controller=None,
    ) -> None:
        if not isinstance(config, TieredRRMConfig):
            raise ConfigError("TieredRetentionMonitor needs a TieredRRMConfig")
        super().__init__(config, modes, sim=sim, controller=controller)
        self.config: TieredRRMConfig = config
        mid_retention = modes.mode(config.mid_n_sets).retention_s
        self.mid_refresh_slack_s = mid_retention * config.refresh_slack_fraction
        self.mid_refresh_interval_s = mid_retention - self.mid_refresh_slack_s
        self.mid_refreshes_issued = 0
        self.mid_decisions = 0
        self.downgrades = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        assert self.sim is not None
        self.sim.schedule_periodic(
            s_to_ns(self.mid_refresh_interval_s), self.on_mid_refresh_interrupt
        )

    def register_metrics(self, registry, prefix: str = "rrm") -> None:
        """Publish base monitor counters plus the mid-tier policy's own."""
        super().register_metrics(registry, prefix)
        registry.gauge(
            f"{prefix}.mid_refreshes_issued", lambda: self.mid_refreshes_issued
        )
        registry.gauge(f"{prefix}.mid_decisions", lambda: self.mid_decisions)
        registry.gauge(f"{prefix}.downgrades", lambda: self.downgrades)

    # ------------------------------------------------------------------
    # Registration: extend with the warm tier
    # ------------------------------------------------------------------
    def register_llc_write(self, block: int, was_dirty: bool) -> None:
        if not was_dirty and self.config.streaming_filter:
            self.stats.clean_writes_filtered += 1
            return
        self.stats.registrations += 1

        region = self.config.region_of_block(block)
        entry = self.tags.lookup(region)
        if entry is None:
            entry, victim = self.tags.allocate(region)
            if victim is not None:
                self._handle_eviction(victim)

        if entry.record_dirty_write(self.config.hot_threshold):
            self.stats.promotions += 1
        offset = self.config.block_offset(block)
        if entry.hot:
            entry.set_vector_bit(offset)
            entry.mid_retention_vector &= ~(1 << offset)
        elif entry.dirty_write_counter >= self.config.effective_warm_threshold:
            entry.set_mid_bit(offset)

    # ------------------------------------------------------------------
    # Mode decision: three-way
    # ------------------------------------------------------------------
    def decide_write_mode(self, block: int) -> int:
        region = self.config.region_of_block(block)
        entry = self.tags.lookup(region, touch=False)
        if entry is not None:
            offset = self.config.block_offset(block)
            if entry.vector_bit(offset):
                self.stats.fast_decisions += 1
                return self.config.fast_n_sets
            if entry.mid_bit(offset):
                self.mid_decisions += 1
                return self.config.mid_n_sets
        self.stats.slow_decisions += 1
        return self.config.slow_n_sets

    # ------------------------------------------------------------------
    # Mid-tier selective refresh
    # ------------------------------------------------------------------
    def on_mid_refresh_interrupt(self) -> None:
        """Rewrite every mid-tier block with the mid mode before the mid
        retention expires."""
        if not self.config.selective_refresh_enabled:
            return
        deadline = None
        if self.sim is not None:
            deadline = self.sim.now + s_to_ns(self.mid_refresh_slack_s)
        for entry in self.tags.entries():
            if entry.mid_retention_vector == 0:
                continue
            base_block = entry.region * self.config.blocks_per_region
            for offset in entry.mid_offsets():
                self.mid_refreshes_issued += 1
                self._queue_refresh(
                    block=base_block + offset,
                    n_sets=self.config.mid_n_sets,
                    rtype=RequestType.RRM_REFRESH,
                    deadline_ns=deadline,
                )
        # Note: _queue_refresh also counts these in the base class's
        # fast_refreshes_issued (they share the RRM_REFRESH request class);
        # mid_refreshes_issued is the per-tier counter.

    # ------------------------------------------------------------------
    # Decay: graded demotion
    # ------------------------------------------------------------------
    def on_decay_tick(self) -> None:
        self.stats.decay_ticks += 1
        if not self.config.decay_enabled:
            return
        warm_threshold = self.config.effective_warm_threshold
        for entry in list(self.tags.entries()):
            if not entry.tick_decay(self.config.decay_ticks_per_interval):
                continue
            if entry.hot:
                if entry.reevaluate_hotness(self.config.hot_threshold):
                    self.stats.renewals += 1
                elif entry.dirty_write_counter >= warm_threshold:
                    self._downgrade_to_warm(entry)
                else:
                    self._demote_fully(entry)
            elif entry.mid_retention_vector:
                if entry.dirty_write_counter >= warm_threshold:
                    entry.dirty_write_counter //= 2
                else:
                    self._demote_fully(entry)

    def _downgrade_to_warm(self, entry: RRMEntry) -> None:
        """Hot -> warm: fast blocks are rewritten with the mid mode and
        tracked in the mid vector from now on."""
        self.downgrades += 1
        base_block = entry.region * self.config.blocks_per_region
        offsets = list(entry.short_retention_offsets())
        entry.hot = False
        for offset in offsets:
            entry.set_mid_bit(offset)
            self._queue_refresh(
                block=base_block + offset,
                n_sets=self.config.mid_n_sets,
                rtype=RequestType.RRM_REFRESH,
                deadline_ns=None,
            )

    def _demote_fully(self, entry: RRMEntry) -> None:
        """Warm/hot -> cold: everything not slow is rewritten slow."""
        self.stats.demotions += 1
        base_block = entry.region * self.config.blocks_per_region
        offsets = set(entry.short_retention_offsets()) | set(entry.mid_offsets())
        entry.demote()
        entry.mid_retention_vector = 0
        for offset in sorted(offsets):
            self._queue_refresh(
                block=base_block + offset,
                n_sets=self.config.slow_n_sets,
                rtype=RequestType.RRM_SLOW_REFRESH,
                deadline_ns=None,
            )

    def _handle_eviction(self, victim: RRMEntry) -> None:
        if victim.short_retention_vector == 0 and victim.mid_retention_vector == 0:
            return
        self.stats.evictions_with_fast_blocks += 1
        if not self.config.refresh_on_eviction:
            return
        base_block = victim.region * self.config.blocks_per_region
        offsets = set(victim.short_retention_offsets()) | set(victim.mid_offsets())
        for offset in sorted(offsets):
            self._queue_refresh(
                block=base_block + offset,
                n_sets=self.config.slow_n_sets,
                rtype=RequestType.RRM_SLOW_REFRESH,
                deadline_ns=None,
            )
