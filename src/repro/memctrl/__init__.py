"""Memory controller: address decoding, bounded priority queues and the
per-channel scheduler with write pausing and open-page policy.

Queue priorities follow the paper's Table V: the RRM refresh queue has the
highest priority (its requests carry a hard retention deadline), then the
read queue, then the write queue.
"""

from repro.memctrl.address_map import AddressMap, DecodedAddress
from repro.memctrl.request import MemRequest, RequestType
from repro.memctrl.queues import BoundedQueue, QueueSet
from repro.memctrl.controller import ControllerStats, MemoryController

__all__ = [
    "AddressMap",
    "DecodedAddress",
    "MemRequest",
    "RequestType",
    "BoundedQueue",
    "QueueSet",
    "ControllerStats",
    "MemoryController",
]
