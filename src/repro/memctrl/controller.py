"""Per-channel memory scheduler.

Scheduling policy (paper Table V):

- three bounded queues per channel — RRM refresh (highest priority), read
  (middle), write (lowest);
- FR-FCFS within a queue: the oldest request whose bank can accept it wins,
  searched within a small associative window;
- open-page row-buffer policy for reads; writes are write-through and
  bypass the row buffer;
- write pausing: reads may preempt an in-flight write at SET boundaries;
- watermark-based write drain: because writes have the lowest priority,
  they issue only when no reads are waiting or when the write queue climbs
  above a high watermark (hysteresis down to a low watermark), which is how
  real controllers avoid both read interference and write-queue deadlock.

Backpressure is explicit: producers must call :meth:`MemoryController.can_accept`
first; when a queue is full they register a callback with
:meth:`MemoryController.notify_space` and are woken when space frees. This
is the mechanism through which long write latencies reach the CPU: the
write queue backs up, the LLC cannot evict, and the core stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import Simulator
from repro.errors import ConfigError, SimulationError
from repro.memctrl.address_map import AddressMap
from repro.memctrl.queues import QueueSet
from repro.memctrl.request import MemRequest, RequestType
from repro.pcm.device import PCMDevice
from repro.telemetry.trace import NULL_TRACER


@dataclass
class ControllerStats:
    """Aggregate controller statistics for one run."""

    reads_completed: int = 0
    writes_completed: int = 0
    rrm_refreshes_completed: int = 0
    rrm_slow_refreshes_completed: int = 0
    fast_writes: int = 0
    slow_writes: int = 0
    read_latency_sum_ns: float = 0.0
    write_latency_sum_ns: float = 0.0
    retention_violations: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def avg_read_latency_ns(self) -> float:
        if not self.reads_completed:
            return 0.0
        return self.read_latency_sum_ns / self.reads_completed

    @property
    def avg_write_latency_ns(self) -> float:
        if not self.writes_completed:
            return 0.0
        return self.write_latency_sum_ns / self.writes_completed

    @property
    def row_hit_rate(self) -> float:
        accesses = self.row_hits + self.row_misses
        return self.row_hits / accesses if accesses else 0.0

    def register_metrics(self, registry, prefix: str = "memctrl") -> None:
        """Publish every counter (plus derived averages) into *registry*."""
        for field_name in (
            "reads_completed",
            "writes_completed",
            "rrm_refreshes_completed",
            "rrm_slow_refreshes_completed",
            "fast_writes",
            "slow_writes",
            "read_latency_sum_ns",
            "write_latency_sum_ns",
            "retention_violations",
            "row_hits",
            "row_misses",
        ):
            registry.gauge(
                f"{prefix}.{field_name}",
                lambda f=field_name: getattr(self, f),
            )
        registry.derived(
            f"{prefix}.avg_read_latency_ns", lambda: self.avg_read_latency_ns
        )
        registry.derived(
            f"{prefix}.avg_write_latency_ns", lambda: self.avg_write_latency_ns
        )
        registry.derived(f"{prefix}.row_hit_rate", lambda: self.row_hit_rate)


CompletionListener = Callable[[MemRequest], None]


class MemoryController:
    """Schedules memory requests onto the PCM device banks."""

    #: Associative search depth for FR-FCFS queue scans.
    SCHED_WINDOW = 8

    def __init__(
        self,
        sim: Simulator,
        device: PCMDevice,
        address_map: Optional[AddressMap] = None,
        *,
        refresh_queue_capacity: int = 64,
        read_queue_capacity: int = 32,
        write_queue_capacity: int = 64,
        write_drain_high: Optional[int] = None,
        write_drain_low: Optional[int] = None,
        tracer=NULL_TRACER,
        attribution=None,
    ) -> None:
        self.sim = sim
        self.device = device
        #: Telemetry recorder; the shared no-op unless tracing is on.
        self.tracer = tracer
        #: Optional latency-attribution collector
        #: (:class:`repro.attribution.AttributionCollector`); every hook
        #: below is guarded so the scheduler hot path is unchanged when
        #: attribution is off.
        self._attribution = attribution
        self.address_map = address_map or AddressMap(
            n_channels=device.n_channels,
            banks_per_channel=device.banks_per_channel,
            row_bytes=device.row_bytes,
            size_bytes=device.size_bytes,
        )
        self.stats = ControllerStats()
        self._queues: List[QueueSet] = [
            QueueSet(
                refresh_capacity=refresh_queue_capacity,
                read_capacity=read_queue_capacity,
                write_capacity=write_queue_capacity,
            )
            for _ in range(device.n_channels)
        ]
        self._write_drain_high = (
            write_drain_high if write_drain_high is not None else (write_queue_capacity * 3) // 4
        )
        self._write_drain_low = (
            write_drain_low if write_drain_low is not None else write_queue_capacity // 4
        )
        if not 0 <= self._write_drain_low <= self._write_drain_high <= write_queue_capacity:
            raise ConfigError("write drain watermarks out of order")
        self._draining_writes = [False] * device.n_channels
        #: Issued-but-unfinished request count per flat bank index.
        self._bank_inflight: List[int] = [0] * device.n_banks
        #: Issued-but-unfinished request count per channel.
        self._channel_inflight: List[int] = [0] * device.n_channels
        #: Banks flattened channel-major, matching the flat bank index.
        self._banks_flat = device.banks()
        self._banks_per_channel = device.banks_per_channel
        #: Per flat bank index: the in-flight write request and its
        #: completion event, so pausing reads can push the completion back.
        self._inflight_write: List[Optional[tuple]] = [None] * device.n_banks
        #: Per-channel queue tuples in priority order (hot-path cache).
        self._priority_queues = [
            tuple(qs.in_priority_order()) for qs in self._queues
        ]
        if attribution is not None:
            for queue_set in self._queues:
                for queue in queue_set.in_priority_order():
                    queue.issue_observer = attribution.on_dequeue
        #: Space waiters per (channel, request class name).
        self._space_waiters: Dict[Tuple[int, str], List[Callable[[], None]]] = {}
        self._completion_listeners: List[CompletionListener] = []
        #: Optional latency histograms (telemetry detail metrics).
        self._read_latency_hist = None
        self._write_latency_hist = None

    # ------------------------------------------------------------------
    # Producer-facing API
    # ------------------------------------------------------------------
    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Register a callback fired on every request completion."""
        self._completion_listeners.append(listener)

    def register_metrics(self, registry, *, detailed: bool = False) -> None:
        """Publish controller stats and queue-depth gauges into *registry*.

        With *detailed*, also installs service-latency histograms — those
        record on every completion, so they are opt-in (telemetry on).
        """
        self.stats.register_metrics(registry)
        registry.gauge("memctrl.pending_requests", self.pending_requests)
        registry.gauge("memctrl.inflight_requests", self.inflight_requests)
        if detailed:
            bounds = [50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000]
            self._read_latency_hist = registry.histogram(
                "memctrl.read_latency_hist_ns", bounds
            )
            self._write_latency_hist = registry.histogram(
                "memctrl.write_latency_hist_ns", bounds
            )

    def channel_of(self, block: int) -> int:
        return self.address_map.channel_of_block(block)

    def can_accept(self, rtype: RequestType, block: int) -> bool:
        """Whether the queue a (*rtype*, *block*) request maps to has room."""
        channel = self.address_map.channel_of_block(block)
        return not self._queues[channel].queue_for(rtype).full

    def enqueue(self, request: MemRequest) -> None:
        """Accept a request. The caller must have checked :meth:`can_accept`."""
        request.decoded = decoded = self.address_map.decode_block(request.block)
        request.bank_index = decoded.channel * self._banks_per_channel + decoded.bank
        request.issue_time_ns = self.sim.now
        if self._attribution is not None:
            self._attribution.on_enqueue(request)
        self._queues[decoded.channel].queue_for(request.rtype).push(request)
        self._kick(decoded.channel)

    def notify_space(self, rtype: RequestType, block: int, callback: Callable[[], None]) -> None:
        """Invoke *callback* once the queue for (*rtype*, *block*) frees a slot.

        One-shot: the callback is dropped after firing and should re-check
        :meth:`can_accept` (another producer may have raced for the slot).
        """
        channel = self.channel_of(block)
        key = (channel, self._queues[channel].queue_for(rtype).name)
        self._space_waiters.setdefault(key, []).append(callback)

    def pending_requests(self) -> int:
        """Requests sitting in any queue (not yet issued to a bank)."""
        return sum(qs.total_pending for qs in self._queues)

    def inflight_requests(self) -> int:
        """Requests issued to banks but not yet completed."""
        return sum(self._bank_inflight)

    def idle(self) -> bool:
        """True when no request is queued or in flight."""
        return self.pending_requests() == 0 and self.inflight_requests() == 0

    # ------------------------------------------------------------------
    # Scheduler core
    # ------------------------------------------------------------------
    def _kick(self, channel: int) -> None:
        """Issue every request that can be serviced on *channel* right now.

        Hot path: the per-queue scan is inlined (no per-entry callback) and
        queues other than the read queue are skipped outright when every
        bank on the channel is busy — only reads can still start, by
        pausing an in-flight write.
        """
        queues = self._queues[channel]
        read_queue = queues.read_queue
        now = self.sim.now
        inflight = self._bank_inflight
        banks = self._banks_flat
        window = self.SCHED_WINDOW
        read_type = RequestType.READ

        self._update_drain_state(channel)

        while True:
            free_banks = self._banks_per_channel - self._channel_inflight[channel]
            issued = False
            for queue in self._priority_queues[channel]:
                if free_banks == 0 and queue is not read_queue:
                    continue
                entries = queue._entries
                if not entries:
                    continue
                if queue is queues.write_queue and not self._write_issue_allowed(channel):
                    continue
                pick = -1
                limit = min(len(entries), window)
                for i in range(limit):
                    req = entries[i]
                    n = inflight[req.bank_index]
                    if n == 0:
                        pick = i
                        break
                    if n == 1 and req.rtype is read_type:
                        bank = banks[req.bank_index]
                        # A single in-flight pausable write lets a read cut in.
                        if bank.read_start_time(now) < bank.available_at(now):
                            pick = i
                            break
                if pick >= 0:
                    request = entries[pick]
                    del entries[pick]
                    if self._attribution is not None:
                        queue.note_issue(request, pick)
                    self._issue(channel, request)
                    self._wake_space_waiters(channel, queue.name)
                    issued = True
                    break  # restart from the highest-priority queue
            if not issued:
                return

    def _write_issue_allowed(self, channel: int) -> bool:
        """Writes issue when draining or when no higher-priority work waits."""
        queues = self._queues[channel]
        if self._draining_writes[channel]:
            return True
        return queues.read_queue.empty and queues.refresh_queue.empty

    def _update_drain_state(self, channel: int) -> None:
        occupancy = len(self._queues[channel].write_queue)
        if occupancy >= self._write_drain_high:
            self._draining_writes[channel] = True
        elif occupancy <= self._write_drain_low:
            self._draining_writes[channel] = False

    def _bank_ready(self, request: MemRequest, now: float) -> bool:
        """Whether *request*'s bank can take it (free, or pausable for
        reads). Kept as the documented single-request predicate; the kick
        loop inlines the same logic."""
        inflight = self._bank_inflight[request.bank_index]
        if inflight == 0:
            return True
        if request.rtype is RequestType.READ and inflight == 1:
            bank = self._banks_flat[request.bank_index]
            return bank.read_start_time(now) < bank.available_at(now)
        return False

    def _issue(self, channel: int, request: MemRequest) -> None:
        decoded = request.decoded
        bank = self.device.bank(decoded.channel, decoded.bank)
        now = self.sim.now

        is_write = request.rtype is not RequestType.READ
        if not is_write:
            start, finish, hit = bank.schedule_read(now, decoded.row)
            if hit:
                self.stats.row_hits += 1
            else:
                self.stats.row_misses += 1
        else:
            if request.n_sets is None:
                raise SimulationError(f"write request without a mode: {request}")
            mode = self.device.modes.mode(request.n_sets)
            start, finish = bank.schedule_write(
                now, decoded.row, mode.latency_ns, mode.set_boundaries_ns
            )

        request.start_time_ns = start
        request.finish_time_ns = finish
        if self._attribution is not None:
            if is_write:
                self._attribution.on_write_issue(request)
            else:
                self._attribution.on_read_issue(request, hit)
        self._bank_inflight[request.bank_index] += 1
        self._channel_inflight[channel] += 1
        event = self.sim.schedule_at(finish, lambda: self._complete(channel, request))
        if is_write:
            self._inflight_write[request.bank_index] = (request, event)
        else:
            self._reschedule_paused_write(channel, request, bank)

    def _reschedule_paused_write(self, channel: int, read_request: MemRequest, bank) -> None:
        """If the read just issued paused this bank's in-flight write, move
        the write's completion event to the extended finish time."""
        entry = self._inflight_write[read_request.bank_index]
        if entry is None:
            return
        write_request, event = entry
        new_end = bank.write_end_time()
        if new_end is None or new_end <= write_request.finish_time_ns:
            return
        event.cancel()
        write_request.finish_time_ns = new_end
        new_event = self.sim.schedule_at(
            new_end, lambda: self._complete(channel, write_request)
        )
        self._inflight_write[read_request.bank_index] = (write_request, new_event)
        if self._attribution is not None:
            self._attribution.on_write_paused(write_request, read_request, new_end)

    def _complete(self, channel: int, request: MemRequest) -> None:
        self._bank_inflight[request.bank_index] -= 1
        self._channel_inflight[channel] -= 1
        if self._bank_inflight[request.bank_index] < 0:
            raise SimulationError("bank in-flight count went negative")
        entry = self._inflight_write[request.bank_index]
        if entry is not None and entry[0] is request:
            self._inflight_write[request.bank_index] = None

        finish = request.finish_time_ns
        assert finish is not None
        latency = finish - request.issue_time_ns

        if request.rtype is RequestType.READ:
            self.stats.reads_completed += 1
            self.stats.read_latency_sum_ns += latency
            if self._read_latency_hist is not None:
                self._read_latency_hist.record(latency)
        elif request.rtype is RequestType.WRITE:
            self.stats.writes_completed += 1
            self.stats.write_latency_sum_ns += latency
            if self._write_latency_hist is not None:
                self._write_latency_hist.record(latency)
            self._count_write_mode(request)
        elif request.rtype is RequestType.RRM_REFRESH:
            self.stats.rrm_refreshes_completed += 1
        else:
            self.stats.rrm_slow_refreshes_completed += 1

        violated = request.deadline_ns is not None and finish > request.deadline_ns
        if violated:
            self.stats.retention_violations += 1

        anatomy_args = None
        if self._attribution is not None:
            # Finalise the latency anatomy (conservation is checked here);
            # the compact component map rides on the span args below.
            anatomy_args = self._attribution.on_complete(request)

        if self.tracer.enabled:
            # One span per serviced request, laned by flat bank index so
            # Perfetto shows per-bank occupancy; the queue wait rides in args.
            start = request.start_time_ns
            assert start is not None
            self.tracer.complete(
                request.rtype.value,
                "memctrl",
                start,
                finish - start,
                args={
                    "block": request.block,
                    "wait_ns": start - request.issue_time_ns,
                    **({"n_sets": request.n_sets}
                       if request.n_sets is not None else {}),
                    **({"anatomy": anatomy_args}
                       if anatomy_args is not None else {}),
                },
                tid=request.bank_index,
            )
            if violated:
                self.tracer.instant(
                    "retention_violation",
                    "memctrl",
                    args={"block": request.block,
                          "late_ns": finish - request.deadline_ns},
                    tid=request.bank_index,
                )

        if request.on_complete is not None:
            request.on_complete(finish)
        for listener in self._completion_listeners:
            listener(request)

        self._kick(channel)

    def _count_write_mode(self, request: MemRequest) -> None:
        if request.n_sets == self.device.modes.fast.n_sets:
            self.stats.fast_writes += 1
        elif request.n_sets == self.device.modes.slow.n_sets:
            self.stats.slow_writes += 1

    def _wake_space_waiters(self, channel: int, queue_name: str) -> None:
        waiters = self._space_waiters.pop((channel, queue_name), None)
        if not waiters:
            return
        for callback in waiters:
            callback()
