"""Physical address decoding.

The controller interleaves 64-byte blocks across channels (so sequential
blocks spread over all channels), fills rows within a bank, and then
interleaves rows across banks. This is the conventional open-page friendly
layout: a 4KB region maps to a handful of (channel, bank, row) tuples,
giving hot regions row-buffer locality without serialising them on one
bank.

Layout of a block index (low bits to high bits)::

    | channel | column-within-row | bank | row |
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.pcm.device import BLOCK_BYTES
from repro.utils.mathx import log2_int


@dataclass(frozen=True)
class DecodedAddress:
    """A physical block address decoded into device coordinates."""

    block: int
    channel: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self) -> "tuple[int, int]":
        """(channel, bank) pair, the unit of service contention."""
        return (self.channel, self.bank)


@dataclass(frozen=True)
class AddressMap:
    """Decodes byte addresses / block indices into (channel, bank, row, col).

    All dimensions must be powers of two so decoding is pure bit slicing,
    as in real controllers.
    """

    n_channels: int
    banks_per_channel: int
    row_bytes: int
    size_bytes: int

    def __post_init__(self) -> None:
        for name in ("n_channels", "banks_per_channel"):
            log2_int(getattr(self, name))  # raises ConfigError if not 2^k
        if self.row_bytes % BLOCK_BYTES:
            raise ConfigError("row size must be a multiple of the block size")
        log2_int(self.row_bytes // BLOCK_BYTES)
        if self.size_bytes % (self.row_bytes * self.n_channels * self.banks_per_channel):
            raise ConfigError(
                "device size must be a whole number of rows per bank per channel"
            )
        # Precompute the bit-slicing constants: decode_block is the hottest
        # function in the simulator (called per scheduler scan).
        object.__setattr__(self, "_ch_bits", log2_int(self.n_channels))
        object.__setattr__(self, "_ch_mask", self.n_channels - 1)
        object.__setattr__(self, "_col_bits", log2_int(self.blocks_per_row))
        object.__setattr__(self, "_col_mask", self.blocks_per_row - 1)
        object.__setattr__(self, "_bank_bits", log2_int(self.banks_per_channel))
        object.__setattr__(self, "_bank_mask", self.banks_per_channel - 1)
        object.__setattr__(self, "_n_blocks", self.size_bytes // BLOCK_BYTES)

    @property
    def blocks_per_row(self) -> int:
        return self.row_bytes // BLOCK_BYTES

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // BLOCK_BYTES

    @property
    def rows_per_bank(self) -> int:
        return self.n_blocks // (self.n_channels * self.banks_per_channel * self.blocks_per_row)

    def decode_block(self, block: int) -> DecodedAddress:
        """Decode a block index (byte address >> 6)."""
        if not 0 <= block < self._n_blocks:
            raise ConfigError(
                f"block {block} out of range for {self._n_blocks}-block device"
            )
        channel = block & self._ch_mask
        remainder = block >> self._ch_bits
        column = remainder & self._col_mask
        remainder >>= self._col_bits
        bank = remainder & self._bank_mask
        row = remainder >> self._bank_bits
        return DecodedAddress(block=block, channel=channel, bank=bank, row=row, column=column)

    def channel_of_block(self, block: int) -> int:
        """Channel of a block index (cheap path for queue admission)."""
        return block & self._ch_mask

    def decode(self, byte_address: int) -> DecodedAddress:
        """Decode a byte address."""
        if byte_address < 0:
            raise ConfigError(f"negative address: {byte_address}")
        return self.decode_block(byte_address // BLOCK_BYTES)

    def encode(self, channel: int, bank: int, row: int, column: int) -> int:
        """Inverse of :meth:`decode_block`; returns the block index."""
        if not 0 <= channel < self.n_channels:
            raise ConfigError(f"channel {channel} out of range")
        if not 0 <= bank < self.banks_per_channel:
            raise ConfigError(f"bank {bank} out of range")
        if not 0 <= column < self.blocks_per_row:
            raise ConfigError(f"column {column} out of range")
        if not 0 <= row < self.rows_per_bank:
            raise ConfigError(f"row {row} out of range")
        block = row
        block = (block << log2_int(self.banks_per_channel)) | bank
        block = (block << log2_int(self.blocks_per_row)) | column
        block = (block << log2_int(self.n_channels)) | channel
        return block
