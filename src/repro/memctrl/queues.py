"""Bounded request queues with the paper's priority ordering.

Each channel owns a :class:`QueueSet`: an RRM refresh queue (64 entries,
highest priority), a read queue (32 entries, middle priority) and a write
queue (64 entries, lowest priority). Queues are FIFO within a class; the
scheduler may still pick a younger request whose bank is free (FR-FCFS
style) via :meth:`BoundedQueue.pop_first_ready`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, List, Optional

from repro.errors import QueueFullError
from repro.memctrl.request import MemRequest, RequestType


@dataclass
class BoundedQueue:
    """FIFO queue with a hardware capacity."""

    capacity: int
    name: str = "queue"
    _entries: Deque[MemRequest] = field(default_factory=deque)
    peak_occupancy: int = 0
    total_enqueued: int = 0
    rejected: int = 0
    #: Optional ``(queue, request, n_bypassed)`` callback fired when the
    #: scheduler removes an entry out of FIFO order; installed by the
    #: controller only when latency attribution is enabled, so the hot
    #: path pays nothing by default.
    issue_observer: Optional[Callable[["BoundedQueue", MemRequest, int], None]] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, request: MemRequest) -> None:
        """Enqueue; raises :class:`QueueFullError` if at capacity.

        Callers that model backpressure must check :attr:`full` first —
        an unchecked overflow is a protocol bug, not a hardware behaviour.
        """
        if self.full:
            self.rejected += 1
            raise QueueFullError(f"{self.name} full at {self.capacity} entries")
        self._entries.append(request)
        self.total_enqueued += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))

    def pop(self) -> MemRequest:
        """Dequeue the oldest request."""
        return self._entries.popleft()

    def peek(self) -> Optional[MemRequest]:
        return self._entries[0] if self._entries else None

    def pop_first_ready(
        self, is_ready: Callable[[MemRequest], bool], window: int = 8
    ) -> Optional[MemRequest]:
        """Remove and return the oldest request satisfying *is_ready*,
        searching at most *window* entries from the head (FR-FCFS with a
        bounded associative search, like real schedulers)."""
        for index, request in enumerate(self._entries):
            if index >= window:
                break
            if is_ready(request):
                del self._entries[index]
                return request
        return None

    def note_issue(self, request: MemRequest, n_bypassed: int) -> None:
        """Report an out-of-queue pick to the issue observer, if any.

        *n_bypassed* is the number of older entries the FR-FCFS scan
        skipped — the reordering depth latency attribution records on
        the request's anatomy.
        """
        if self.issue_observer is not None:
            self.issue_observer(self, request, n_bypassed)

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish queue pressure counters into *registry*."""
        registry.gauge(f"{prefix}.depth", lambda: len(self._entries))
        registry.gauge(f"{prefix}.peak_occupancy", lambda: self.peak_occupancy)
        registry.gauge(f"{prefix}.total_enqueued", lambda: self.total_enqueued)
        registry.gauge(f"{prefix}.rejected", lambda: self.rejected)

    def __iter__(self) -> Iterable[MemRequest]:
        return iter(self._entries)


@dataclass
class QueueSet:
    """The three per-channel queues, in priority order."""

    refresh_capacity: int = 64
    read_capacity: int = 32
    write_capacity: int = 64

    def __post_init__(self) -> None:
        self.refresh_queue = BoundedQueue(self.refresh_capacity, name="rrm-refresh-q")
        self.read_queue = BoundedQueue(self.read_capacity, name="read-q")
        self.write_queue = BoundedQueue(self.write_capacity, name="write-q")

    def queue_for(self, rtype: RequestType) -> BoundedQueue:
        """The queue a request class maps to."""
        if rtype in (RequestType.RRM_REFRESH, RequestType.RRM_SLOW_REFRESH):
            return self.refresh_queue
        if rtype is RequestType.READ:
            return self.read_queue
        return self.write_queue

    def in_priority_order(self) -> List[BoundedQueue]:
        """Queues from highest to lowest scheduling priority."""
        return [self.refresh_queue, self.read_queue, self.write_queue]

    @property
    def total_pending(self) -> int:
        return sum(len(q) for q in self.in_priority_order())
