"""Memory request records exchanged between CPU/RRM and the controller."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

_request_ids = itertools.count()


class RequestType(enum.Enum):
    """Classes of memory traffic, ordered by controller priority."""

    #: RRM selective refresh (fast, 3-SETs) — hard retention deadline.
    RRM_REFRESH = "rrm_refresh"
    #: Demotion rewrite (slow, 7-SETs) issued when a hot entry decays.
    RRM_SLOW_REFRESH = "rrm_slow_refresh"
    #: Demand read (LLC miss fill).
    READ = "read"
    #: Demand write (LLC dirty writeback).
    WRITE = "write"


@dataclass
class MemRequest:
    """One block-granularity memory request.

    Attributes:
        rtype: Traffic class.
        block: Block index (byte address >> 6).
        n_sets: Write mode (SET count) for writes/refreshes; None for reads.
        issue_time_ns: When the requester handed it to the controller.
        deadline_ns: Absolute completion deadline (RRM refreshes carry the
            retention expiry time; the controller records violations).
        core: Originating core id for demand traffic (stats only).
        on_complete: Callback fired when service finishes, with the
            completion time — used by the CPU model to unblock loads.
    """

    rtype: RequestType
    block: int
    n_sets: Optional[int] = None
    issue_time_ns: float = 0.0
    deadline_ns: Optional[float] = None
    core: Optional[int] = None
    on_complete: Optional[Callable[[float], None]] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))

    start_time_ns: Optional[float] = None
    finish_time_ns: Optional[float] = None
    #: Decoded device coordinates, filled once by the controller at
    #: enqueue so scheduler scans never re-decode.
    decoded: object = None
    #: Flat bank index (channel * banks_per_channel + bank), also filled
    #: at enqueue; lets the scheduler's ready-scan use a list lookup.
    bank_index: int = -1
    #: When the producer created the request, if before it could reach
    #: the controller (RRM refreshes held back by a full refresh queue);
    #: issue_time_ns - generated_time_ns is the pre-queue backpressure.
    generated_time_ns: Optional[float] = None
    #: Latency-anatomy record attached by the attribution collector;
    #: None unless attribution is enabled for the run.
    anatomy: object = None

    @property
    def is_write(self) -> bool:
        return self.rtype is not RequestType.READ

    @property
    def latency_ns(self) -> Optional[float]:
        """Queue + service latency, if the request has completed."""
        if self.finish_time_ns is None:
            return None
        return self.finish_time_ns - self.issue_time_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemRequest({self.rtype.value}, block={self.block}, "
            f"n_sets={self.n_sets}, t={self.issue_time_ns})"
        )
