"""The ``Profile`` artifact: folded stacks, dispatch tables, census.

One profiled run produces one :class:`Profile`. Its JSON form is the
interchange format for everything downstream: ``repro-rrm profile
report|diff``, the dashboard's "Where the time goes" section, the
flamegraph renderer, and the fabric coordinator's deterministic merge
of per-worker parts.

Frame labels are ``module:qualname`` with the module path as Python
reports it (``repro.engine.simulator:Simulator.run``). Subsystem
resolution strips the ``repro.`` prefix and keeps the first package
segment, so every frame lands in exactly one bucket: ``engine``,
``memctrl``, ``pcm``, ``cache``, ``core``, ``cpu``, ``sim``, ... —
or ``other`` for stdlib and third-party frames.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.utils.persist import save_json

PROFILE_SCHEMA = 1

#: Subsystem share below which a diff is sampling noise, not a change.
#: Statistical profiles of the same code differ run-to-run by roughly
#: ``1/sqrt(samples)`` per bucket; at the default 5 ms interval a
#: multi-second run collects enough samples that 0.05 (five share
#: points) comfortably covers the noise floor while still catching any
#: real hot-path regression worth a look.
DEFAULT_DIFF_TOLERANCE = 0.05

_FOLD_SEP = ";"


class ProfileError(ReproError):
    """A profile artifact is missing, torn, or from a newer schema."""


def subsystem_of(label: str) -> str:
    """Bucket a ``module:qualname`` frame label into a repro subsystem."""
    module = label.split(":", 1)[0]
    if module == "repro":
        return "sim"
    if module.startswith("repro."):
        return module.split(".", 2)[1]
    return "other"


def _merge_sum(
    into: Dict[str, float], other: Dict[str, float]
) -> Dict[str, float]:
    for key, value in other.items():
        into[key] = into.get(key, 0) + value
    return into


@dataclass
class Profile:
    """Everything one profiled run learned about the host process."""

    interval_s: float = 0.0
    duration_s: float = 0.0
    #: Samples taken by the sampler (>= retained when the ring wrapped).
    samples: int = 0
    #: Samples still in the ring and present in ``folded``.
    retained: int = 0
    #: Folded stacks: ``root;child;leaf`` frame labels -> sample count.
    folded: Dict[str, int] = field(default_factory=dict)
    #: Deterministic engine accounting: owner label -> events dispatched.
    dispatch_counts: Dict[str, int] = field(default_factory=dict)
    #: Host nanoseconds spent inside each owner's callbacks.
    dispatch_time_ns: Dict[str, float] = field(default_factory=dict)
    #: Memory census (see :mod:`repro.profiling.memcensus`), if taken.
    memory: Optional[dict] = None
    #: Free-form provenance: workload, scheme, worker id, host note.
    meta: Dict[str, object] = field(default_factory=dict)

    # -- derived views --------------------------------------------------
    def function_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-frame-label ``{"self": n, "total": n}`` sample counts.

        ``self`` counts samples where the label is the leaf; ``total``
        counts samples where it appears anywhere on the stack (each
        label at most once per sample, so recursion does not inflate).
        """
        stats: Dict[str, Dict[str, int]] = {}
        for stack, count in self.folded.items():
            labels = stack.split(_FOLD_SEP)
            leaf = labels[-1]
            for label in set(labels):
                entry = stats.setdefault(label, {"self": 0, "total": 0})
                entry["total"] += count
            stats[leaf]["self"] += count
        return stats

    def subsystem_self(self) -> Dict[str, int]:
        """Self-sample counts bucketed by subsystem of the leaf frame."""
        out: Dict[str, int] = {}
        for stack, count in self.folded.items():
            leaf = stack.rsplit(_FOLD_SEP, 1)[-1]
            bucket = subsystem_of(leaf)
            out[bucket] = out.get(bucket, 0) + count
        return out

    def subsystem_shares(self) -> Dict[str, float]:
        """``subsystem_self`` normalised to shares of retained samples."""
        total = sum(self.subsystem_self().values())
        if total == 0:
            return {}
        return {
            name: count / total
            for name, count in self.subsystem_self().items()
        }

    def top_functions(self, n: int = 10) -> List[Tuple[str, int, int]]:
        """The *n* hottest frames as ``(label, self, total)``, by self."""
        stats = self.function_stats()
        ranked = sorted(
            stats.items(),
            key=lambda item: (-item[1]["self"], -item[1]["total"], item[0]),
        )
        return [
            (label, entry["self"], entry["total"])
            for label, entry in ranked[:n]
        ]

    # -- ledger integration ---------------------------------------------
    def ledger_metrics(self) -> Dict[str, float]:
        """Flat ``prof_*`` / ``mem_*`` metrics for run-ledger entries.

        ``prof_dispatch_*`` counts are deterministic (a function of the
        simulated run alone); everything else — sample shares, host
        time, byte counts — is host-dependent and must stay excluded
        from byte-identity comparisons (see obs.benchsuite).
        """
        out: Dict[str, float] = {
            "prof_samples": float(self.samples),
            "prof_dispatch_total": float(sum(self.dispatch_counts.values())),
        }
        by_subsystem: Dict[str, float] = {}
        for owner, count in self.dispatch_counts.items():
            bucket = subsystem_of(owner)
            by_subsystem[bucket] = by_subsystem.get(bucket, 0.0) + count
        for bucket in sorted(by_subsystem):
            out[f"prof_dispatch_{bucket}"] = by_subsystem[bucket]
        for bucket, share in sorted(self.subsystem_shares().items()):
            out[f"prof_{bucket}_self_share"] = share
        if self.memory:
            for key, value in self.memory.get("by_subsystem", {}).items():
                out[f"mem_bytes_{key}"] = float(value)
            out["mem_bytes_total"] = float(self.memory.get("total_bytes", 0))
            regions = self.memory.get("touched_regions", 0)
            out["mem_touched_regions"] = float(regions)
            if regions:
                out["mem_bytes_per_touched_region"] = (
                    float(self.memory.get("total_bytes", 0)) / regions
                )
        return out

    # -- persistence -----------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "interval_s": self.interval_s,
            "duration_s": self.duration_s,
            "samples": self.samples,
            "retained": self.retained,
            "folded": dict(sorted(self.folded.items())),
            "dispatch_counts": dict(sorted(self.dispatch_counts.items())),
            "dispatch_time_ns": dict(sorted(self.dispatch_time_ns.items())),
            "memory": self.memory,
            "meta": self.meta,
            "ledger_metrics": self.ledger_metrics(),
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "Profile":
        schema = d.get("schema", 0)
        if schema > PROFILE_SCHEMA:
            raise ProfileError(
                f"profile schema {schema} is newer than supported "
                f"{PROFILE_SCHEMA}; upgrade the tool"
            )
        return cls(
            interval_s=d.get("interval_s", 0.0),
            duration_s=d.get("duration_s", 0.0),
            samples=d.get("samples", 0),
            retained=d.get("retained", 0),
            folded={k: int(v) for k, v in d.get("folded", {}).items()},
            dispatch_counts={
                k: int(v) for k, v in d.get("dispatch_counts", {}).items()
            },
            dispatch_time_ns=dict(d.get("dispatch_time_ns", {})),
            memory=d.get("memory"),
            meta=dict(d.get("meta", {})),
        )

    def save(self, path: Union[str, Path]) -> None:
        save_json(path, self.to_json_dict())

    def folded_text(self) -> str:
        """Classic folded-stack text (``stack count`` per line) — the
        format ``flamegraph.pl`` and speedscope both ingest."""
        return "\n".join(
            f"{stack} {count}"
            for stack, count in sorted(self.folded.items())
        )


def load_profile(path: Union[str, Path]) -> Profile:
    p = Path(path)
    if not p.exists():
        raise ProfileError(f"profile artifact not found: {p}")
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ProfileError(f"unreadable profile artifact {p}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProfileError(f"profile artifact {p} is not a JSON object")
    return Profile.from_json_dict(payload)


def merge_profiles(profiles: Iterable[Profile]) -> Profile:
    """Deterministically merge worker profiles into one artifact.

    Counts sum; duration takes the max (workers ran concurrently);
    memory censuses don't merge (each worker walked its own process),
    so the merged profile carries none. Merge order does not matter —
    every map is key-summed and serialised sorted.
    """
    merged = Profile()
    workers: List[object] = []
    for prof in profiles:
        merged.samples += prof.samples
        merged.retained += prof.retained
        merged.interval_s = merged.interval_s or prof.interval_s
        merged.duration_s = max(merged.duration_s, prof.duration_s)
        _merge_sum(merged.folded, prof.folded)  # type: ignore[arg-type]
        _merge_sum(merged.dispatch_counts, prof.dispatch_counts)  # type: ignore[arg-type]
        _merge_sum(merged.dispatch_time_ns, prof.dispatch_time_ns)
        if prof.meta.get("worker") is not None:
            workers.append(prof.meta["worker"])
    if workers:
        merged.meta["workers"] = sorted(workers, key=str)
    return merged


# ---------------------------------------------------------------------------
@dataclass
class ProfileDiff:
    """Per-subsystem and per-function self-share deltas (b minus a)."""

    subsystem_deltas: Dict[str, float]
    function_deltas: Dict[str, float]
    samples_a: int
    samples_b: int

    @property
    def max_subsystem_delta(self) -> float:
        if not self.subsystem_deltas:
            return 0.0
        return max(abs(d) for d in self.subsystem_deltas.values())

    def within(self, tolerance: float = DEFAULT_DIFF_TOLERANCE) -> bool:
        return self.max_subsystem_delta <= tolerance


def _self_shares(profile: Profile) -> Dict[str, float]:
    stats = profile.function_stats()
    total = sum(entry["self"] for entry in stats.values())
    if total == 0:
        return {}
    return {label: entry["self"] / total for label, entry in stats.items()}


def diff_profiles(a: Profile, b: Profile) -> ProfileDiff:
    """Share deltas between two profiles, for every bucket in either."""
    sub_a, sub_b = a.subsystem_shares(), b.subsystem_shares()
    fn_a, fn_b = _self_shares(a), _self_shares(b)
    return ProfileDiff(
        subsystem_deltas={
            key: sub_b.get(key, 0.0) - sub_a.get(key, 0.0)
            for key in sorted(set(sub_a) | set(sub_b))
        },
        function_deltas={
            key: fn_b.get(key, 0.0) - fn_a.get(key, 0.0)
            for key in sorted(set(fn_a) | set(fn_b))
        },
        samples_a=a.retained,
        samples_b=b.retained,
    )


# ---------------------------------------------------------------------------
def _short(label: str, width: int = 60) -> str:
    label = label.replace("repro.", "", 1) if label.startswith("repro.") else label
    return label if len(label) <= width else "…" + label[-(width - 1):]


def format_profile(profile: Profile, top: int = 15) -> str:
    """Human-readable report: subsystems, hot functions, dispatch, RAM."""
    lines: List[str] = []
    lines.append(
        f"profile: {profile.retained:,} samples retained "
        f"({profile.samples:,} taken) @ {profile.interval_s * 1000:.1f} ms "
        f"over {profile.duration_s:.2f} s host time"
    )
    shares = profile.subsystem_shares()
    if shares:
        lines.append("")
        lines.append("self-time by subsystem:")
        for name, share in sorted(shares.items(), key=lambda kv: -kv[1]):
            bar = "#" * int(round(share * 40))
            lines.append(f"  {name:<12} {share * 100:5.1f}%  {bar}")
    hot = profile.top_functions(top)
    if hot:
        lines.append("")
        lines.append(f"hottest functions (top {len(hot)}, by self samples):")
        lines.append(f"  {'self%':>6} {'total%':>7}  function")
        denom = max(1, profile.retained)
        for label, self_n, total_n in hot:
            lines.append(
                f"  {100 * self_n / denom:5.1f}% {100 * total_n / denom:6.1f}%"
                f"  {_short(label)}"
            )
    if profile.dispatch_counts:
        total_dispatch = sum(profile.dispatch_counts.values())
        lines.append("")
        lines.append(
            f"event dispatch (deterministic, {total_dispatch:,} callbacks):"
        )
        ranked = sorted(
            profile.dispatch_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for owner, count in ranked[:top]:
            host_ms = profile.dispatch_time_ns.get(owner, 0.0) / 1e6
            lines.append(
                f"  {count:>10,}  {host_ms:9.1f} ms  {_short(owner)}"
            )
    if profile.memory:
        mem = profile.memory
        lines.append("")
        lines.append(
            f"memory census: {mem.get('total_bytes', 0):,} bytes live"
        )
        by_sub = mem.get("by_subsystem", {})
        for name, nbytes in sorted(by_sub.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<12} {nbytes:>12,} bytes")
        regions = mem.get("touched_regions", 0)
        if regions:
            lines.append(
                f"  {regions:,} touched regions -> "
                f"{mem.get('total_bytes', 0) / regions:,.0f} bytes/region"
            )
    if not profile.folded and not profile.dispatch_counts:
        lines.append("  (empty profile: no samples, no dispatch accounting)")
    return "\n".join(lines)


def format_diff(
    diff: ProfileDiff,
    tolerance: float = DEFAULT_DIFF_TOLERANCE,
    top: int = 10,
) -> str:
    """Render a diff; buckets beyond *tolerance* are flagged with ``!``."""
    lines = [
        f"profile diff (a: {diff.samples_a:,} samples, "
        f"b: {diff.samples_b:,} samples, tolerance {tolerance:.2f}):"
    ]
    if not diff.subsystem_deltas:
        lines.append("  no subsystem samples on either side")
    for name, delta in sorted(
        diff.subsystem_deltas.items(), key=lambda kv: -abs(kv[1])
    ):
        flag = "!" if abs(delta) > tolerance else " "
        lines.append(f"  {flag} {name:<12} {delta * 100:+6.1f}% self share")
    movers = [
        (label, delta)
        for label, delta in diff.function_deltas.items()
        if abs(delta) > tolerance / 2
    ]
    if movers:
        lines.append("  biggest function movers:")
        for label, delta in sorted(movers, key=lambda kv: -abs(kv[1]))[:top]:
            lines.append(f"    {delta * 100:+6.1f}%  {_short(label)}")
    verdict = (
        "within tolerance"
        if diff.within(tolerance)
        else f"EXCEEDS tolerance (max {diff.max_subsystem_delta * 100:.1f}%)"
    )
    lines.append(f"  -> {verdict}")
    return "\n".join(lines)
