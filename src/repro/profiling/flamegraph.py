"""Dependency-free SVG flamegraph from folded stacks.

Same artifact philosophy as :mod:`repro.obs.dashboard`: one
self-contained file (inline ``<style>``, no scripts, no external
requests) that can be archived as a CI artifact and opened anywhere.
Visual conventions match the dashboard's chart rules — a fixed,
never-themed subsystem palette whose colors never carry meaning alone
(the legend pairs every color with its subsystem word), recessive
chrome, and ``<title>`` tooltips so exact counts are reachable without
scripting.

Layout is the classic icicle: root row on top, leaves at the bottom,
frame width proportional to the samples that passed through it.
Children render in sorted-label order, so the same profile always
produces byte-identical SVG.
"""

from __future__ import annotations

import html
from typing import Dict, List

from repro.profiling.profile import Profile, subsystem_of

#: Fixed subsystem palette (never themed). Unlisted subsystems share the
#: muted grey; the legend still names them, so color+word stays paired.
SUBSYSTEM_COLORS: Dict[str, str] = {
    "engine": "#2a78d6",
    "memctrl": "#0ca30c",
    "pcm": "#d03b3b",
    "cache": "#12a594",
    "core": "#7d66d3",
    "cpu": "#ec835a",
    "sim": "#fab219",
    "workloads": "#b0851f",
    "attribution": "#5b9f9b",
    "telemetry": "#6a8f3c",
    "profiling": "#a65fa0",
    "fabric": "#4c6ef5",
    "obs": "#3e8f68",
    "other": "#898781",
}
_FALLBACK_COLOR = "#898781"

_ROW_H = 18
_PAD = 4
_LEGEND_H = 22
_HEADER_H = 34
_MIN_W = 0.4  # px below which a frame is unresolvable and skipped

_SVG_CSS = """
text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
.frame text { fill: #0b0b0b; pointer-events: none; }
.hdr { fill: #52514e; font-size: 12px; }
.bg { fill: #f9f9f7; }
rect.f { stroke: #f9f9f7; stroke-width: 0.6; }
"""


def _build_tree(folded: Dict[str, int]) -> dict:
    root: dict = {"name": "all", "value": 0, "children": {}}
    for stack, count in sorted(folded.items()):
        root["value"] += count
        node = root
        for label in stack.split(";"):
            child = node["children"].setdefault(
                label, {"name": label, "value": 0, "children": {}}
            )
            child["value"] += count
            node = child
    return root


def _depth(node: dict) -> int:
    if not node["children"]:
        return 1
    return 1 + max(_depth(child) for child in node["children"].values())


def _short_label(name: str) -> str:
    if name.startswith("repro."):
        name = name[len("repro."):]
    return name


def _render_node(
    node: dict,
    x: float,
    depth: int,
    px_per_sample: float,
    total: int,
    out: List[str],
) -> None:
    width = node["value"] * px_per_sample
    if width < _MIN_W:
        return
    y = _HEADER_H + depth * _ROW_H
    color = (
        SUBSYSTEM_COLORS.get(subsystem_of(node["name"]), _FALLBACK_COLOR)
        if depth > 0
        else "#c3c2b7"
    )
    label = _short_label(node["name"])
    share = node["value"] / total if total else 0.0
    tooltip = f"{label} — {node['value']:,} samples ({share:.1%})"
    out.append(
        f'<g class="frame"><rect class="f" x="{x:.2f}" y="{y}" '
        f'width="{max(width, _MIN_W):.2f}" height="{_ROW_H - 1}" '
        f'fill="{color}" fill-opacity="0.85">'
        f"<title>{html.escape(tooltip)}</title></rect>"
    )
    if width > 40:
        max_chars = max(1, int(width / 6.2))
        text = label if len(label) <= max_chars else label[: max_chars - 1] + "…"
        out.append(
            f'<text x="{x + 3:.2f}" y="{y + _ROW_H - 6}">'
            f"{html.escape(text)}</text>"
        )
    out.append("</g>")
    child_x = x
    for name in sorted(node["children"]):
        child = node["children"][name]
        _render_node(child, child_x, depth + 1, px_per_sample, total, out)
        child_x += child["value"] * px_per_sample


def render_flamegraph(
    profile: Profile,
    *,
    width: int = 960,
    title: str = "repro-rrm flamegraph",
) -> str:
    """Render *profile*'s folded stacks as a standalone SVG document."""
    tree = _build_tree(profile.folded)
    total = tree["value"]
    depth = _depth(tree) if total else 1
    used = sorted(
        {subsystem_of(stack.rsplit(";", 1)[-1]) for stack in profile.folded}
        | {
            subsystem_of(label)
            for stack in profile.folded
            for label in stack.split(";")
        }
    )
    height = _HEADER_H + depth * _ROW_H + _PAD + _LEGEND_H
    out: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{html.escape(title)}">',
        f"<style>{_SVG_CSS}</style>",
        f'<rect class="bg" x="0" y="0" width="{width}" height="{height}"/>',
        f'<text class="hdr" x="{_PAD}" y="16">{html.escape(title)} — '
        f"{profile.retained:,} samples @ "
        f"{profile.interval_s * 1000:.1f} ms</text>",
    ]
    if total:
        px_per_sample = (width - 2 * _PAD) / total
        _render_node(tree, float(_PAD), 0, px_per_sample, total, out)
    else:
        out.append(
            f'<text class="hdr" x="{_PAD}" y="{_HEADER_H + 14}">'
            "no samples recorded</text>"
        )
    legend_y = height - 8
    x = float(_PAD)
    for name in used:
        color = SUBSYSTEM_COLORS.get(name, _FALLBACK_COLOR)
        out.append(
            f'<circle cx="{x + 4:.1f}" cy="{legend_y - 4}" r="4" '
            f'fill="{color}"/>'
            f'<text class="hdr" x="{x + 11:.1f}" y="{legend_y}">'
            f"{html.escape(name)}</text>"
        )
        x += 18 + 6.5 * len(name)
    out.append("</svg>")
    return "\n".join(out) + "\n"
