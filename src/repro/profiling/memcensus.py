"""Memory census: bytes per subsystem over live ``System`` state.

ROADMAP item 5 (sparse region state) needs a number before it needs a
refactor: *how many bytes does the dense per-region/per-block state
cost per region the workload actually touches?* This module answers
with two independent instruments:

- :func:`deep_sizeof` — a recursive ``sys.getsizeof`` walk over a live
  object graph. The census walks named subsystem roots with one shared
  visited-set, so shared objects are charged to exactly one owner
  (first-owner-wins) and the per-subsystem bytes sum to the total.
  Roots are walked in the mapping's insertion order: put the most
  specific owners first, or cross-subsystem back-references (an RRM
  holding its controller) would swallow their neighbours' state.
- ``tracemalloc`` grouping — when the caller started tracing before the
  ``System`` was built, allocation stats are grouped by the repro
  subsystem of the allocating file, catching allocation churn the live
  walk cannot see.

The census never mutates the walked graph and runs after the simulation
finishes, so profiled runs stay bit-identical to unprofiled ones.
"""

from __future__ import annotations

import sys
import tracemalloc
import types
from typing import Dict, Optional, Set

#: Types the walker never descends into: shared interpreter machinery
#: whose "ownership" would be meaningless and whose graphs reach the
#: whole process (modules pull in everything they import).
_OPAQUE_TYPES = (
    type,
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.CodeType,
    types.FrameType,
    types.GeneratorType,
)


def deep_sizeof(obj: object, seen: Optional[Set[int]] = None) -> int:
    """Recursively sum ``sys.getsizeof`` over *obj*'s reachable graph.

    *seen* carries visited object ids across calls; pass one shared set
    to charge shared substructure to the first root that reaches it.
    """
    if seen is None:
        seen = set()
    total = 0
    stack = [obj]
    while stack:
        node = stack.pop()
        if isinstance(node, _OPAQUE_TYPES):
            continue
        node_id = id(node)
        if node_id in seen:
            continue
        seen.add(node_id)
        try:
            total += sys.getsizeof(node)
        except TypeError:
            continue
        if isinstance(node, dict):
            stack.extend(node.keys())
            stack.extend(node.values())
        elif isinstance(node, (list, tuple, set, frozenset)):
            stack.extend(node)
        else:
            node_dict = getattr(node, "__dict__", None)
            if node_dict is not None:
                stack.append(node_dict)
            for slot in getattr(type(node), "__slots__", ()) or ():
                if isinstance(slot, str) and hasattr(node, slot):
                    stack.append(getattr(node, slot))
    return total


def _subsystem_of_path(path: str) -> str:
    marker = "repro/"
    idx = path.replace("\\", "/").rfind(marker)
    if idx < 0:
        return "other"
    rest = path.replace("\\", "/")[idx + len(marker):]
    head = rest.split("/", 1)[0]
    return head[:-3] if head.endswith(".py") else head


def _tracemalloc_by_subsystem(top: int) -> dict:
    """Group current tracemalloc stats by allocating repro subsystem."""
    snapshot = tracemalloc.take_snapshot()
    stats = snapshot.statistics("filename")
    by_subsystem: Dict[str, int] = {}
    top_files = []
    for stat in stats:
        frame = stat.traceback[0]
        bucket = _subsystem_of_path(frame.filename)
        by_subsystem[bucket] = by_subsystem.get(bucket, 0) + stat.size
        if len(top_files) < top:
            top_files.append(
                {
                    "file": frame.filename,
                    "bytes": stat.size,
                    "allocations": stat.count,
                }
            )
    return {
        "by_subsystem": dict(sorted(by_subsystem.items())),
        "top_files": top_files,
        "traced_total_bytes": sum(s.size for s in stats),
    }


def take_census(
    roots: Dict[str, object],
    *,
    touched_regions: int = 0,
    tracemalloc_top: int = 10,
) -> dict:
    """Measure bytes per subsystem over the named *roots*.

    Roots are walked in insertion order with a shared visited-set, so
    the report is deterministic for a fixed object graph and shared
    state is charged to the first root that reaches it. When
    ``tracemalloc`` is already tracing, an allocation-site section is
    included as well.
    """
    seen: Set[int] = set()
    by_subsystem: Dict[str, int] = {}
    for name, obj in roots.items():
        if obj is None:
            continue
        by_subsystem[name] = deep_sizeof(obj, seen)
    by_subsystem = dict(sorted(by_subsystem.items()))
    total = sum(by_subsystem.values())
    census = {
        "by_subsystem": by_subsystem,
        "total_bytes": total,
        "touched_regions": touched_regions,
        "bytes_per_touched_region": (
            total / touched_regions if touched_regions else 0.0
        ),
        "tracemalloc": (
            _tracemalloc_by_subsystem(tracemalloc_top)
            if tracemalloc.is_tracing()
            else None
        ),
    }
    return census
