"""Statistical sampling profiler over ``sys._current_frames``.

A daemon thread wakes every ``interval_s`` (host seconds), snapshots the
interpreter's frame stacks, and appends folded call stacks to a bounded
ring. The instrument is observational by construction: it never touches
simulation state, and because the engine is single-threaded the sampled
thread's behaviour is bit-identical with or without it (asserted by
tests/test_profiling.py and the ``profiling-smoke`` CI job).

Concurrency discipline (RL009): the sampler loop is lock-free — ring
appends go through ``collections.deque`` (atomic under the GIL) and the
stop signal is an ``Event`` the loop *waits* on, so the daemon thread
can die at interpreter shutdown without wedging anything. ``stop()``
always joins the thread; the context-manager form guarantees the join
even when the profiled block raises.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.profiling.profile import Profile

#: Frames deeper than this are truncated; runaway recursion would
#: otherwise make a single sample arbitrarily expensive to record.
MAX_STACK_DEPTH = 128

_JOIN_TIMEOUT_S = 5.0


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    # co_qualname is 3.11+; co_name keeps 3.9/3.10 working.
    qual = getattr(code, "co_qualname", code.co_name)
    return f"{module}:{qual}"


class SamplingProfiler:
    """Sample the process's Python stacks into a bounded ring.

    Args:
        interval_s: Host-time gap between samples.
        max_samples: Ring bound; older samples are evicted first.
        all_threads: Sample every thread (minus the sampler itself);
            default samples only the thread that called ``start()`` —
            the right scope for profiling a ``System.run``.
        clock: Injected monotonic clock used for the profile's duration
            stamp, so tests can drive it without sleeping.
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        max_samples: int = 100_000,
        *,
        all_threads: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ConfigError(f"interval_s must be positive, got {interval_s}")
        if max_samples <= 0:
            raise ConfigError(f"max_samples must be positive, got {max_samples}")
        self.interval_s = interval_s
        self.all_threads = all_threads
        self._clock = clock
        self._ring: deque = deque(maxlen=max_samples)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target_tid: Optional[int] = None
        self._started_at = 0.0
        self._stopped_at = 0.0
        self.samples_taken = 0
        self.sample_errors = 0

    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: str = "profiling") -> None:
        """Publish sampler counters into a telemetry registry."""
        registry.gauge(f"{prefix}.samples_taken", lambda: self.samples_taken)
        registry.gauge(f"{prefix}.samples_retained", lambda: len(self._ring))
        registry.gauge(f"{prefix}.sample_errors", lambda: self.sample_errors)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def retained(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise ConfigError("SamplingProfiler.start() may only be called once")
        self._target_tid = threading.get_ident()
        self._started_at = self._clock()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop,
            name="repro-sampler",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Signal the sampler and join it. Idempotent; always joins."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=_JOIN_TIMEOUT_S)
        self._stopped_at = self._clock()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _sample_loop(self) -> None:
        # Lock-free by design: wait() on the stop Event paces the loop,
        # deque.append publishes samples, plain int increments count
        # them. Nothing here can hold a lock at interpreter shutdown.
        own_tid = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once(own_tid=own_tid)
            except Exception:
                # A torn frame walk (thread exiting mid-snapshot) must
                # not kill the sampler; the counter is the evidence.
                self.sample_errors += 1

    def sample_once(self, own_tid: Optional[int] = None) -> int:
        """Take one sample now; returns the number of stacks recorded.

        Public so tests can exercise capture deterministically without
        running the daemon thread.
        """
        if own_tid is None:
            own_tid = threading.get_ident()
        frames = sys._current_frames()
        recorded = 0
        for tid, frame in frames.items():
            if tid == own_tid:
                continue
            if not self.all_threads and tid != self._target_tid:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if stack:
                self._ring.append(tuple(reversed(stack)))
                recorded += 1
        self.samples_taken += recorded
        return recorded

    # ------------------------------------------------------------------
    def build_profile(self) -> Profile:
        """Fold the ring into a :class:`Profile`. Call after ``stop()``."""
        folded: Dict[str, int] = {}
        for stack in list(self._ring):
            key = ";".join(stack)
            folded[key] = folded.get(key, 0) + 1
        ended = self._stopped_at if self._stopped_at else self._clock()
        duration = max(0.0, ended - self._started_at) if self._started_at else 0.0
        return Profile(
            interval_s=self.interval_s,
            duration_s=duration,
            samples=self.samples_taken,
            retained=len(self._ring),
            folded=folded,
        )


def profile_self(
    duration_s: float,
    interval_s: float = 0.005,
    *,
    max_samples: int = 100_000,
    sleep: Callable[[float], None] = time.sleep,
) -> Profile:
    """Sample every thread of *this* process for *duration_s* seconds.

    The serve loop's ``OP_PROFILE`` handler uses this to let operators
    profile a live fabric server without attaching a debugger. Thread
    creation stays inside this module (the sampler's loop is lock-free)
    rather than in the server, which also forks workers.
    """
    duration_s = max(0.0, min(duration_s, 60.0))
    profiler = SamplingProfiler(
        interval_s=interval_s, max_samples=max_samples, all_threads=True
    )
    with profiler:
        sleep(duration_s)
    return profiler.build_profile()


def sampled_stacks(profiler: SamplingProfiler) -> Tuple[Tuple[str, ...], ...]:
    """The raw ring contents, oldest first (test/debug helper)."""
    return tuple(profiler._ring)
