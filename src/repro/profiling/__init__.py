"""Host-side profiling: where the wall-time and the bytes actually go.

The rest of the telemetry stack measures the *simulated* machine; this
package measures the *simulator* — the Python process itself — so the
10× hot-path campaign (ROADMAP item 1) and the sparse-state refactor
(item 5) can be planned and verified against committed artifacts
instead of folklore. Three instruments, all stdlib-only:

- :class:`~repro.profiling.sampler.SamplingProfiler` — a statistical
  sampling profiler (daemon thread over ``sys._current_frames``) whose
  samples fold into per-function / per-subsystem self-time shares;
- deterministic event-cost accounting on the engine
  (:meth:`repro.engine.Simulator.enable_cost_accounting`) — per-owner
  dispatch counts that are bit-stable across hosts, plus host-time
  attribution behind an injected clock;
- :func:`~repro.profiling.memcensus.take_census` — a recursive
  deep-sizeof walk over live ``System`` state (optionally backed by
  ``tracemalloc``) reporting bytes per subsystem against the number of
  regions the workload actually touches.

Everything funnels into one :class:`~repro.profiling.profile.Profile`
artifact: a JSON document with folded stacks, dispatch tables and the
memory census, renderable as text (``repro-rrm profile report``), as a
dependency-free SVG flamegraph, diffable against another run, and
mergeable across fabric workers.
"""

from repro.profiling.flamegraph import render_flamegraph
from repro.profiling.memcensus import deep_sizeof, take_census
from repro.profiling.profile import (
    DEFAULT_DIFF_TOLERANCE,
    Profile,
    ProfileDiff,
    diff_profiles,
    format_diff,
    format_profile,
    load_profile,
    merge_profiles,
    subsystem_of,
)
from repro.profiling.sampler import SamplingProfiler, profile_self

__all__ = [
    "DEFAULT_DIFF_TOLERANCE",
    "Profile",
    "ProfileDiff",
    "SamplingProfiler",
    "deep_sizeof",
    "diff_profiles",
    "format_diff",
    "format_profile",
    "load_profile",
    "merge_profiles",
    "profile_self",
    "render_flamegraph",
    "subsystem_of",
    "take_census",
]
