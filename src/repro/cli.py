"""Command-line interface.

Examples::

    # One run
    repro-rrm run --workload GemsFDTD --scheme rrm

    # A scheme comparison on one workload
    repro-rrm compare --workload GemsFDTD

    # Regenerate the write-mode table (paper Table I)
    repro-rrm table1

    # Region write-interval histogram (paper Table III)
    repro-rrm table3 --workload GemsFDTD

    # RRM storage-overhead table (paper Table VIII)
    repro-rrm table8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.regions import RegionIntervalAnalyzer
from repro.analysis.report import (
    failure_report,
    format_table,
    lifetime_report,
    performance_report,
)
from repro.core.config import RRMConfig
from repro.resilience import FaultPlan, RetryPolicy
from repro.pcm.write_modes import WriteModeTable
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner, run_workload
from repro.sim.schemes import Scheme, all_schemes, scheme_from_name
from repro.sim.system import System
from repro.utils.units import format_bytes, parse_size
from repro.workloads.mixes import all_workload_names


def _config_from_args(args) -> SystemConfig:
    if args.config == "paper":
        config = SystemConfig.paper(seed=args.seed)
    elif args.config == "tiny":
        config = SystemConfig.tiny(seed=args.seed)
    else:
        config = SystemConfig.scaled(seed=args.seed)
    if args.duration is not None:
        config = config.with_duration(args.duration)
    return config


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        choices=["scaled", "paper", "tiny"],
        default="scaled",
        help="stock system configuration (default: scaled)",
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument(
        "--duration", type=float, default=None, help="override duration (seconds)"
    )


def cmd_run(args) -> int:
    config = _config_from_args(args)
    scheme = scheme_from_name(args.scheme)
    result = run_workload(config, args.workload, scheme)
    print(result.summary())
    if args.verbose:
        for key, value in sorted(result.as_dict().items()):
            print(f"  {key:28s} {value}")
    return 0


def cmd_compare(args) -> int:
    config = _config_from_args(args)
    schemes = (
        [scheme_from_name(s) for s in args.schemes] if args.schemes else all_schemes()
    )
    runner = ExperimentRunner(config, workloads=[args.workload], schemes=schemes)
    runner.run_all(
        progress=lambda w, s, r: print(f"  done: {w} / {s.value}", file=sys.stderr)
    )
    print(performance_report(runner, schemes))
    print()
    print(lifetime_report(runner, schemes))
    return 0


def cmd_sweep(args) -> int:
    config = _config_from_args(args)
    workloads = args.workloads or all_workload_names()
    schemes = (
        [scheme_from_name(s) for s in args.schemes] if args.schemes else all_schemes()
    )
    fault_plan = FaultPlan.parse(args.inject_faults) if args.inject_faults else None
    if fault_plan:
        print(
            f"  fault injection armed: {', '.join(args.inject_faults)}",
            file=sys.stderr,
        )
    runner = ExperimentRunner(
        config,
        workloads=workloads,
        schemes=schemes,
        n_workers=args.workers,
        timeout_s=args.timeout,
        retry=RetryPolicy(max_retries=args.retries),
        journal_path=args.journal,
        fault_plan=fault_plan,
    )
    progress = lambda w, s, r: print(f"  done: {w} / {s.value}", file=sys.stderr)  # noqa: E731
    if args.resume:
        if not args.journal:
            print("--resume requires --journal", file=sys.stderr)
            return 2
        runner.resume(progress=progress)
    else:
        runner.run_all(progress=progress)
    print(performance_report(runner, schemes))
    print()
    print(lifetime_report(runner, schemes))
    if runner.failures:
        print()
        print(failure_report(runner))
    if args.output:
        runner.save_json(args.output)
        print(f"\nresults written to {args.output}")
    # Degraded completion (some cells failed) still exits 0 — the sweep
    # finished and reported; only a sweep with zero results is an error.
    return 0 if runner.results else 1


def cmd_sensitivity(args) -> int:
    from repro.sim.sweeps import (
        coverage_sweep,
        entry_size_sweep,
        hot_threshold_sweep,
        sweep_table,
    )

    config = _config_from_args(args)
    workloads = args.workloads or ["GemsFDTD"]
    progress = lambda label, w: print(f"  done: {label} / {w}", file=sys.stderr)  # noqa: E731

    if args.parameter == "threshold":
        points = hot_threshold_sweep(config, workloads, progress=progress)
        title = "hot_threshold sweep (paper Fig. 11)"
    elif args.parameter == "coverage":
        points = coverage_sweep(config, workloads, progress=progress)
        title = "LLC coverage sweep (paper Fig. 12)"
    else:
        points = entry_size_sweep(config, workloads, progress=progress)
        title = "entry coverage size sweep (paper Fig. 13)"

    print(
        format_table(
            ["variant", "speedup vs S7", "lifetime (y)", "fast writes"],
            sweep_table(points),
            title=f"{title}, geomean over {', '.join(workloads)}",
        )
    )
    return 0


def cmd_table1(args) -> int:
    table = WriteModeTable()
    rows = [
        [m.name, f"{m.set_current_ua:.0f}", m.normalized_energy,
         f"{m.retention_s:.1f}" if m.retention_s > 100 else f"{m.retention_s:.2f}",
         f"{m.latency_ns:.0f}"]
        for m in reversed(list(table))
    ]
    print(
        format_table(
            ["Write Type", "Current (uA)", "N. Energy", "Retention (s)", "Latency (ns)"],
            rows,
            title="Table I: write latency and retention per SET count",
        )
    )
    return 0


def cmd_table3(args) -> int:
    config = _config_from_args(args)
    analyzer = RegionIntervalAnalyzer(
        drift_scale=config.drift_scale,
        total_regions=config.memory.size_bytes // 4096,
    )
    system = System(
        config,
        args.workload,
        Scheme.STATIC_7,
        write_trace_sink=lambda t, b: analyzer.record(t, b),
    )
    system.run()
    rows = [
        [row.label, row.regions, f"{row.region_pct:.1f}%", row.writes,
         f"{row.write_pct:.2f}%"]
        for row in analyzer.histogram()
    ]
    print(
        format_table(
            ["Average Write Interval", "# Regions", "% Regions", "# Writes", "% Writes"],
            rows,
            title=f"Table III: region write behaviour, {args.workload}",
        )
    )
    return 0


def cmd_table8(args) -> int:
    llc = parse_size(args.llc)
    base = RRMConfig()
    rows = []
    for rate in (2, 4, 8, 16):
        cfg = base.with_coverage_rate(llc, rate)
        label = f"{rate}x" + (" (default)" if rate == 4 else "")
        rows.append(
            [label, f"{cfg.n_sets} sets, {cfg.n_ways} ways",
             format_bytes(cfg.storage_bytes),
             f"{100 * cfg.storage_bytes / llc:.2f}% of LLC"]
        )
    print(
        format_table(
            ["LLC Coverage", "Configuration", "Overhead", "Relative"],
            rows,
            title="Table VIII: RRM configuration per LLC coverage",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rrm",
        description="Region Retention Monitor for MLC PCM (HPCA 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload under one scheme")
    _add_common(p_run)
    p_run.add_argument("--workload", default="GemsFDTD")
    p_run.add_argument("--scheme", default="rrm")
    p_run.add_argument("--verbose", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare schemes on one workload")
    _add_common(p_cmp)
    p_cmp.add_argument("--workload", default="GemsFDTD")
    p_cmp.add_argument("--schemes", nargs="*", default=None)
    p_cmp.set_defaults(func=cmd_compare)

    p_sweep = sub.add_parser("sweep", help="full workloads x schemes sweep")
    _add_common(p_sweep)
    p_sweep.add_argument("--workloads", nargs="*", default=None)
    p_sweep.add_argument("--schemes", nargs="*", default=None)
    p_sweep.add_argument("--workers", type=int, default=1)
    p_sweep.add_argument("--output", default=None, help="JSON output path")
    p_sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock timeout in seconds (default: none)",
    )
    p_sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per failed job before it is recorded as failed",
    )
    p_sweep.add_argument(
        "--journal",
        default=None,
        help="JSONL checkpoint journal; completed jobs are appended "
        "atomically so an interrupted sweep can be resumed",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume from --journal, re-running only missing/failed jobs",
    )
    p_sweep.add_argument(
        "--inject-faults",
        nargs="*",
        default=None,
        metavar="KIND:TARGET[:MAX_FIRES]",
        help="fault-injection drill: crash/hang/error/corrupt a job by "
        "index or workload/scheme (e.g. crash:1, hang:GemsFDTD/rrm, "
        "crash:0:1 for first-attempt-only)",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_sens = sub.add_parser(
        "sensitivity", help="RRM sensitivity sweeps (paper Figs. 11-13)"
    )
    _add_common(p_sens)
    p_sens.add_argument(
        "--parameter",
        choices=["threshold", "coverage", "entry-size"],
        default="threshold",
    )
    p_sens.add_argument("--workloads", nargs="*", default=None)
    p_sens.set_defaults(func=cmd_sensitivity)

    p_t1 = sub.add_parser("table1", help="regenerate paper Table I")
    p_t1.set_defaults(func=cmd_table1)

    p_t3 = sub.add_parser("table3", help="region write-interval histogram")
    _add_common(p_t3)
    p_t3.add_argument("--workload", default="GemsFDTD")
    p_t3.set_defaults(func=cmd_table3)

    p_t8 = sub.add_parser("table8", help="RRM storage-overhead table")
    p_t8.add_argument("--llc", default="6MB")
    p_t8.set_defaults(func=cmd_table8)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
