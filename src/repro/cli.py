"""Command-line interface.

Examples::

    # One run
    repro-rrm run --workload GemsFDTD --scheme rrm

    # A scheme comparison on one workload
    repro-rrm compare --workload GemsFDTD

    # Regenerate the write-mode table (paper Table I)
    repro-rrm table1

    # Region write-interval histogram (paper Table III)
    repro-rrm table3 --workload GemsFDTD

    # RRM storage-overhead table (paper Table VIII)
    repro-rrm table8

    # Trace a run (Chrome-trace JSON, loadable in Perfetto / chrome://tracing)
    repro-rrm run --workload GemsFDTD --trace out.json --metrics-interval 1ms

    # Inspect a recorded trace, or diff two
    repro-rrm trace out.json
    repro-rrm trace diff before.json after.json

    # Latency anatomy: where did each request's time go?
    repro-rrm explain --workload GemsFDTD --scheme rrm --top 5
    repro-rrm explain --config tiny --json anatomy.json

    # Performance observability: pinned suite, regression gate, dashboard
    repro-rrm obs bench --ledger obs-ledger.jsonl
    repro-rrm obs gate --ledger obs-ledger.jsonl --baseline benchmarks/obs_baseline.json
    repro-rrm obs dashboard --ledger obs-ledger.jsonl --out obs-dashboard.html

    # Parallel sweeps on the sharded fabric (bit-identical to --jobs 1)
    repro-rrm sweep --config tiny --jobs 4 --journal sweep.jsonl

    # Batch service: serve sweeps over a local socket
    repro-rrm serve --address .repro-rrm.sock --journal-dir fabric-journals
    repro-rrm submit --address .repro-rrm.sock --config tiny --jobs 4
    repro-rrm status --address .repro-rrm.sock

    # Live fleet observability: scrape metrics, watch workers
    repro-rrm serve --address .repro-rrm.sock --http 127.0.0.1:9100
    repro-rrm top --address .repro-rrm.sock
    repro-rrm sweep --config tiny --jobs 4 --journal sweep.jsonl \\
        --metrics-out metrics.prom --flight-dir sweep.flight

    # Hot-path microscope: where does the host time go?
    repro-rrm profile run --config tiny --out prof.json --flamegraph prof.svg
    repro-rrm profile report prof.json
    repro-rrm profile diff before.json after.json --check
    repro-rrm profile fetch --address .repro-rrm.sock --duration 2
    repro-rrm sweep --config tiny --jobs 4 --profile sweep-prof.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.analysis.regions import RegionIntervalAnalyzer
from repro.attribution import format_report
from repro.analysis.report import (
    failure_report,
    format_table,
    lifetime_report,
    performance_report,
)
from repro.core.config import RRMConfig
from repro.errors import (
    ConfigError,
    LedgerCorruptError,
    ReproError,
    TraceFormatError,
)
from repro.lint import render_json, render_text, run_lint
from repro.obs import (
    DEFAULT_RULES,
    KIND_RUN,
    KIND_SWEEP,
    LedgerEntry,
    RunLedger,
    RunProgress,
    SweepProgress,
    compare_samples,
    diff_traces,
    environment_fingerprint,
    format_trace_diff,
    load_baseline,
    load_rules,
    render_dashboard,
    run_core_suite,
    samples_from_entries,
    write_baseline,
)
from repro.profiling import DEFAULT_DIFF_TOLERANCE
from repro.resilience import FaultPlan, RetryPolicy
from repro.pcm.write_modes import WriteModeTable
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme, all_schemes, scheme_from_name
from repro.sim.system import System
from repro.telemetry import (
    TRACE_MODES,
    TelemetryConfig,
    Tracer,
    format_summary,
    load_trace,
    summarize_trace,
    validate_chrome_trace,
)
from repro.utils.units import format_bytes, parse_duration, parse_size
from repro.workloads.mixes import all_workload_names


def _config_from_args(args) -> SystemConfig:
    if args.config == "paper":
        config = SystemConfig.paper(seed=args.seed)
    elif args.config == "tiny":
        config = SystemConfig.tiny(seed=args.seed)
    else:
        config = SystemConfig.scaled(seed=args.seed)
    if args.duration is not None:
        config = config.with_duration(args.duration)
    return config


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        choices=["scaled", "paper", "tiny"],
        default="scaled",
        help="stock system configuration (default: scaled)",
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument(
        "--duration", type=float, default=None, help="override duration (seconds)"
    )


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "telemetry",
        "event tracing and periodic metric sampling; off by default "
        "(zero overhead) and deterministic when on — a traced run "
        "produces the same results as an untraced one",
    )
    group.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a trace; .json gets Chrome-trace format (Perfetto / "
        "chrome://tracing), .jsonl gets one event per line",
    )
    group.add_argument(
        "--metrics-interval",
        default=None,
        metavar="DURATION",
        help="period of metric-snapshot counter events, e.g. 1ms, 250us "
        "(simulated time; default 1ms when tracing)",
    )
    group.add_argument(
        "--trace-mode",
        choices=list(TRACE_MODES),
        default="full",
        help="memory bound: keep all events, a ring of the most recent, "
        "or every Nth (default: full)",
    )
    group.add_argument(
        "--trace-ring-size",
        type=int,
        default=100_000,
        metavar="N",
        help="event capacity in ring mode (default: 100000)",
    )
    group.add_argument(
        "--trace-sample-every",
        type=int,
        default=1,
        metavar="N",
        help="keep every Nth event in sample mode (default: 1)",
    )
    group.add_argument(
        "--attribution",
        action="store_true",
        help="build per-request latency anatomies; annotates trace "
        "spans and contributes attr_* ledger metrics (see "
        "'repro-rrm explain' for the report form)",
    )


def _telemetry_from_args(args) -> Optional[TelemetryConfig]:
    """A TelemetryConfig when any telemetry flag was given, else None.

    ``--trace`` alone implies periodic metric sampling at 1ms so the
    exported trace carries counter tracks, not just spans.
    ``--attribution`` alone keeps the tracer off — anatomies are built
    without paying for event recording.
    """
    tracing = bool(getattr(args, "trace", None)) or args.metrics_interval is not None
    attribution = bool(getattr(args, "attribution", False))
    if not tracing and not attribution:
        return None
    interval = args.metrics_interval
    if interval is None and tracing:
        interval = "1ms"
    return TelemetryConfig(
        mode=args.trace_mode,
        ring_size=args.trace_ring_size,
        sample_every=args.trace_sample_every,
        metrics_interval_s=parse_duration(interval) if interval else None,
        trace=tracing,
        attribution=attribution,
    )


def cmd_run(args) -> int:
    config = _config_from_args(args)
    scheme = scheme_from_name(args.scheme)
    try:
        telemetry = _telemetry_from_args(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    system = System(config, args.workload, scheme, telemetry=telemetry)
    progress = None
    if args.progress:
        progress = RunProgress(system)
        progress.register_metrics(system.telemetry.registry)
        progress.attach()
    try:
        result = system.run()
    finally:
        if progress is not None:
            progress.close()
    if args.ledger:
        entry = LedgerEntry.from_result(result, config, kind=KIND_RUN)
        RunLedger(args.ledger).append(entry)
        print(f"ledger entry appended to {args.ledger}", file=sys.stderr)
    print(result.summary())
    if args.verbose:
        for key, value in sorted(result.as_dict().items()):
            print(f"  {key:28s} {value}")
    if result.attribution:
        share = result.attribution.get("read_refresh_share", 0.0)
        print(
            f"attribution: {100 * share:.2f}% of read latency blamed on "
            "refreshes ('repro-rrm explain' prints the full anatomy)",
            file=sys.stderr,
        )
    if args.trace:
        tracer = system.telemetry.tracer
        tracer.export(args.trace)
        print(
            f"trace written to {args.trace} "
            f"({len(tracer.events())} events, {tracer.dropped} dropped)",
            file=sys.stderr,
        )
    return 0


def cmd_compare(args) -> int:
    config = _config_from_args(args)
    schemes = (
        [scheme_from_name(s) for s in args.schemes] if args.schemes else all_schemes()
    )
    runner = ExperimentRunner(config, workloads=[args.workload], schemes=schemes)
    runner.run_all(
        progress=lambda w, s, r: print(f"  done: {w} / {s.value}", file=sys.stderr)
    )
    print(performance_report(runner, schemes))
    print()
    print(lifetime_report(runner, schemes))
    return 0


def cmd_sweep(args) -> int:
    config = _config_from_args(args)
    workloads = args.workloads or all_workload_names()
    schemes = (
        [scheme_from_name(s) for s in args.schemes] if args.schemes else all_schemes()
    )
    fault_plan = FaultPlan.parse(args.inject_faults) if args.inject_faults else None
    if fault_plan:
        print(
            f"  fault injection armed: {', '.join(args.inject_faults)}",
            file=sys.stderr,
        )
    # A sweep spans processes, so its timeline is wall-clock, not sim time.
    tracer = Tracer.wallclock() if args.trace else None
    reporter = (
        SweepProgress(len(workloads) * len(schemes)) if args.progress else None
    )
    fabric = args.jobs > 1
    if args.profile and not fabric:
        # Serial sweep cells run inside supervisor subprocesses, where a
        # sampler in this coordinator process would see nothing.
        print(
            "error: sweep --profile needs --jobs > 1 (fabric workers "
            "sample themselves; serial cells run in subprocesses an "
            "in-process sampler cannot see)",
            file=sys.stderr,
        )
        return 2
    flight_dir = args.flight_dir
    if flight_dir is None and fabric and args.journal:
        # A journalled fabric sweep gets flight recorders by default so
        # injected/real crashes stay explainable from the journal alone.
        flight_dir = f"{args.journal}.flight"
    runner = ExperimentRunner(
        config,
        workloads=workloads,
        schemes=schemes,
        n_workers=args.workers,
        n_jobs=args.jobs,
        timeout_s=args.timeout,
        retry=RetryPolicy(max_retries=args.retries),
        journal_path=args.journal,
        # On the fabric, workers append per-worker ledger shards that are
        # merged deterministically; serially the loop below appends.
        ledger_path=args.ledger if fabric else None,
        profile_path=args.profile if fabric else None,
        fault_plan=fault_plan,
        recorder_dir=flight_dir if fabric else None,
        on_event=reporter.on_event if reporter is not None else None,
        **({"tracer": tracer} if tracer is not None else {}),
    )
    progress = lambda w, s, r: print(f"  done: {w} / {s.value}", file=sys.stderr)  # noqa: E731
    if reporter is not None:
        progress = None  # the single-line reporter replaces per-job lines
    try:
        if args.resume:
            if not args.journal:
                print("--resume requires --journal", file=sys.stderr)
                return 2
            runner.resume(progress=progress)
        else:
            runner.run_all(progress=progress)
    finally:
        if reporter is not None:
            reporter.close()
    if args.ledger:
        if not fabric:
            ledger = RunLedger(args.ledger)
            for (workload, scheme), result in sorted(
                runner.results.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
            ):
                ledger.append(
                    LedgerEntry.from_result(result, config, kind=KIND_SWEEP)
                )
        print(
            f"{len(runner.results)} ledger entries appended to {args.ledger}",
            file=sys.stderr,
        )
    if runner.fabric_stats is not None:
        stats = runner.fabric_stats
        print(
            f"fabric: {stats.n_workers} workers, "
            f"{stats.jobs_completed} ok / {stats.jobs_failed} failed, "
            f"{stats.jobs_stolen} stolen, {stats.retries} retries, "
            f"{stats.respawns} respawns, "
            f"utilization {100 * stats.utilization:.0f}%, "
            f"wall {stats.wall_s:.1f}s",
            file=sys.stderr,
        )
    if args.profile and Path(args.profile).exists():
        print(
            f"merged worker profile written to {args.profile} "
            "('repro-rrm profile report' renders it)",
            file=sys.stderr,
        )
    if args.metrics_out:
        from repro.obs.live.exposition import render_exposition
        from repro.telemetry import MetricRegistry
        from repro.utils.persist import atomic_write_text

        registry = MetricRegistry()
        if runner.fabric_stats is not None:
            runner.fabric_stats.register_metrics(registry)
        if runner.fleet is not None:
            runner.fleet.register_metrics(registry)
        atomic_write_text(Path(args.metrics_out), render_exposition(registry))
        print(f"metrics snapshot written to {args.metrics_out}", file=sys.stderr)
    print(performance_report(runner, schemes))
    print()
    print(lifetime_report(runner, schemes))
    if runner.failures:
        print()
        print(failure_report(runner))
    if args.output:
        runner.save_json(args.output)
        print(f"\nresults written to {args.output}")
    if tracer is not None:
        tracer.export(args.trace)
        print(f"sweep trace written to {args.trace}", file=sys.stderr)
    # Degraded completion (some cells failed) still exits 0 — the sweep
    # finished and reported; only a sweep with zero results is an error.
    return 0 if runner.results else 1


def cmd_serve(args) -> int:
    """Run the fabric batch service in the foreground until interrupted."""
    from repro.fabric import FabricServer
    from repro.obs.live.slog import StructuredLogger

    logger = StructuredLogger(sys.stderr, fields={"component": "serve"})
    server = FabricServer(
        args.address,
        args.journal_dir,
        baseline_path=args.baseline,
        logger=logger,
        http_address=args.http,
    )
    try:
        server.start()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        server.wait()
    except KeyboardInterrupt:
        print("interrupted; stopping", file=sys.stderr)
        server.stop()
    return 0


def cmd_submit(args) -> int:
    """Submit a sweep spec to a running server; stream it by default."""
    from repro.fabric import FabricClient, SweepSpec

    try:
        spec = SweepSpec.make(
            config_name=args.config,
            seed=args.seed,
            duration_s=args.duration,
            workloads=args.workloads or None,
            schemes=args.schemes or None,
            max_events=args.max_events,
            jobs=args.jobs,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = FabricClient(args.address)
    try:
        if args.no_watch:
            print(client.submit(spec))
            return 0
        outcome = None
        for message in client.submit_and_watch(spec):
            event = message.get("event")
            if event is None:
                print(f"submitted: {message.get('sweep')}", file=sys.stderr)
            elif event == "ledger.entry":
                entry = message.get("entry") or {}
                metrics = entry.get("metrics") or {}
                ipc = metrics.get("ipc")
                print(
                    f"  done: {entry.get('name')}"
                    + (f"  ipc={ipc:.4f}" if isinstance(ipc, float) else "")
                )
            elif event in ("job.retry", "job.failed", "fabric.respawn"):
                print(f"  {event}: {message}", file=sys.stderr)
            elif event == "gate.verdict":
                counts = message.get("counts") or {}
                summary = ", ".join(
                    f"{count} {name}" for name, count in sorted(counts.items())
                )
                print(f"gate: {summary or message.get('error', 'no verdicts')}")
            elif event == "sweep.finished":
                outcome = message
        if outcome is None:
            print(
                "server closed the stream before the sweep finished; "
                "its journal has whatever settled",
                file=sys.stderr,
            )
            return 1
        print(
            f"{outcome.get('sweep')}: {outcome.get('state')} "
            f"({outcome.get('completed', 0)} ok, {outcome.get('failed', 0)} "
            f"failed)  journal={outcome.get('journal')}"
        )
        finished = outcome.get("state") == "finished"
        return 0 if finished and outcome.get("completed", 0) else 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_status(args) -> int:
    """Ping a running server and list its sweeps (table, or raw --json)."""
    from repro.fabric import FabricClient

    client = FabricClient(args.address)
    try:
        info = client.ping()
        sweeps = client.status()
        if args.json:
            import json as _json

            print(
                _json.dumps(
                    {
                        "address": args.address,
                        "protocol": info.get("version"),
                        "sweeps": sweeps,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            rows = []
            for sweep in sweeps:
                # Journals written before the throughput metric existed
                # (or a 0.0 placeholder) render as "-", never None.
                rate = sweep.get("sim_events_per_sec")
                has_rate = (
                    isinstance(rate, (int, float))
                    and not isinstance(rate, bool)
                    and rate > 0
                )
                rows.append(
                    [
                        sweep.get("sweep", "?"),
                        sweep.get("state", "?"),
                        f"{sweep.get('completed', 0)}/{sweep.get('jobs', 0)}",
                        sweep.get("failed", 0),
                        sweep.get("workers", 1),
                        f"{rate:,.0f}" if has_rate else "-",
                        sweep.get("error") or sweep.get("journal", "-"),
                    ]
                )
            print(
                format_table(
                    ["sweep", "state", "done", "failed", "jobs", "ev/s",
                     "journal / error"],
                    rows,
                    title=(
                        f"server at {args.address}: protocol "
                        f"v{info.get('version')}, {len(sweeps)} sweep(s)"
                    ),
                )
            )
        if args.shutdown:
            client.shutdown()
            print("shutdown requested", file=sys.stderr)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_top(args) -> int:
    """Live TTY fleet view (heartbeats + sweep states) of a server."""
    from repro.obs.live.top import run_top

    try:
        return run_top(
            args.address, interval_s=args.interval, once=args.once
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_profile_run(args) -> int:
    """Profile one simulation: sampled stacks, deterministic event-cost
    accounting, and a memory census. Profiling is observational — the
    run's results are bit-identical to an unprofiled run; the profile
    rides along as a side artifact.
    """
    from repro.profiling import Profile, format_profile, render_flamegraph

    config = _config_from_args(args)
    try:
        scheme = scheme_from_name(args.scheme)
        telemetry = TelemetryConfig(
            profile=True,
            trace=False,
            profile_interval_s=parse_duration(args.interval),
        )
        system = System(config, args.workload, scheme, telemetry=telemetry)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.tracemalloc:
        import tracemalloc

        tracemalloc.start()
    try:
        result = system.run()
    finally:
        if args.tracemalloc:
            import tracemalloc

            tracemalloc.stop()
    prof = Profile.from_json_dict(result.profile or {})
    prof.save(args.out)
    print(f"profile written to {args.out}", file=sys.stderr)
    if args.flamegraph:
        Path(args.flamegraph).write_text(
            render_flamegraph(prof), encoding="utf-8"
        )
        print(f"flamegraph written to {args.flamegraph}", file=sys.stderr)
    if args.folded:
        Path(args.folded).write_text(
            prof.folded_text() + "\n", encoding="utf-8"
        )
        print(f"folded stacks written to {args.folded}", file=sys.stderr)
    if args.ledger:
        entry = LedgerEntry.from_result(result, config, kind=KIND_RUN)
        RunLedger(args.ledger).append(entry)
        print(f"ledger entry appended to {args.ledger}", file=sys.stderr)
    print(format_profile(prof, top=args.top))
    return 0


def cmd_profile_report(args) -> int:
    """Render a saved profile artifact (text, flamegraph, folded)."""
    from repro.profiling import format_profile, load_profile, render_flamegraph

    try:
        prof = load_profile(args.file)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_profile(prof, top=args.top))
    if args.flamegraph:
        Path(args.flamegraph).write_text(
            render_flamegraph(prof), encoding="utf-8"
        )
        print(f"flamegraph written to {args.flamegraph}", file=sys.stderr)
    if args.folded:
        Path(args.folded).write_text(
            prof.folded_text() + "\n", encoding="utf-8"
        )
        print(f"folded stacks written to {args.folded}", file=sys.stderr)
    return 0


def cmd_profile_diff(args) -> int:
    """Compare two profile artifacts; --check turns drift into exit 1."""
    from repro.profiling import diff_profiles, format_diff, load_profile

    try:
        before = load_profile(args.a)
        after = load_profile(args.b)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_profiles(before, after)
    print(format_diff(diff, tolerance=args.tolerance))
    if args.check and not diff.within(args.tolerance):
        return 1
    return 0


def cmd_profile_fetch(args) -> int:
    """Sample a running 'serve' instance and report where its time goes."""
    from repro.fabric import FabricClient
    from repro.profiling import Profile, format_profile

    client = FabricClient(args.address)
    try:
        payload = client.profile(args.duration)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prof = Profile.from_json_dict(payload)
    if args.out:
        prof.save(args.out)
        print(f"profile written to {args.out}", file=sys.stderr)
    print(format_profile(prof, top=args.top))
    return 0


def cmd_sensitivity(args) -> int:
    from repro.sim.sweeps import (
        coverage_sweep,
        entry_size_sweep,
        hot_threshold_sweep,
        sweep_table,
    )

    config = _config_from_args(args)
    workloads = args.workloads or ["GemsFDTD"]
    progress = lambda label, w: print(f"  done: {label} / {w}", file=sys.stderr)  # noqa: E731

    if args.parameter == "threshold":
        points = hot_threshold_sweep(config, workloads, progress=progress)
        title = "hot_threshold sweep (paper Fig. 11)"
    elif args.parameter == "coverage":
        points = coverage_sweep(config, workloads, progress=progress)
        title = "LLC coverage sweep (paper Fig. 12)"
    else:
        points = entry_size_sweep(config, workloads, progress=progress)
        title = "entry coverage size sweep (paper Fig. 13)"

    print(
        format_table(
            ["variant", "speedup vs S7", "lifetime (y)", "fast writes"],
            sweep_table(points),
            title=f"{title}, geomean over {', '.join(workloads)}",
        )
    )
    return 0


def cmd_table1(args) -> int:
    table = WriteModeTable()
    rows = [
        [m.name, f"{m.set_current_ua:.0f}", m.normalized_energy,
         f"{m.retention_s:.1f}" if m.retention_s > 100 else f"{m.retention_s:.2f}",
         f"{m.latency_ns:.0f}"]
        for m in reversed(list(table))
    ]
    print(
        format_table(
            ["Write Type", "Current (uA)", "N. Energy", "Retention (s)", "Latency (ns)"],
            rows,
            title="Table I: write latency and retention per SET count",
        )
    )
    return 0


def cmd_table3(args) -> int:
    config = _config_from_args(args)
    analyzer = RegionIntervalAnalyzer(
        drift_scale=config.drift_scale,
        total_regions=config.memory.size_bytes // 4096,
    )
    system = System(
        config,
        args.workload,
        Scheme.STATIC_7,
        write_trace_sink=lambda t, b: analyzer.record(t, b),
    )
    system.run()
    rows = [
        [row.label, row.regions, f"{row.region_pct:.1f}%", row.writes,
         f"{row.write_pct:.2f}%"]
        for row in analyzer.histogram()
    ]
    print(
        format_table(
            ["Average Write Interval", "# Regions", "% Regions", "# Writes", "% Writes"],
            rows,
            title=f"Table III: region write behaviour, {args.workload}",
        )
    )
    return 0


def _write_json(path, payload) -> None:
    import json as _json

    Path(path).write_text(
        _json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def cmd_trace(args) -> int:
    """Summarise/validate one trace file, or diff two (``trace diff A B``)."""
    files = args.file
    if files and files[0] == "diff":
        if len(files) != 3:
            print("usage: repro-rrm trace diff A B", file=sys.stderr)
            return 2
        try:
            events_a = load_trace(files[1])
            events_b = load_trace(files[2])
        except (TraceFormatError, FileNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        diff = diff_traces(events_a, events_b)
        print(format_trace_diff(diff, top=args.top))
        if args.json:
            import dataclasses as _dc

            _write_json(args.json, _dc.asdict(diff))
            print(f"diff written to {args.json}", file=sys.stderr)
        return 0
    if len(files) != 1:
        print(
            "usage: repro-rrm trace FILE  (or: trace diff A B)",
            file=sys.stderr,
        )
        return 2
    try:
        events = load_trace(files[0])
    except (TraceFormatError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not events:
        # An empty trace is an empty recording, not a summary of zero:
        # the tracer always emits metadata, so nothing at all means a
        # truncated or never-started capture.
        print(f"error: {files[0]}: trace contains no events", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(events)
    summary = summarize_trace(events, top_spans=args.top)
    print(format_summary(summary))
    if args.json:
        _write_json(args.json, summary.to_json_dict())
        print(f"summary written to {args.json}", file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} validation problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
    if args.check:
        return 1 if problems else 0
    return 0


def cmd_explain(args) -> int:
    """Run one workload with latency attribution and explain where the
    time went: per-request anatomies for the slowest requests, the
    victim x blocker blamed-time matrix, and the per-bank interference
    heatmap. Exit codes: 0 report printed, 2 usage/configuration error.
    """
    config = _config_from_args(args)
    try:
        scheme = scheme_from_name(args.scheme)
        system = System(
            config,
            args.workload,
            scheme,
            telemetry=TelemetryConfig(attribution=True, trace=False),
        )
        system.run()
        report = system.attribution_report()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        format_report(
            report,
            top=args.top,
            header=f"{args.workload} / {scheme.value}",
        )
    )
    if args.json:
        _write_json(args.json, report.to_json_dict())
        print(f"anatomy written to {args.json}", file=sys.stderr)
    return 0


def cmd_lint(args) -> int:
    """Run the simulator-invariant static analyzer (repro.lint).

    Exit codes follow the CLI convention: 0 clean, 1 findings (errors;
    with --strict, warnings too), 2 usage or internal error.
    """
    try:
        report = run_lint(
            paths=args.paths or None,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            select=args.select,
            ignore=args.ignore,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        print(
            f"baseline written to {report.baseline_path} "
            f"({len(report.baselined)} finding(s) accepted)",
            file=sys.stderr,
        )
        return 0
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code(strict=args.strict)


def cmd_table8(args) -> int:
    llc = parse_size(args.llc)
    base = RRMConfig()
    rows = []
    for rate in (2, 4, 8, 16):
        cfg = base.with_coverage_rate(llc, rate)
        label = f"{rate}x" + (" (default)" if rate == 4 else "")
        rows.append(
            [label, f"{cfg.n_sets} sets, {cfg.n_ways} ways",
             format_bytes(cfg.storage_bytes),
             f"{100 * cfg.storage_bytes / llc:.2f}% of LLC"]
        )
    print(
        format_table(
            ["LLC Coverage", "Configuration", "Overhead", "Relative"],
            rows,
            title="Table VIII: RRM configuration per LLC coverage",
        )
    )
    return 0


def cmd_obs_bench(args) -> int:
    """Run the pinned core micro-benchmark suite and record it."""
    try:
        outcome = run_core_suite(
            ledger_path=args.ledger,
            bench_json_path=args.bench_json,
            baseline_out=args.baseline_out,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for entry in outcome.entries:
        ipc = entry.metrics.get("ipc")
        wall = entry.metrics.get("wall_time_s")
        print(
            f"  {entry.name:<32} ipc={ipc:.4f}  wall={wall:.2f}s"
            if ipc is not None and wall is not None
            else f"  {entry.name}"
        )
    if outcome.ledger_path:
        print(f"ledger: {outcome.ledger_path}", file=sys.stderr)
    if outcome.bench_json_path:
        print(f"summary: {outcome.bench_json_path}", file=sys.stderr)
    if outcome.baseline_path:
        print(f"baseline pinned: {outcome.baseline_path}", file=sys.stderr)
    return 0


def _run_gate(args, *, report_only: bool) -> int:
    """Shared body of ``obs compare`` (always 0) and ``obs gate`` (0/1)."""
    try:
        baseline = load_baseline(args.baseline)
        rules = load_rules(args.rules) if args.rules else DEFAULT_RULES
        entries = RunLedger.load(args.ledger)
    except FileNotFoundError as exc:
        print(f"error: ledger not found: {exc.filename or exc}", file=sys.stderr)
        return 2
    except (ConfigError, LedgerCorruptError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    current = samples_from_entries(entries, last_n=args.last)
    report = compare_samples(baseline, current, rules=rules, seed=args.seed)
    print(report.format_text(verbose=args.verbose))
    if args.json:
        import json as _json

        Path(args.json).write_text(
            _json.dumps(report.to_json_dict(), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"verdicts written to {args.json}", file=sys.stderr)
    return report.exit_code(report_only=report_only)


def cmd_obs_compare(args) -> int:
    return _run_gate(args, report_only=True)


def cmd_obs_gate(args) -> int:
    return _run_gate(args, report_only=args.report_only)


def cmd_obs_pin(args) -> int:
    """Pin the ledger's latest samples as a gate baseline file."""
    try:
        entries = RunLedger.load(args.ledger)
    except FileNotFoundError as exc:
        print(f"error: ledger not found: {exc.filename or exc}", file=sys.stderr)
        return 2
    except LedgerCorruptError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    samples = samples_from_entries(entries, last_n=args.last)
    if not samples:
        print("error: ledger has no entries to pin", file=sys.stderr)
        return 2
    write_baseline(args.out, samples, fingerprint=environment_fingerprint())
    print(f"baseline pinned: {args.out} ({len(samples)} run name(s))")
    return 0


def cmd_obs_dashboard(args) -> int:
    """Render the offline HTML dashboard from a ledger (+ optional gate)."""
    try:
        entries = RunLedger.load(args.ledger)
    except FileNotFoundError as exc:
        print(f"error: ledger not found: {exc.filename or exc}", file=sys.stderr)
        return 2
    except LedgerCorruptError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    gate_report = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        gate_report = compare_samples(
            baseline,
            samples_from_entries(entries, last_n=args.last),
            seed=args.seed,
        )
    flamegraph_svg = None
    if args.profile:
        from repro.profiling import load_profile, render_flamegraph

        try:
            flamegraph_svg = render_flamegraph(load_profile(args.profile))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    html_text = render_dashboard(
        entries,
        gate_report=gate_report,
        title=args.title,
        metrics=args.metrics or None,
        max_points=args.max_points,
        flamegraph_svg=flamegraph_svg,
    )
    Path(args.out).write_text(html_text, encoding="utf-8")
    print(
        f"dashboard written to {args.out} "
        f"({len(entries)} entries{', with gate verdicts' if gate_report else ''})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rrm",
        description="Region Retention Monitor for MLC PCM (HPCA 2017 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload under one scheme")
    _add_common(p_run)
    p_run.add_argument("--workload", default="GemsFDTD")
    p_run.add_argument("--scheme", default="rrm")
    p_run.add_argument("--verbose", action="store_true")
    p_run.add_argument(
        "--progress",
        action="store_true",
        help="live single-line progress (sim-time %%, events/s, ETA, "
        "queue depths); does not change results",
    )
    p_run.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="append this run's metrics + environment fingerprint to a "
        "JSONL run ledger (see 'repro-rrm obs')",
    )
    _add_telemetry(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare schemes on one workload")
    _add_common(p_cmp)
    p_cmp.add_argument("--workload", default="GemsFDTD")
    p_cmp.add_argument("--schemes", nargs="*", default=None)
    p_cmp.set_defaults(func=cmd_compare)

    p_sweep = sub.add_parser("sweep", help="full workloads x schemes sweep")
    _add_common(p_sweep)
    p_sweep.add_argument("--workloads", nargs="*", default=None)
    p_sweep.add_argument("--schemes", nargs="*", default=None)
    p_sweep.add_argument("--workers", type=int, default=1)
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the sweep across N worker processes on the "
        "work-stealing fabric; results are bit-identical to --jobs 1 "
        "(composes with --journal/--resume/--inject-faults)",
    )
    p_sweep.add_argument("--output", default=None, help="JSON output path")
    p_sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock timeout in seconds (default: none)",
    )
    p_sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per failed job before it is recorded as failed",
    )
    p_sweep.add_argument(
        "--journal",
        default=None,
        help="JSONL checkpoint journal; completed jobs are appended "
        "atomically so an interrupted sweep can be resumed",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume from --journal, re-running only missing/failed jobs",
    )
    p_sweep.add_argument(
        "--inject-faults",
        nargs="*",
        default=None,
        metavar="KIND:TARGET[:MAX_FIRES]",
        help="fault-injection drill: crash/hang/error/corrupt a job by "
        "index or workload/scheme (e.g. crash:1, hang:GemsFDTD/rrm, "
        "crash:0:1 for first-attempt-only)",
    )
    p_sweep.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a wall-clock orchestration trace (job attempts, "
        "retries, failures, journal appends) in Chrome-trace format",
    )
    p_sweep.add_argument(
        "--progress",
        action="store_true",
        help="live single-line sweep progress (settled/failed/retries/ETA)",
    )
    p_sweep.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="append every completed cell's metrics to a JSONL run ledger",
    )
    p_sweep.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a Prometheus text-format snapshot of the fabric "
        "counters and fleet aggregates after the sweep settles",
    )
    p_sweep.add_argument(
        "--profile",
        default=None,
        metavar="FILE",
        help="sample every fabric worker's stacks and write the merged "
        "profile artifact here (requires --jobs > 1; observational — "
        "results stay bit-identical)",
    )
    p_sweep.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="per-worker crash flight-recorder directory (fabric only; "
        "default: <journal>.flight when --journal is given)",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_serve = sub.add_parser(
        "serve",
        help="batch sweep service: accept sweep specs over a local "
        "socket, run them on the fabric, stream progress/ledger/gate "
        "events to watchers",
    )
    p_serve.add_argument(
        "--address",
        default=".repro-rrm.sock",
        help="unix socket path, or host:port for TCP "
        "(default: .repro-rrm.sock)",
    )
    p_serve.add_argument(
        "--journal-dir",
        default="fabric-journals",
        metavar="DIR",
        help="directory for per-sweep journals/ledgers (sweep-001.jsonl, "
        "...); an interrupted sweep resumes with 'repro-rrm sweep "
        "--resume --journal DIR/sweep-NNN.jsonl --jobs N' "
        "(default: fabric-journals)",
    )
    p_serve.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="stream a gate.verdict event per sweep against this pinned "
        "baseline",
    )
    p_serve.add_argument(
        "--http",
        default=None,
        metavar="HOST:PORT",
        help="also expose GET /metrics (Prometheus text format) on this "
        "plain-HTTP address (e.g. 127.0.0.1:9100; port 0 picks a free "
        "port); the same text is always available as the 'metrics' op "
        "on the line-JSON socket",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a sweep spec to a running 'serve' instance"
    )
    _add_common(p_submit)
    p_submit.add_argument(
        "--address", default=".repro-rrm.sock", help="server address"
    )
    p_submit.add_argument("--workloads", nargs="*", default=None)
    p_submit.add_argument("--schemes", nargs="*", default=None)
    p_submit.add_argument(
        "--max-events", type=int, default=None, metavar="N"
    )
    p_submit.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fabric worker processes for this sweep (default: 1)",
    )
    p_submit.add_argument(
        "--no-watch",
        action="store_true",
        help="queue the sweep and return its id immediately instead of "
        "streaming it",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="ping a running 'serve' instance and list its sweeps"
    )
    p_status.add_argument(
        "--address", default=".repro-rrm.sock", help="server address"
    )
    p_status.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the server to shut down after reporting",
    )
    p_status.add_argument(
        "--json",
        action="store_true",
        help="dump the raw status payload as JSON instead of the table",
    )
    p_status.set_defaults(func=cmd_status)

    p_top = sub.add_parser(
        "top",
        help="live fleet view of a running 'serve' instance: per-worker "
        "heartbeats (job, events/s, RSS, staleness) plus sweep states, "
        "refreshed in place on a TTY",
    )
    p_top.add_argument(
        "--address", default=".repro-rrm.sock", help="server address"
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: 2.0)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (scriptable snapshot)",
    )
    p_top.set_defaults(func=cmd_top)

    p_prof = sub.add_parser(
        "profile",
        help="hot-path microscope: sample a run's host stacks, account "
        "event-dispatch cost, census live memory; report and diff the "
        "resulting artifacts",
    )
    prof_sub = p_prof.add_subparsers(dest="profile_command", required=True)

    p_prof_run = prof_sub.add_parser(
        "run",
        help="run one workload with the sampling profiler, event-cost "
        "accounting and memory census on; write the profile artifact",
    )
    _add_common(p_prof_run)
    p_prof_run.add_argument("--workload", default="GemsFDTD")
    p_prof_run.add_argument("--scheme", default="rrm")
    p_prof_run.add_argument(
        "--interval",
        default="5ms",
        metavar="DURATION",
        help="host-time sampling interval, e.g. 5ms, 500us (default: 5ms)",
    )
    p_prof_run.add_argument(
        "--tracemalloc",
        action="store_true",
        help="also trace allocations with tracemalloc (slower; adds "
        "per-file allocation tops to the memory census)",
    )
    p_prof_run.add_argument(
        "--out",
        default="profile.json",
        metavar="FILE",
        help="profile artifact to write (default: profile.json)",
    )
    p_prof_run.add_argument(
        "--flamegraph",
        default=None,
        metavar="FILE",
        help="also render a dependency-free SVG flamegraph",
    )
    p_prof_run.add_argument(
        "--folded",
        default=None,
        metavar="FILE",
        help="also write classic folded stacks (flamegraph.pl/speedscope)",
    )
    p_prof_run.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="append the run (with prof_*/mem_* metrics) to a run ledger",
    )
    p_prof_run.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="hottest functions / dispatch owners to list (default: 15)",
    )
    p_prof_run.set_defaults(func=cmd_profile_run)

    p_prof_rep = prof_sub.add_parser(
        "report", help="render a saved profile artifact"
    )
    p_prof_rep.add_argument("file", help="profile artifact (JSON)")
    p_prof_rep.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="hottest functions to list (default: 15)",
    )
    p_prof_rep.add_argument(
        "--flamegraph", default=None, metavar="FILE",
        help="also render an SVG flamegraph",
    )
    p_prof_rep.add_argument(
        "--folded", default=None, metavar="FILE",
        help="also write classic folded stacks",
    )
    p_prof_rep.set_defaults(func=cmd_profile_report)

    p_prof_diff = prof_sub.add_parser(
        "diff",
        help="compare two profile artifacts' self-time shares "
        "(per subsystem and per function)",
    )
    p_prof_diff.add_argument("a", help="baseline profile artifact")
    p_prof_diff.add_argument("b", help="candidate profile artifact")
    p_prof_diff.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_DIFF_TOLERANCE,
        metavar="SHARE",
        help="max per-subsystem self-share delta considered sampling "
        f"noise (default: {DEFAULT_DIFF_TOLERANCE})",
    )
    p_prof_diff.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any subsystem's share moved beyond --tolerance",
    )
    p_prof_diff.set_defaults(func=cmd_profile_diff)

    p_prof_fetch = prof_sub.add_parser(
        "fetch",
        help="sample a running 'serve' process for a few seconds and "
        "report where its time goes",
    )
    p_prof_fetch.add_argument(
        "--address", default=".repro-rrm.sock", help="server address"
    )
    p_prof_fetch.add_argument(
        "--duration",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="sampling window (default: 2.0, server-clamped to 60)",
    )
    p_prof_fetch.add_argument(
        "--out", default=None, metavar="FILE",
        help="also save the fetched profile artifact",
    )
    p_prof_fetch.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="hottest functions to list (default: 15)",
    )
    p_prof_fetch.set_defaults(func=cmd_profile_fetch)

    p_sens = sub.add_parser(
        "sensitivity", help="RRM sensitivity sweeps (paper Figs. 11-13)"
    )
    _add_common(p_sens)
    p_sens.add_argument(
        "--parameter",
        choices=["threshold", "coverage", "entry-size"],
        default="threshold",
    )
    p_sens.add_argument("--workloads", nargs="*", default=None)
    p_sens.set_defaults(func=cmd_sensitivity)

    p_t1 = sub.add_parser("table1", help="regenerate paper Table I")
    p_t1.set_defaults(func=cmd_table1)

    p_t3 = sub.add_parser("table3", help="region write-interval histogram")
    _add_common(p_t3)
    p_t3.add_argument("--workload", default="GemsFDTD")
    p_t3.set_defaults(func=cmd_table3)

    p_t8 = sub.add_parser("table8", help="RRM storage-overhead table")
    p_t8.add_argument("--llc", default="6MB")
    p_t8.set_defaults(func=cmd_table8)

    p_lint = sub.add_parser(
        "lint",
        help="static simulator/orchestration-invariant analysis "
        "(rules RL001-RL012)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: src/repro)",
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="accepted-findings file (default: .repro-lint-baseline.json "
        "when present)",
    )
    p_lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept all current findings "
        "(existing justifications are kept)",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) on warnings too, not just errors",
    )
    p_lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="run only these rules: comma-separated ids and/or ranges "
        "(e.g. RL007,RL010 or RL007-RL012)",
    )
    p_lint.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="skip these rules (same grammar as --select)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_trace = sub.add_parser(
        "trace", help="summarise, validate, or diff recorded trace files"
    )
    p_trace.add_argument(
        "file",
        nargs="+",
        help="trace file (.json Chrome-trace or .jsonl), or 'diff A B' "
        "to report span-level deltas between two traces",
    )
    p_trace.add_argument(
        "--top",
        type=int,
        default=10,
        help="longest spans / largest deltas to list (default: 10)",
    )
    p_trace.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if the file fails Chrome-trace validation",
    )
    p_trace.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the summary (or diff) as JSON",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_explain = sub.add_parser(
        "explain",
        help="latency anatomy: run with per-request causal attribution "
        "and report where read/write time went (queue blame by blocker "
        "class, pause preemption, row-miss penalty, per-bank heatmap)",
    )
    _add_common(p_explain)
    p_explain.add_argument("--workload", default="GemsFDTD")
    p_explain.add_argument("--scheme", default="rrm")
    p_explain.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="slowest requests to dissect in full (default: 5)",
    )
    p_explain.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the full report (matrix, per-bank blame, "
        "slowest anatomies, region hot list) as JSON",
    )
    p_explain.set_defaults(func=cmd_explain)

    p_obs = sub.add_parser(
        "obs",
        help="performance observability: run ledger, regression gate, "
        "dashboard",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_bench = obs_sub.add_parser(
        "bench", help="run the pinned core micro-benchmark suite"
    )
    p_bench.add_argument(
        "--ledger",
        default="obs-ledger.jsonl",
        metavar="FILE",
        help="run ledger to append to (default: obs-ledger.jsonl)",
    )
    p_bench.add_argument(
        "--bench-json",
        default="BENCH_core.json",
        metavar="FILE",
        help="suite summary output (default: BENCH_core.json)",
    )
    p_bench.add_argument(
        "--baseline-out",
        default=None,
        metavar="FILE",
        help="also pin the fresh results as a gate baseline",
    )
    p_bench.set_defaults(func=cmd_obs_bench)

    def _add_gate_args(p, *, verbose_default: bool = False) -> None:
        p.add_argument(
            "--ledger",
            default="obs-ledger.jsonl",
            metavar="FILE",
            help="run ledger holding the current samples "
            "(default: obs-ledger.jsonl)",
        )
        p.add_argument(
            "--baseline",
            required=True,
            metavar="FILE",
            help="pinned baseline (from 'obs bench --baseline-out' or "
            "'obs pin')",
        )
        p.add_argument(
            "--rules",
            default=None,
            metavar="FILE",
            help="JSON per-metric direction/threshold rules "
            "(default: built-in rule set)",
        )
        p.add_argument(
            "--last",
            type=int,
            default=1,
            metavar="N",
            help="most recent ledger entries per run name to judge "
            "(default: 1)",
        )
        p.add_argument(
            "--seed",
            type=int,
            default=0,
            help="bootstrap resampling seed (default: 0)",
        )
        p.add_argument(
            "--json",
            default=None,
            metavar="FILE",
            help="also write the verdicts as JSON",
        )
        p.add_argument(
            "--verbose",
            action="store_true",
            default=verbose_default,
            help="show ok/info verdicts too, not just flagged ones",
        )

    p_compare = obs_sub.add_parser(
        "compare",
        help="compare latest ledger entries against a baseline (always "
        "exits 0; the reporting twin of 'gate')",
    )
    _add_gate_args(p_compare, verbose_default=True)
    p_compare.set_defaults(func=cmd_obs_compare)

    p_gate = obs_sub.add_parser(
        "gate",
        help="statistical regression gate: exit 1 when any metric's "
        "confidence interval clears its guard band in the bad direction",
    )
    _add_gate_args(p_gate)
    p_gate.add_argument(
        "--report-only",
        action="store_true",
        help="report regressions but exit 0 (CI advisory mode)",
    )
    p_gate.set_defaults(func=cmd_obs_gate)

    p_pin = obs_sub.add_parser(
        "pin", help="pin the ledger's latest samples as a gate baseline"
    )
    p_pin.add_argument(
        "--ledger",
        default="obs-ledger.jsonl",
        metavar="FILE",
        help="run ledger to read (default: obs-ledger.jsonl)",
    )
    p_pin.add_argument(
        "--out",
        default="benchmarks/obs_baseline.json",
        metavar="FILE",
        help="baseline file to write (default: benchmarks/obs_baseline.json)",
    )
    p_pin.add_argument(
        "--last",
        type=int,
        default=1,
        metavar="N",
        help="most recent entries per run name to pin (default: 1)",
    )
    p_pin.set_defaults(func=cmd_obs_pin)

    p_dash = obs_sub.add_parser(
        "dashboard",
        help="render the self-contained offline HTML dashboard",
    )
    p_dash.add_argument(
        "--ledger",
        default="obs-ledger.jsonl",
        metavar="FILE",
        help="run ledger to read (default: obs-ledger.jsonl)",
    )
    p_dash.add_argument(
        "--out",
        default="obs-dashboard.html",
        metavar="FILE",
        help="output HTML file (default: obs-dashboard.html)",
    )
    p_dash.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="include gate verdicts against this baseline",
    )
    p_dash.add_argument(
        "--last",
        type=int,
        default=1,
        metavar="N",
        help="entries per name judged by the gate section (default: 1)",
    )
    p_dash.add_argument(
        "--seed", type=int, default=0, help="bootstrap seed (default: 0)"
    )
    p_dash.add_argument(
        "--metrics",
        nargs="*",
        default=None,
        help="metrics to plot (default: a stock headline set)",
    )
    p_dash.add_argument(
        "--max-points",
        type=int,
        default=60,
        metavar="N",
        help="sparkline history cap per metric (default: 60)",
    )
    p_dash.add_argument(
        "--profile",
        default=None,
        metavar="FILE",
        help="embed this profile artifact's flamegraph in the dashboard",
    )
    p_dash.add_argument(
        "--title", default="repro-rrm performance observability"
    )
    p_dash.set_defaults(func=cmd_obs_dashboard)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
