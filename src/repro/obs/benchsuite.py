"""The pinned micro-benchmark suite behind ``repro-rrm obs bench``.

A small, fixed matrix of (workload, scheme) cells on the tiny
configuration with a pinned seed — deliberately cheap (~1 s per cell)
so it runs on every CI push. Each cell's :class:`~repro.sim.metrics.SimResult`
becomes a ``kind="bench"`` ledger entry named ``core/<workload>/<scheme>``,
and the whole suite is summarised into a repo-root ``BENCH_core.json``
so the latest numbers are diffable in review without opening the ledger.

The simulation metrics are deterministic per seed, which is what makes a
*committed* baseline meaningful: any metric drift on an unchanged
configuration is a code change, not noise (only ``wall_time_s`` is
host-dependent, and the gate gives it a wide guard band).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.obs.gate import samples_from_entries, write_baseline
from repro.obs.ledger import (
    KIND_BENCH,
    LedgerEntry,
    RunLedger,
    environment_fingerprint,
)
from repro.sim.config import SystemConfig
from repro.sim.runner import run_workload
from repro.sim.schemes import Scheme
from repro.telemetry import TelemetryConfig
from repro.utils.persist import save_json

BENCH_SCHEMA = 1
SUITE_NAME = "core"

#: The pinned cells. Keep this list stable — the committed baseline and
#: BENCH_core.json are both keyed by these names.
CORE_SUITE: Tuple[Tuple[str, Scheme], ...] = (
    ("hmmer", Scheme.STATIC_7),
    ("hmmer", Scheme.RRM),
    ("GemsFDTD", Scheme.STATIC_7),
    ("GemsFDTD", Scheme.RRM),
)

CORE_SEED = 1


def cell_name(workload: str, scheme: Scheme) -> str:
    return f"{SUITE_NAME}/{workload}/{scheme.value}"


def core_config(seed: int = CORE_SEED) -> SystemConfig:
    """The suite's pinned configuration (tiny, fixed seed)."""
    return SystemConfig.tiny(seed=seed)


def core_telemetry() -> TelemetryConfig:
    """The suite's telemetry: attribution and host profiling on, tracing off.

    Attribution and profiling are both observational (a run with either
    is bit-identical to one without), so turning them on here costs
    nothing in determinism while making refresh-interference share
    (``attr_read_refresh_share``), the deterministic per-subsystem
    dispatch counts (``prof_dispatch_*``) and the advisory host-side
    ``prof_*``/``mem_*`` numbers pinned suite metrics.
    """
    return TelemetryConfig(
        attribution=True, trace=False, detailed_metrics=False, profile=True
    )


@dataclass
class SuiteOutcome:
    """What one suite run produced and where it was recorded."""

    entries: List[LedgerEntry]
    ledger_path: Optional[Path] = None
    bench_json_path: Optional[Path] = None
    baseline_path: Optional[Path] = None


def run_core_suite(
    *,
    ledger_path=None,
    bench_json_path=None,
    baseline_out=None,
    progress: Optional[Callable[[str], None]] = None,
    runner: Callable[..., object] = run_workload,
) -> SuiteOutcome:
    """Run every pinned cell and record the results.

    Args:
        ledger_path: append each cell to this run ledger.
        bench_json_path: write the suite summary (``BENCH_core.json``).
        baseline_out: also pin the fresh results as a gate baseline.
        progress: optional per-cell status callback (the CLI prints it).
        runner: the cell executor, injectable so tests can fake the
            ~1 s/cell simulation.
    """
    config = core_config()
    ledger = RunLedger(ledger_path) if ledger_path else None
    entries: List[LedgerEntry] = []
    for i, (workload, scheme) in enumerate(CORE_SUITE, start=1):
        if progress:
            progress(
                f"[{i}/{len(CORE_SUITE)}] {workload}/{scheme.value} ..."
            )
        result = runner(config, workload, scheme, telemetry=core_telemetry())
        entry = LedgerEntry.from_result(
            result,
            config,
            kind=KIND_BENCH,
            name=cell_name(workload, scheme),
        )
        if ledger is not None:
            ledger.append(entry)
        entries.append(entry)
    outcome = SuiteOutcome(
        entries=entries,
        ledger_path=Path(ledger_path) if ledger_path else None,
    )
    if bench_json_path:
        outcome.bench_json_path = write_bench_json(bench_json_path, entries)
    if baseline_out:
        outcome.baseline_path = write_baseline(
            baseline_out,
            samples_from_entries(entries),
            fingerprint=environment_fingerprint(config),
        )
    return outcome


def _is_host_dependent(metric: str) -> bool:
    """Metrics that legitimately differ between two runs of the same code.

    Wall time, derived throughput, sampling-profiler shares and memory
    byte counts all move with the host; the deterministic ``sim_events``
    count and the per-subsystem ``prof_dispatch_*`` dispatch counts (a
    pure function of the simulated run) stay pinned.
    """
    if metric in ("wall_time_s", "sim_events_per_sec"):
        return True
    if metric.startswith("mem_"):
        return True
    if metric.startswith("prof_"):
        return not metric.startswith("prof_dispatch_")
    return False


def write_bench_json(path, entries: List[LedgerEntry]) -> Path:
    """Write the repo-root suite summary (``BENCH_core.json``).

    Host-dependent metrics (see :func:`_is_host_dependent`) are excluded
    so the committed file only changes when the simulation itself
    changes.
    """
    path = Path(path)
    payload = {
        "schema": BENCH_SCHEMA,
        "suite": SUITE_NAME,
        "config": "tiny",
        "seed": CORE_SEED,
        "results": [
            {
                "name": entry.name,
                "metrics": {
                    k: v
                    for k, v in sorted(entry.metrics.items())
                    if not _is_host_dependent(k)
                },
            }
            for entry in entries
        ],
    }
    save_json(path, payload)
    return path
