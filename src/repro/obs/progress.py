"""Live progress reporting for runs and sweeps.

Two reporters, one line each, both opt-in via ``--progress``:

- :class:`RunProgress` arms a periodic event on the simulation clock
  (the profiler pattern: the tick is a pure read, so an observed run
  produces the same :class:`~repro.sim.metrics.SimResult` as an
  unobserved one) and reports percent complete, simulated vs wall time,
  engine event throughput, a wall-clock ETA, and the memory-controller
  queue depths.
- :class:`SweepProgress` consumes the supervisor's ``on_event`` stream
  (``job.attempt`` / ``job.result`` / ``job.retry`` / ``job.failed``)
  and reports settled/failed/running counts across the sweep.

On a TTY the line redraws in place (carriage return); on anything else
each update is its own line so CI logs stay readable. Wall-clock reads
live here by design — progress is a *reporting* layer outside the
simulation path, like the sweep tracer's wall clock.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.utils.units import s_to_ns


def _format_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN: unknown
        return "--:--"
    seconds = int(seconds + 0.5)
    if seconds >= 3600:
        return f"{seconds // 3600}:{(seconds % 3600) // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60}:{seconds % 60:02d}"


def _format_count(n: float) -> str:
    for bound, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if n >= bound:
            return f"{n / bound:.1f}{suffix}"
    return f"{n:.0f}"


class _LineWriter:
    """Single-line emitter: redraw-in-place on TTYs, append elsewhere.

    Emission is serialized under a lock: the fabric pumps events from a
    coordinator thread while ``serve`` watchers may redraw from socket
    threads, and an unserialized ``\\r`` redraw interleaves two updates
    into one torn line. Each ``emit`` is a single buffered write under
    the lock, so concurrent callers produce whole lines in some order.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.lines_emitted = 0
        self._last_width = 0
        self._lock = threading.Lock()
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False

    def emit(self, line: str) -> None:
        with self._lock:
            if self._tty:
                pad = max(0, self._last_width - len(line))
                self.stream.write("\r" + line + " " * pad)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
            self._last_width = len(line)
            self.lines_emitted += 1

    def close(self) -> None:
        with self._lock:
            if self._tty and self.lines_emitted:
                self.stream.write("\n")
                self.stream.flush()


class RunProgress:
    """Periodic single-line progress for one :class:`~repro.sim.system.System`.

    Args:
        system: The system to observe; :meth:`attach` must be called
            before ``system.run()``.
        stream: Destination (default ``sys.stderr``).
        updates: Target number of progress ticks across the run (the
            sim-time sampling interval is ``duration / updates``).
        interval_s: Explicit sim-time interval in seconds; overrides
            *updates*.
        clock: Wall-clock source, injectable for tests.
    """

    def __init__(
        self,
        system,
        *,
        stream=None,
        updates: int = 100,
        interval_s: Optional[float] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if updates < 1:
            raise ConfigError(f"updates must be >= 1, got {updates}")
        if interval_s is not None and interval_s <= 0:
            raise ConfigError(f"interval_s must be positive, got {interval_s}")
        self.system = system
        self.writer = _LineWriter(stream)
        self.clock = clock
        self.ticks = 0
        self._duration_ns = s_to_ns(system.config.duration_s)
        if interval_s is not None:
            self._interval_ns = s_to_ns(interval_s)
        else:
            self._interval_ns = self._duration_ns / updates
        self._t0: Optional[float] = None
        self._attached = False

    def register_metrics(self, registry, prefix: str = "obs.progress") -> None:
        """Publish the reporter's tick counter into a telemetry registry."""
        registry.gauge(f"{prefix}.ticks", lambda: self.ticks)
        registry.gauge(
            f"{prefix}.lines_emitted", lambda: self.writer.lines_emitted
        )

    def attach(self) -> "RunProgress":
        """Arm the periodic progress event; call before ``system.run()``."""
        if self._attached:
            raise ConfigError("progress reporter already attached")
        self._attached = True
        self._t0 = self.clock()
        self.system.sim.schedule_periodic(self._interval_ns, self._tick)
        return self

    # ------------------------------------------------------------------
    def _queue_depths(self) -> str:
        registry = self.system.telemetry.registry
        parts = []
        for label, metric in (
            ("pend", "memctrl.pending_requests"),
            ("inflt", "memctrl.inflight_requests"),
        ):
            if metric in registry:
                parts.append(f"{label}={registry.get(metric).value():.0f}")
        return " ".join(parts)

    def _tick(self) -> None:
        self.ticks += 1
        sim = self.system.sim
        elapsed = max(self.clock() - (self._t0 or 0.0), 1e-9)
        fraction = min(sim.now / self._duration_ns, 1.0) if self._duration_ns else 1.0
        rate = sim.events_processed / elapsed
        eta_s = (
            elapsed * (1.0 - fraction) / fraction if fraction > 0 else float("nan")
        )
        line = (
            f"run {100.0 * fraction:5.1f}%  "
            f"sim {sim.now / 1e6:.3f}/{self._duration_ns / 1e6:.3f}ms  "
            f"{_format_count(sim.events_processed)} ev "
            f"({_format_count(rate)}/s)  "
            f"ETA {_format_eta(eta_s)}"
        )
        queues = self._queue_depths()
        if queues:
            line += f"  {queues}"
        self.writer.emit(line)

    def close(self) -> None:
        """Finish the line (newline on TTYs)."""
        self.writer.close()


class SweepProgress:
    """Single-line sweep progress fed by supervisor lifecycle events.

    Wire :meth:`on_event` into
    :class:`~repro.sim.runner.ExperimentRunner` (or directly into a
    :class:`~repro.resilience.supervisor.JobSupervisor`).
    """

    def __init__(
        self,
        total_jobs: int,
        *,
        stream=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if total_jobs < 0:
            raise ConfigError(f"total_jobs must be >= 0, got {total_jobs}")
        self.total_jobs = total_jobs
        self.writer = _LineWriter(stream)
        self.clock = clock
        self.attempts = 0
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self._t0 = clock()

    @property
    def running(self) -> int:
        return max(self.attempts - self.completed - self.failed - self.retries, 0)

    def register_metrics(self, registry, prefix: str = "obs.progress") -> None:
        """Publish the reporter's counters into a telemetry registry."""
        registry.gauge(f"{prefix}.attempts", lambda: self.attempts)
        registry.gauge(f"{prefix}.completed", lambda: self.completed)
        registry.gauge(f"{prefix}.failed", lambda: self.failed)

    def on_event(self, name: str, args: dict) -> None:
        """Supervisor hook: update counters and redraw the line."""
        if name == "job.attempt":
            self.attempts += 1
        elif name == "job.result":
            self.completed += 1
        elif name == "job.retry":
            self.retries += 1
        elif name == "job.failed":
            self.failed += 1
        else:
            return  # unknown lifecycle events don't redraw
        settled = self.completed + self.failed
        elapsed = self.clock() - self._t0
        line = (
            f"sweep {settled}/{self.total_jobs} settled  "
            f"ok={self.completed} failed={self.failed} "
            f"retries={self.retries} running={self.running}  "
            f"elapsed {_format_eta(elapsed)}"
        )
        if settled and self.total_jobs:
            eta = elapsed * (self.total_jobs - settled) / settled
            line += f"  ETA {_format_eta(eta)}"
        self.writer.emit(line)

    def close(self) -> None:
        self.writer.close()
