"""Prometheus-style text exposition of a metric registry.

Renders every metric in a :class:`~repro.telemetry.registry.MetricRegistry`
as the plain-text format scrapers understand (version 0.0.4): one
``# TYPE`` line per family followed by sample lines. Kind mapping:

- ``counter`` → ``counter``;
- ``gauge`` / ``derived`` → ``gauge`` (a derived metric is still a
  point-in-time read from the scraper's perspective);
- ``histogram`` → ``histogram`` with cumulative ``_bucket{le="..."}``
  samples, ``_sum`` and ``_count``. Registry buckets are
  half-open ``[lo, hi)`` while Prometheus ``le`` is inclusive; the
  boundary samples land one bucket high, which is the standard loss of
  precision for pre-bucketed data and irrelevant to trend scraping.

Rendering is a pure read (gauges are pulled, nothing mutated), so a
snapshot may be taken mid-run without perturbing determinism.
"""

from __future__ import annotations

import math
import re
from typing import List, Union

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def sanitize_metric_name(name: str, *, namespace: str = "repro") -> str:
    """Map a dotted registry path to a legal Prometheus metric name.

    ``memctrl.reads_completed`` → ``repro_memctrl_reads_completed``.
    Any character outside ``[a-zA-Z0-9_:]`` becomes ``_``.
    """
    flat = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if namespace:
        flat = f"{namespace}_{flat}"
    if _INVALID_FIRST.match(flat):
        flat = "_" + flat
    return flat


def _format_number(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def _render_histogram(flat: str, value: dict, out: List[str]) -> None:
    out.append(f"# TYPE {flat} histogram")
    cumulative = 0
    for bound, count in zip(value["bounds"], value["counts"]):
        cumulative += count
        out.append(
            f'{flat}_bucket{{le="{_format_number(float(bound))}"}} {cumulative}'
        )
    out.append(f'{flat}_bucket{{le="+Inf"}} {value["count"]}')
    out.append(f"{flat}_sum {_format_number(value['sum'])}")
    out.append(f"{flat}_count {value['count']}")


def render_exposition(registry, *, namespace: str = "repro") -> str:
    """Render every metric in *registry* as Prometheus exposition text.

    Names are sorted (the registry's natural order), so two snapshots of
    the same state are byte-identical — diffs and golden tests work.
    """
    out: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        flat = sanitize_metric_name(name, namespace=namespace)
        value = metric.value()
        if isinstance(value, dict):
            _render_histogram(flat, value, out)
            continue
        kind = "counter" if metric.kind == "counter" else "gauge"
        out.append(f"# TYPE {flat} {kind}")
        out.append(f"{flat} {_format_number(value)}")
    return "\n".join(out) + "\n" if out else ""
