"""Per-process crash flight recorder.

A bounded ring of the most recent log/event records, dumped atomically
when the process dies in a way post-mortems otherwise can't explain:
an unhandled exception (``sys.excepthook``) or a SIGTERM (the
coordinator killing a timed-out worker). Fault-injected hard crashes
(``os._exit``) bypass every Python teardown hook, so the fabric worker
also dumps *explicitly* just before pulling such a trigger — the
recorder provides :meth:`dump` for exactly that call site.

The dump is written with :func:`repro.utils.persist.save_json` (atomic
tmp + rename), so a recorder file is always whole, and its path is
deterministic (:func:`recorder_path_for`) so the *coordinator* can link
a dead worker's recorder into the job's failure record without any
channel from the dying process.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, Optional, Union

from repro.utils.persist import save_json

__all__ = ["FlightRecorder", "recorder_path_for"]


def recorder_path_for(
    directory: Union[str, Path], worker: int, pid: int
) -> Path:
    """Deterministic recorder path for a worker process.

    Both sides derive it independently: the worker writes here, and the
    coordinator — which knows the dead process's worker id and pid —
    looks here when settling a crash or timeout.
    """
    return Path(directory) / f"flight-w{worker:02d}-p{pid}.json"


class FlightRecorder:
    """Bounded in-memory ring of recent records with atomic dump.

    Args:
        path: Destination for :meth:`dump` output.
        capacity: Ring size; the oldest records are evicted (and
            counted as dropped) once full.
        clock: Wall-clock source for record/dump stamps, injectable
            for tests.
        context: Static fields (worker id, sweep id) included in every
            dump header.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        capacity: int = 256,
        clock: Callable[[], float] = time.time,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = Path(path)
        self.capacity = capacity
        self.context = dict(context or {})
        self.records_seen = 0
        self.records_dropped = 0
        self.dumps_written = 0
        self.dump_failures = 0
        self._clock = clock
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def register_metrics(self, registry, prefix: str = "obs.flight") -> None:
        """Publish the recorder's counters into a telemetry registry."""
        registry.gauge(f"{prefix}.records_seen", lambda: self.records_seen)
        registry.gauge(f"{prefix}.records_dropped", lambda: self.records_dropped)
        registry.gauge(f"{prefix}.dumps_written", lambda: self.dumps_written)

    # ------------------------------------------------------------------
    def record(self, kind: str, detail: Optional[Dict[str, Any]] = None) -> None:
        """Append one record to the ring (cheap: no I/O)."""
        entry = {"stamp": self._clock(), "kind": kind}
        if detail:
            entry.update(detail)
        with self._lock:
            self.records_seen += 1
            if len(self._ring) == self.capacity:
                self.records_dropped += 1
            self._ring.append(entry)

    def mirror(self, log_record: Dict[str, Any]) -> None:
        """Adapter for :class:`~repro.obs.live.slog.StructuredLogger`'s
        ``mirror`` hook: tap every structured log line into the ring."""
        self.record("log", dict(log_record))

    # ------------------------------------------------------------------
    def dump(self, reason: str) -> Path:
        """Atomically write the ring (plus header) to :attr:`path`."""
        with self._lock:
            records = list(self._ring)
            payload = {
                "reason": reason,
                "pid": os.getpid(),
                "dumped_unix_s": self._clock(),
                "capacity": self.capacity,
                "records_seen": self.records_seen,
                "records_dropped": self.records_dropped,
                "context": dict(self.context),
                "records": records,
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        save_json(self.path, payload)
        self.dumps_written += 1
        return self.path

    def try_dump(self, reason: str) -> Optional[Path]:
        """:meth:`dump`, but swallowing I/O failure (crash paths must
        not die again in their own post-mortem)."""
        try:
            return self.dump(reason)
        except Exception:
            # A failing dump in a crash path must not mask the crash.
            self.dump_failures += 1
            return None

    # ------------------------------------------------------------------
    def install(self) -> "FlightRecorder":
        """Hook ``sys.excepthook`` and SIGTERM to dump before dying.

        The previous excepthook still runs (tracebacks stay visible);
        SIGTERM is re-raised with the default disposition after the
        dump, preserving the kill's observable exit status.
        """
        previous_hook = sys.excepthook

        def _hook(exc_type, exc, tb) -> None:
            self.record(
                "exception",
                {"type": exc_type.__name__, "message": str(exc)},
            )
            self.try_dump("unhandled-exception")
            previous_hook(exc_type, exc, tb)

        sys.excepthook = _hook

        def _on_term(signum, frame) -> None:
            self.record("signal", {"signal": int(signum)})
            self.try_dump("sigterm")
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGTERM)

        try:
            signal.signal(signal.SIGTERM, _on_term)
        except ValueError:
            # Not the main thread: excepthook coverage only.
            self.record("signal-handler-skipped", {"signal": "SIGTERM"})
        return self
