"""Per-worker heartbeats and the fleet-level aggregate view.

Fabric workers periodically publish a heartbeat record — pid, current
job, attempt, jobs done, cumulative busy time and simulated events, RSS
— over the existing one-way event channel (event name
:data:`HEARTBEAT_EVENT`). The coordinator feeds them into a
:class:`FleetStatus`, which keeps the latest record per worker and
derives staleness from an injected monotonic clock: a worker whose last
beat is older than ``stale_after_s`` is flagged, which is how a hung or
silently-dead worker becomes visible *before* its lease expires.

Heartbeats are advisory telemetry: they never influence scheduling or
results (bit-identity with observability off is an acceptance test).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "HEARTBEAT_EVENT",
    "FleetStatus",
    "make_heartbeat",
    "read_rss_bytes",
]

#: Event-channel name heartbeat records travel under. The coordinator's
#: dispatcher routes it to :meth:`FleetStatus.observe`; foreign
#: consumers (``serve`` watchers) can filter on it.
HEARTBEAT_EVENT = "fabric.heartbeat"


def read_rss_bytes() -> int:
    """Resident set size of the calling process, in bytes (0 if unknown).

    Prefers ``/proc/self/status`` (current RSS); falls back to
    ``ru_maxrss`` (peak RSS) where /proc is absent.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except (ImportError, OSError, ValueError):
        return 0


def make_heartbeat(
    *,
    worker: int,
    pid: Optional[int] = None,
    job: Optional[str] = None,
    attempt: int = 0,
    jobs_done: int = 0,
    busy_s: float = 0.0,
    sim_events: int = 0,
    rss_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    """Build one heartbeat record (the wire format, a plain dict).

    ``job`` is ``"workload/scheme"`` while a claim is held, ``None``
    when idle. ``busy_s`` and ``sim_events`` are cumulative for the
    worker's lifetime, so the aggregate throughput
    ``sim_events / busy_s`` is robust to missed beats.
    """
    return {
        "worker": worker,
        "pid": pid if pid is not None else os.getpid(),
        "job": job,
        "attempt": attempt,
        "jobs_done": jobs_done,
        "busy_s": busy_s,
        "sim_events": sim_events,
        "rss_bytes": rss_bytes if rss_bytes is not None else read_rss_bytes(),
    }


class FleetStatus:
    """Latest-heartbeat-per-worker aggregate with stale detection.

    Args:
        stale_after_s: Age beyond which a worker is flagged stale.
        clock: Monotonic clock, injectable so tests expire workers
            deterministically (the RL011 discipline: no wall-clock
            reads in staleness logic).

    Thread-safe: the coordinator thread observes while server request
    threads read ``as_dict()``.
    """

    def __init__(
        self,
        *,
        stale_after_s: float = 15.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stale_after_s = stale_after_s
        self.heartbeats_seen = 0
        self._clock = clock
        self._lock = threading.Lock()
        self._workers: Dict[int, Dict[str, Any]] = {}
        self._last_seen: Dict[int, float] = {}

    def register_metrics(self, registry, prefix: str = "fleet") -> None:
        """Publish fleet aggregates into a telemetry registry."""
        registry.gauge(f"{prefix}.heartbeats_seen", lambda: self.heartbeats_seen)
        for key in (
            "workers",
            "stale_workers",
            "jobs_done",
            "busy_s",
            "sim_events",
            "sim_events_per_sec",
            "rss_bytes",
        ):
            registry.gauge(
                f"{prefix}.{key}", lambda k=key: float(self.totals()[k])
            )

    # ------------------------------------------------------------------
    def observe(self, args: Dict[str, Any]) -> None:
        """Record one heartbeat (the coordinator's dispatch target)."""
        worker = int(args.get("worker", -1))
        with self._lock:
            self.heartbeats_seen += 1
            self._workers[worker] = dict(args)
            self._last_seen[worker] = self._clock()

    def forget(self, worker: int) -> None:
        """Drop a worker entirely (e.g. a respawned slot's old pid)."""
        with self._lock:
            self._workers.pop(worker, None)
            self._last_seen.pop(worker, None)

    def mark_done(self, worker: int) -> None:
        """Flag a cleanly-exited worker: kept in the table (its totals
        still count) but never reported stale."""
        with self._lock:
            if worker in self._workers:
                self._workers[worker]["exited"] = True

    def clear(self) -> None:
        """Forget every worker (a new sweep starts a fresh fleet)."""
        with self._lock:
            self._workers.clear()
            self._last_seen.clear()

    # ------------------------------------------------------------------
    def workers(self) -> List[Dict[str, Any]]:
        """Latest record per worker, annotated with ``age_s``/``stale``."""
        with self._lock:
            snap = self._clock()
            out = []
            for worker in sorted(self._workers):
                record = dict(self._workers[worker])
                age_s = max(snap - self._last_seen[worker], 0.0)
                record["age_s"] = age_s
                record["stale"] = (
                    age_s > self.stale_after_s and not record.get("exited")
                )
                out.append(record)
            return out

    def totals(self) -> Dict[str, Any]:
        """Fleet-wide aggregates derived from the latest records."""
        records = self.workers()
        busy_s = sum(r.get("busy_s", 0.0) for r in records)
        sim_events = sum(r.get("sim_events", 0) for r in records)
        return {
            "workers": len(records),
            "stale_workers": sum(1 for r in records if r["stale"]),
            "jobs_done": sum(r.get("jobs_done", 0) for r in records),
            "busy_s": busy_s,
            "sim_events": sim_events,
            "sim_events_per_sec": (sim_events / busy_s) if busy_s > 0 else 0.0,
            "rss_bytes": sum(r.get("rss_bytes", 0) for r in records),
        }

    def as_dict(self) -> Dict[str, Any]:
        """Wire/JSON form: workers, totals, and the staleness horizon."""
        return {
            "stale_after_s": self.stale_after_s,
            "workers": self.workers(),
            "totals": self.totals(),
        }
