"""``repro-rrm top``: a live TTY view of a running fleet.

Polls a ``repro-rrm serve`` daemon for its :class:`FleetStatus` snapshot
and sweep table, and redraws a frame per poll: one row per worker (pid,
claimed job, attempt, jobs done, events/sec, RSS, heartbeat age) plus
fleet totals and per-sweep progress. Stale workers — heartbeat older
than the server's staleness horizon — are flagged ``STALE`` so a hung
worker is visible long before its lease expires.

Rendering is split into pure functions over plain dicts (the wire
payloads) so frames are golden-testable without sockets; the poll loop
takes injectable ``sleep`` and a frame bound for the same reason.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

from repro.obs.progress import _format_count

__all__ = ["format_fleet_lines", "format_sweep_lines", "render_frame", "run_top"]


def _format_bytes(n: float) -> str:
    for bound, suffix in ((1 << 30, "GB"), (1 << 20, "MB"), (1 << 10, "kB")):
        if n >= bound:
            return f"{n / bound:.1f}{suffix}"
    return f"{n:.0f}B"


def _worker_rate(record: Dict[str, Any]) -> float:
    busy_s = record.get("busy_s", 0.0)
    return record.get("sim_events", 0) / busy_s if busy_s > 0 else 0.0


def format_fleet_lines(fleet: Dict[str, Any]) -> List[str]:
    """Worker table + totals line from a ``fleet`` wire payload."""
    totals = fleet.get("totals", {})
    workers = fleet.get("workers", [])
    lines = [
        "fleet: {n} worker(s), {stale} stale | jobs done {jobs} | "
        "throughput {rate} ev/s | rss {rss}".format(
            n=totals.get("workers", 0),
            stale=totals.get("stale_workers", 0),
            jobs=totals.get("jobs_done", 0),
            rate=_format_count(totals.get("sim_events_per_sec", 0.0)),
            rss=_format_bytes(totals.get("rss_bytes", 0)),
        )
    ]
    if not workers:
        lines.append("  (no worker heartbeats yet)")
        return lines
    header = (
        f"  {'wrk':>3}  {'pid':>7}  {'job':<28} {'att':>3}  "
        f"{'jobs':>4}  {'ev/s':>8}  {'rss':>8}  {'age':>6}  "
    )
    lines.append(header.rstrip())
    for record in workers:
        job = record.get("job") or "-"
        if len(job) > 28:
            job = job[:25] + "..."
        flag = "STALE" if record.get("stale") else ""
        lines.append(
            f"  {record.get('worker', '?'):>3}  {record.get('pid', '?'):>7}  "
            f"{job:<28} {record.get('attempt', 0):>3}  "
            f"{record.get('jobs_done', 0):>4}  "
            f"{_format_count(_worker_rate(record)):>8}  "
            f"{_format_bytes(record.get('rss_bytes', 0)):>8}  "
            f"{record.get('age_s', 0.0):>5.1f}s  {flag}".rstrip()
        )
    return lines


def format_sweep_lines(sweeps: List[Dict[str, Any]]) -> List[str]:
    """Per-sweep progress lines from a ``status`` wire payload."""
    if not sweeps:
        return ["sweeps: none submitted"]
    lines = ["sweeps:"]
    for summary in sweeps:
        jobs = summary.get("jobs", 0)
        completed = summary.get("completed", 0)
        failed = summary.get("failed", 0)
        line = (
            f"  {summary.get('sweep', '?'):<12} {summary.get('state', '?'):<9} "
            f"{completed}/{jobs} done"
        )
        if failed:
            line += f"  {failed} FAILED"
        if summary.get("error"):
            line += f"  error: {summary['error']}"
        lines.append(line)
    return lines


def render_frame(
    fleet: Dict[str, Any], sweeps: List[Dict[str, Any]]
) -> str:
    """One full ``top`` frame (no trailing newline)."""
    return "\n".join(format_fleet_lines(fleet) + format_sweep_lines(sweeps))


def run_top(
    address: str,
    *,
    interval_s: float = 2.0,
    once: bool = False,
    stream=None,
    sleep=time.sleep,
    max_frames: Optional[int] = None,
) -> int:
    """Poll *address* and redraw frames until interrupted.

    Returns a process exit code (0 on clean exit / Ctrl-C). ``once``
    prints a single frame — the scriptable mode CI uses.
    """
    from repro.fabric.client import FabricClient

    out = stream if stream is not None else sys.stdout
    try:
        tty = bool(out.isatty())
    except (AttributeError, ValueError):
        tty = False
    client = FabricClient(address, timeout_s=10.0)
    frames = 0
    try:
        while True:
            fleet = client.fleet()
            sweeps = client.status()
            frame = render_frame(fleet, sweeps)
            if tty and frames:
                out.write("\x1b[2J\x1b[H")
            out.write(frame + "\n")
            if not tty and not once:
                out.write("---\n")
            out.flush()
            frames += 1
            if once or (max_frames is not None and frames >= max_frames):
                return 0
            sleep(interval_s)
    except KeyboardInterrupt:
        return 0
