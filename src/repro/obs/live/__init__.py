"""Live operational observability for a running fleet.

Everything under ``repro.obs.live`` watches the system *while it runs*,
in contrast to the post-hoc ledger/gate/dashboard layers:

- :mod:`~repro.obs.live.exposition` — Prometheus-style text rendering of
  a :class:`~repro.telemetry.registry.MetricRegistry`;
- :mod:`~repro.obs.live.slog` — structured JSONL logging with bound
  correlation fields (sweep → job → worker → attempt);
- :mod:`~repro.obs.live.heartbeat` — per-worker heartbeat records and
  the :class:`FleetStatus` aggregate with stale-worker detection;
- :mod:`~repro.obs.live.flightrecorder` — per-process bounded ring of
  recent records, dumped atomically on crash or SIGTERM;
- :mod:`~repro.obs.live.httpmetrics` — minimal plain-HTTP ``/metrics``
  endpoint for scraping;
- :mod:`~repro.obs.live.top` — the ``repro-rrm top`` TTY fleet view
  (imported directly by the CLI to keep fabric imports lazy).

None of these touch the simulation path: observing a run must leave its
:class:`~repro.sim.metrics.SimResult` bit-identical.
"""

from repro.obs.live.exposition import render_exposition, sanitize_metric_name
from repro.obs.live.flightrecorder import FlightRecorder, recorder_path_for
from repro.obs.live.heartbeat import (
    HEARTBEAT_EVENT,
    FleetStatus,
    make_heartbeat,
    read_rss_bytes,
)
from repro.obs.live.slog import StructuredLogger

__all__ = [
    "FleetStatus",
    "FlightRecorder",
    "HEARTBEAT_EVENT",
    "StructuredLogger",
    "make_heartbeat",
    "read_rss_bytes",
    "recorder_path_for",
    "render_exposition",
    "sanitize_metric_name",
]
