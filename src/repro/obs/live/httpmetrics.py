"""Minimal plain-HTTP ``/metrics`` endpoint.

Just enough HTTP/1.0 to satisfy a scraper: one acceptor thread, one
request served at a time (scrapes are rare and small), ``GET /metrics``
answered with the Prometheus text rendered by a caller-supplied
callback, anything else with 404. No framework, no dependency — the
whole point is that ``curl localhost:PORT/metrics`` works against a
running ``repro-rrm serve`` with nothing installed.

The render callback is invoked per request, so the text always reflects
live state; it must therefore be cheap and thread-safe (registry
snapshots are pure reads, so the standard callback qualifies).
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["MetricsHTTPServer"]

_MAX_REQUEST_BYTES = 8192
_RECV_TIMEOUT_S = 5.0


def _parse_http_address(address: str) -> Tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ConfigError(
            f"http metrics address must be HOST:PORT, got {address!r}"
        )
    return host or "127.0.0.1", int(port)


class MetricsHTTPServer:
    """Single-threaded HTTP exposition server.

    Args:
        address: ``HOST:PORT`` to bind (port 0 picks a free port; the
            bound port is available as :attr:`port` after ``start``).
        render: Zero-argument callable returning the exposition text.
    """

    def __init__(self, address: str, render: Callable[[], str]) -> None:
        self._host, self._port = _parse_http_address(address)
        self._render = render
        self.requests_served = 0
        self.request_errors = 0
        self.port: Optional[int] = None
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    def register_metrics(self, registry, prefix: str = "obs.http") -> None:
        """Publish the endpoint's counters into a telemetry registry."""
        registry.gauge(f"{prefix}.requests_served", lambda: self.requests_served)
        registry.gauge(f"{prefix}.request_errors", lambda: self.request_errors)

    # ------------------------------------------------------------------
    def start(self) -> "MetricsHTTPServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(8)
        self._sock = sock
        self.port = sock.getsockname()[1]
        self._thread = threading.Thread(
            target=self._accept_loop, name="metrics-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                if self._stopping.is_set():
                    return
                self.request_errors += 1
                continue
            try:
                self._serve_one(conn)
                self.requests_served += 1
            except Exception:
                self.request_errors += 1
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_one(self, conn: socket.socket) -> None:
        conn.settimeout(_RECV_TIMEOUT_S)
        request = b""
        while b"\r\n" not in request and len(request) < _MAX_REQUEST_BYTES:
            chunk = conn.recv(1024)
            if not chunk:
                break
            request += chunk
        line = request.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = line.split()
        if len(parts) >= 2 and parts[0] == "GET" and parts[1] in (
            "/metrics",
            "/metrics/",
        ):
            body = self._render().encode("utf-8")
            head = (
                "HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            )
        else:
            body = b"not found\n"
            head = (
                "HTTP/1.0 404 Not Found\r\n"
                "Content-Type: text/plain\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            )
        conn.sendall(head.encode("latin-1") + body)
