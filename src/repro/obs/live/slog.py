"""Structured JSONL logging with bound correlation fields.

One log record per line, one JSON object per record, always carrying the
correlation chain that threads the fabric together::

    {"stamp": 1719403055.2, "level": "info", "event": "job.claimed",
     "sweep": "sweep-001", "job": "stress_write/rrm", "worker": 2,
     "attempt": 1}

A :class:`StructuredLogger` is cheap to fork: :meth:`bind` returns a
child that shares the parent's sink (stream, lock, counters) and merges
in extra fields, so the supervisor binds ``sweep``, hands workers a
logger bound to ``worker``, and each attempt binds ``job``/``attempt`` —
every line downstream carries the whole chain without any call site
threading ids by hand.

Emission is serialized under the sink's lock (multiple threads of one
process may share a logger; separate *processes* get separate loggers
writing to their own streams or inherit line-buffered stderr, where the
kernel keeps whole ``write()`` calls intact for line-sized payloads).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, Optional

__all__ = ["StructuredLogger", "parse_log_line"]


class _LogSink:
    """Shared emission state behind one or more bound loggers."""

    def __init__(
        self,
        stream,
        *,
        clock: Callable[[], float] = time.time,
        mirror: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.stream = stream
        self.mirror = mirror
        self.records_emitted = 0
        self.records_dropped = 0
        self._clock = clock
        self._lock = threading.Lock()

    def register_metrics(self, registry, prefix: str = "obs.log") -> None:
        """Publish the sink's counters into a telemetry registry."""
        registry.gauge(f"{prefix}.records_emitted", lambda: self.records_emitted)
        registry.gauge(f"{prefix}.records_dropped", lambda: self.records_dropped)

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
                self.records_emitted += 1
            except (OSError, ValueError):
                # Stream gone (broken pipe, closed stderr at teardown):
                # logging must never take the worker down with it.
                self.records_dropped += 1
        if self.mirror is not None:
            self.mirror(record)


class StructuredLogger:
    """A logger carrying bound correlation fields.

    Args:
        stream: Destination for JSON lines (e.g. ``sys.stderr`` or an
            open log file). Required for the root logger.
        fields: Initial bound fields (``sweep=...``, ``worker=...``).
        clock: Wall-clock source for the ``stamp`` field, injectable
            for tests.
        mirror: Optional callback invoked with every record *after*
            emission — how the flight recorder taps the log stream.
    """

    def __init__(
        self,
        stream=None,
        *,
        fields: Optional[Dict[str, Any]] = None,
        clock: Callable[[], float] = time.time,
        mirror: Optional[Callable[[dict], None]] = None,
        _sink: Optional[_LogSink] = None,
    ) -> None:
        if _sink is not None:
            self._sink = _sink
        else:
            if stream is None:
                import sys

                stream = sys.stderr
            self._sink = _LogSink(stream, clock=clock, mirror=mirror)
        self.fields: Dict[str, Any] = dict(fields or {})

    # ------------------------------------------------------------------
    @property
    def records_emitted(self) -> int:
        return self._sink.records_emitted

    def register_metrics(self, registry, prefix: str = "obs.log") -> None:
        """Publish the shared sink's counters into a telemetry registry."""
        self._sink.register_metrics(registry, prefix)

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger sharing this sink with *fields* merged in."""
        merged = dict(self.fields)
        merged.update(fields)
        return StructuredLogger(fields=merged, _sink=self._sink)

    def event(self, name: str, level: str = "info", **fields: Any) -> dict:
        """Emit one record; returns it (tests assert on the dict)."""
        record: Dict[str, Any] = {
            "stamp": self._sink._clock(),
            "level": level,
            "event": name,
        }
        record.update(self.fields)
        record.update(fields)
        self._sink.emit(record)
        return record

    def error(self, name: str, **fields: Any) -> dict:
        return self.event(name, level="error", **fields)

    def warn(self, name: str, **fields: Any) -> dict:
        return self.event(name, level="warn", **fields)


def parse_log_line(line: str) -> Optional[dict]:
    """Parse one JSONL log line; ``None`` for non-JSON lines.

    Tolerant by design: log streams get interleaved with foreign output
    (progress lines, tracebacks), and a reader that crashes on those is
    worse than one that skips them.
    """
    line = line.strip()
    if not line.startswith("{"):
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None
