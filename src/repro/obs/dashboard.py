"""Offline HTML dashboard: metric trends and gate verdicts, one file.

:func:`render_dashboard` turns ledger entries (and optionally a gate
report) into a **self-contained** HTML page — inline CSS, inline SVG
sparklines, zero external requests — so it can be archived as a CI
artifact and opened anywhere, including air-gapped review machines.

Visual conventions follow the repo's chart rules: single-series
sparklines in the series-1 blue (no legend needed for one series),
recessive chrome, dark mode as a *selected* palette via
``prefers-color-scheme`` rather than an automatic inversion, and status
colors that never carry meaning alone — every verdict chip pairs its
color with the verdict word.
"""

from __future__ import annotations

import html
import re
from typing import Dict, List, Optional, Sequence

from repro.obs.ledger import LedgerEntry, entries_by_name
from repro.profiling.flamegraph import SUBSYSTEM_COLORS

#: Metrics plotted when the caller doesn't choose, in display order.
DEFAULT_DASHBOARD_METRICS = (
    "ipc",
    "lifetime_years",
    "wall_time_s",
    "sim_events_per_sec",
    "avg_read_latency_ns",
    "avg_write_latency_ns",
    "refresh_writes",
    "retention_violations",
    "row_hit_rate",
    "attr_read_refresh_share",
)

#: Blocker-class palette for the attribution bars (fixed, never themed,
#: like the verdict chips). Order is render order within each bar; every
#: color is paired with its class word in the legend.
_BLAME_CLASSES = (
    ("read", "#2a78d6"),
    ("write_fast", "#0ca30c"),
    ("write_slow", "#12a594"),
    ("write_other", "#7d66d3"),
    ("rrm_fast_refresh", "#d03b3b"),
    ("rrm_slow_refresh", "#ec835a"),
    ("scheduler", "#898781"),
)

_BANK_BLAME_RE = re.compile(r"attr_bank(\d+)_blame_([a-z_]+)$")

#: Status palette (fixed, never themed) + verdict word pairing. The word
#: is rendered next to the chip, so color never carries meaning alone.
_VERDICT_STATUS = {
    "regression": ("#d03b3b", "regression"),
    "missing": ("#ec835a", "missing"),
    "incomparable": ("#ec835a", "incomparable"),
    "new": ("#fab219", "new"),
    "improvement": ("#0ca30c", "improvement"),
    "ok": ("#0ca30c", "ok"),
    "info": ("#898781", "info"),
}

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --border: rgba(255, 255, 255, 0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 24px;
  background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.meta { color: var(--text-secondary); margin-bottom: 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 14px; }
.tile {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 10px 14px;
  min-width: 110px;
}
.tile .n { font-size: 22px; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
.chip {
  display: inline-block;
  width: 9px; height: 9px;
  border-radius: 50%;
  margin-right: 6px;
}
table { border-collapse: collapse; width: 100%; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; }
th, td { text-align: left; padding: 6px 10px; border-top: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; border-top: none; }
td.num { font-variant-numeric: tabular-nums; }
.cards { display: grid; grid-template-columns: repeat(auto-fill, minmax(250px, 1fr));
  gap: 10px; }
.card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 10px 12px;
}
.card .metric { color: var(--text-secondary); font-size: 12px; }
.card .value { font-size: 20px; }
.card .delta { font-size: 12px; color: var(--text-secondary); }
.spark { display: block; margin-top: 6px; }
.empty { color: var(--muted); }
footer { margin-top: 26px; color: var(--muted); font-size: 12px; }
"""


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.4g}"


def _sparkline(
    values: Sequence[float], *, width: int = 226, height: int = 44
) -> str:
    """One inline SVG polyline for one metric's history (series-1 blue)."""
    n = len(values)
    if n == 0:
        return ""
    pad = 3.0
    lo, hi = min(values), max(values)
    span = hi - lo
    points = []
    for i, v in enumerate(values):
        x = pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        # A flat series draws mid-height rather than hugging an edge.
        fy = (v - lo) / span if span else 0.5
        y = height - pad - (height - 2 * pad) * fy
        points.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = points[-1].split(",")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend of {n} runs">'
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="var(--baseline)" stroke-width="1"/>'
        f'<polyline points="{" ".join(points)}" fill="none" '
        f'stroke="var(--series-1)" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="3" fill="var(--series-1)"/>'
        f"</svg>"
    )


def _pick_metrics(
    entries: Sequence[LedgerEntry], metrics: Optional[Sequence[str]]
) -> List[str]:
    if metrics:
        return list(metrics)
    available = set()
    for entry in entries:
        available.update(entry.metrics)
    picked = [m for m in DEFAULT_DASHBOARD_METRICS if m in available]
    if picked:
        return picked
    return sorted(available)[:8]


def _verdict_chip(verdict: str) -> str:
    color, word = _VERDICT_STATUS.get(verdict, ("#898781", verdict))
    return (
        f'<span class="chip" style="background:{color}"></span>'
        f"{html.escape(word)}"
    )


def _gate_section(gate_report) -> List[str]:
    out = ['<h2>Gate verdicts</h2>', '<div class="tiles">']
    counts = gate_report.counts
    for verdict, n in sorted(
        counts.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        out.append(
            f'<div class="tile"><div class="n">{n}</div>'
            f'<div class="k">{_verdict_chip(verdict)}</div></div>'
        )
    if not counts:
        out.append('<div class="tile"><div class="k">nothing compared</div></div>')
    out.append("</div>")

    flagged = [
        v for v in gate_report.verdicts if v.verdict not in ("ok", "info")
    ]
    if flagged:
        out.append(
            "<table><tr><th>verdict</th><th>run</th><th>metric</th>"
            "<th>baseline</th><th>current</th><th>delta</th></tr>"
        )
        for v in flagged:
            delta = f"{v.delta:+.2%}" if v.delta is not None else "-"
            base = (
                _fmt_value(v.baseline_mean)
                if v.baseline_mean is not None
                else "-"
            )
            cur = (
                _fmt_value(v.current_mean)
                if v.current_mean is not None
                else "-"
            )
            out.append(
                f"<tr><td>{_verdict_chip(v.verdict)}</td>"
                f"<td>{html.escape(v.name)}</td>"
                f"<td>{html.escape(v.metric)}</td>"
                f'<td class="num">{base}</td>'
                f'<td class="num">{cur}</td>'
                f'<td class="num">{delta}</td></tr>'
            )
        out.append("</table>")
    else:
        out.append('<p class="empty">No verdicts outside the guard bands.</p>')
    return out


def _bank_blame(entry: LedgerEntry) -> Dict[int, Dict[str, float]]:
    """Per-bank blamed-wait totals parsed from ``attr_bank*`` metrics."""
    banks: Dict[int, Dict[str, float]] = {}
    for key, value in entry.metrics.items():
        match = _BANK_BLAME_RE.match(key)
        if match and value > 0:
            banks.setdefault(int(match.group(1)), {})[match.group(2)] = value
    return banks


def _blame_bars(banks: Dict[int, Dict[str, float]]) -> str:
    """One inline SVG of horizontal stacked bars, one per bank.

    Bars share a scale (the busiest bank spans the full width), so bank
    imbalance reads directly as bar length.
    """
    width, label_w, bar_h, gap, pad = 440, 58, 14, 6, 3
    scale_max = max(sum(c.values()) for c in banks.values())
    if scale_max <= 0:
        return ""
    height = pad * 2 + len(banks) * (bar_h + gap) - gap
    parts = [
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="blamed wait time per bank by blocker class">'
    ]
    span = width - label_w - pad
    for row, bank in enumerate(sorted(banks)):
        y = pad + row * (bar_h + gap)
        parts.append(
            f'<text x="{label_w - 6}" y="{y + bar_h - 3}" '
            f'text-anchor="end" font-size="11" '
            f'fill="var(--text-secondary)">b{bank}</text>'
        )
        x = float(label_w)
        for cause, color in _BLAME_CLASSES:
            value = banks[bank].get(cause, 0.0)
            if value <= 0:
                continue
            w = span * value / scale_max
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(w, 0.5):.1f}" '
                f'height="{bar_h}" fill="{color}"/>'
            )
            x += w
    parts.append("</svg>")
    return "".join(parts)


def _attribution_sections(
    grouped: Dict[str, List[LedgerEntry]]
) -> List[str]:
    """Stacked per-bank blame bars for runs that recorded attribution."""
    charts: List[str] = []
    used_causes: set = set()
    for name, group in sorted(grouped.items()):
        banks = _bank_blame(group[-1])  # latest entry per run name
        if not banks:
            continue
        share = group[-1].metrics.get("attr_read_refresh_share")
        share_txt = (
            f"read refresh share {share:.2%}" if share is not None else ""
        )
        for causes in banks.values():
            used_causes.update(causes)
        charts.append(
            f'<div class="card"><div class="metric">{html.escape(name)}'
            f"</div>"
            + (f'<div class="delta">{share_txt}</div>' if share_txt else "")
            + _blame_bars(banks)
            + "</div>"
        )
    if not charts:
        return []
    legend = " ".join(
        f'<span class="chip" style="background:{color}"></span>'
        f"{html.escape(cause)}"
        for cause, color in _BLAME_CLASSES
        if cause in used_causes
    )
    return [
        "<h2>Latency attribution: blamed wait per bank</h2>",
        f'<div class="meta">{legend}</div>',
        f'<div class="cards">{"".join(charts)}</div>',
    ]


_PROF_SHARE_RE = re.compile(r"prof_([a-z_]+)_self_share$")


def _profile_shares(entry: LedgerEntry) -> Dict[str, float]:
    """Subsystem self-time shares parsed from ``prof_*_self_share``."""
    shares: Dict[str, float] = {}
    for key, value in entry.metrics.items():
        match = _PROF_SHARE_RE.match(key)
        if match and value > 0:
            shares[match.group(1)] = value
    return shares


def _share_bar(shares: Dict[str, float]) -> str:
    """One horizontal stacked bar of host self-time shares."""
    width, bar_h, pad = 440, 16, 3
    total = sum(shares.values())
    if total <= 0:
        return ""
    parts = [
        f'<svg class="spark" width="{width}" height="{bar_h + 2 * pad}" '
        f'viewBox="0 0 {width} {bar_h + 2 * pad}" role="img" '
        f'aria-label="host self-time share by subsystem">'
    ]
    x = float(pad)
    span = width - 2 * pad
    for name in sorted(shares, key=lambda k: (-shares[k], k)):
        w = span * shares[name] / total
        color = SUBSYSTEM_COLORS.get(name, "#898781")
        parts.append(
            f'<rect x="{x:.1f}" y="{pad}" width="{max(w, 0.5):.1f}" '
            f'height="{bar_h}" fill="{color}">'
            f"<title>{html.escape(name)} {shares[name]:.1%}</title></rect>"
        )
        x += w
    parts.append("</svg>")
    return "".join(parts)


def _profile_sections(grouped: Dict[str, List[LedgerEntry]]) -> List[str]:
    """"Where the time goes": host self-time shares + memory census.

    One card per run name that recorded ``prof_*`` metrics (latest entry
    wins), sharing the flamegraph's fixed subsystem palette; the legend
    pairs every color with its subsystem word.
    """
    cards: List[str] = []
    used: set = set()
    for name, group in sorted(grouped.items()):
        entry = group[-1]
        shares = _profile_shares(entry)
        if not shares:
            continue
        used.update(shares)
        bits: List[str] = []
        engine_share = shares.get("engine")
        if engine_share is not None:
            bits.append(f"engine self {engine_share:.1%}")
        per_region = entry.metrics.get("mem_bytes_per_touched_region")
        if per_region:
            bits.append(f"{per_region:,.0f} B/touched region")
        mem_total = entry.metrics.get("mem_bytes_total")
        if mem_total:
            bits.append(f"{_fmt_value(mem_total)} B live")
        cards.append(
            f'<div class="card"><div class="metric">{html.escape(name)}'
            "</div>"
            + (
                f'<div class="delta">{html.escape(" · ".join(bits))}</div>'
                if bits
                else ""
            )
            + _share_bar(shares)
            + "</div>"
        )
    if not cards:
        return []
    legend = " ".join(
        f'<span class="chip" style="background:'
        f'{SUBSYSTEM_COLORS.get(name, "#898781")}"></span>'
        f"{html.escape(name)}"
        for name in sorted(used)
    )
    return [
        "<h2>Where the time goes: host self-time by subsystem</h2>",
        f'<div class="meta">{legend}</div>',
        f'<div class="cards">{"".join(cards)}</div>',
    ]


def _throughput_section(
    entries: Sequence[LedgerEntry], max_points: int
) -> List[str]:
    """Ledger-wide simulator throughput trend (``sim_events_per_sec``).

    One chronological series across *all* entries, so a host slowdown or
    a simulator-speed regression shows up as a fleet-wide dip rather
    than being diluted across per-run-name cards.
    """
    series = [
        e.metrics["sim_events_per_sec"]
        for e in entries
        if e.metrics.get("sim_events_per_sec")
    ]
    if len(series) < 2:
        return []
    series = series[-max_points:]
    latest = series[-1]
    lo, hi = min(series), max(series)
    return [
        "<h2>Simulator throughput</h2>",
        '<div class="cards">'
        '<div class="card"><div class="metric">sim_events_per_sec '
        "(all runs, chronological)</div>"
        f'<div class="value">{_fmt_value(latest)}</div>'
        f'<div class="delta">{len(series)} runs &middot; '
        f"min {_fmt_value(lo)} &middot; max {_fmt_value(hi)}</div>"
        f"{_sparkline(series)}</div></div>",
    ]


def _trend_sections(
    grouped: Dict[str, List[LedgerEntry]],
    metrics: List[str],
    max_points: int,
) -> List[str]:
    out: List[str] = []
    for name, group in sorted(grouped.items()):
        out.append(f"<h2>{html.escape(name)}</h2>")
        cards: List[str] = []
        for metric in metrics:
            series = [e.metrics[metric] for e in group if metric in e.metrics]
            if not series:
                continue
            series = series[-max_points:]
            latest = series[-1]
            delta_txt = f"{len(series)} run" + ("s" if len(series) != 1 else "")
            if len(series) >= 2 and series[-2] != 0:
                rel = latest / series[-2] - 1.0
                delta_txt += f" &middot; {rel:+.2%} vs previous"
            cards.append(
                f'<div class="card"><div class="metric">'
                f"{html.escape(metric)}</div>"
                f'<div class="value">{_fmt_value(latest)}</div>'
                f'<div class="delta">{delta_txt}</div>'
                f"{_sparkline(series)}</div>"
            )
        if cards:
            out.append(f'<div class="cards">{"".join(cards)}</div>')
        else:
            out.append('<p class="empty">No plottable metrics recorded.</p>')
    return out


def render_dashboard(
    entries: Sequence[LedgerEntry],
    *,
    gate_report=None,
    title: str = "repro-rrm performance observability",
    metrics: Optional[Sequence[str]] = None,
    max_points: int = 60,
    flamegraph_svg: Optional[str] = None,
) -> str:
    """Render ledger *entries* (plus an optional gate report) to HTML.

    The returned string is a complete document with no external
    references. *metrics* restricts the plotted metric set;
    *max_points* caps each sparkline to the most recent N runs;
    *flamegraph_svg* (a rendered profile flamegraph) is embedded inline
    under the profiling section when given.
    """
    grouped = entries_by_name(list(entries))
    picked = _pick_metrics(entries, metrics)
    latest_fp: Dict[str, object] = {}
    for entry in entries:
        if entry.fingerprint:
            latest_fp = entry.fingerprint
    meta_bits = [
        f"{len(entries)} ledger entr" + ("ies" if len(entries) != 1 else "y"),
        f"{len(grouped)} run name" + ("s" if len(grouped) != 1 else ""),
    ]
    for key in ("git_sha", "repro_version", "config_hash"):
        if key in latest_fp:
            meta_bits.append(f"{key} {html.escape(str(latest_fp[key]))}")
    body: List[str] = [
        f"<h1>{html.escape(title)}</h1>",
        f'<div class="meta">{" &middot; ".join(meta_bits)}</div>',
    ]
    if gate_report is not None:
        body.extend(_gate_section(gate_report))
    if grouped:
        body.extend(_throughput_section(list(entries), max_points))
        body.extend(_profile_sections(grouped))
        body.extend(_attribution_sections(grouped))
        body.extend(_trend_sections(grouped, picked, max_points))
    else:
        body.append('<p class="empty">The ledger is empty.</p>')
    if flamegraph_svg:
        body.append("<h2>Flamegraph</h2>")
        body.append(flamegraph_svg)
    body.append(
        "<footer>Self-contained report; generated offline by "
        "<code>repro-rrm obs dashboard</code>.</footer>"
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        '<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head>\n<body>\n" + "\n".join(body) + "\n</body>\n</html>\n"
    )
