"""Trace diffing: aligned span aggregates between two recorded traces.

``repro-rrm trace diff A B`` loads two Chrome/JSONL traces (any mix of
formats — :func:`~repro.telemetry.summary.load_trace` normalises both to
microsecond events), aggregates their complete events per span name, and
reports per-name deltas of count, total time, mean and p95. Spans that
exist in only one trace are reported as added/removed rather than
silently dropped — a renamed hot path should look like a rename, not a
disappearance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.telemetry.trace import PH_COMPLETE


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The *q*-quantile (0..1) of pre-sorted values, nearest-rank style
    with linear interpolation between adjacent ranks."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class SpanStats:
    """Aggregate of one span name within one trace (times in us)."""

    count: int
    total_us: float
    mean_us: float
    p95_us: float
    max_us: float


def span_stats(events: List[dict]) -> Dict[str, SpanStats]:
    """Per-name aggregates of the complete (``ph="X"``) events."""
    durations: Dict[str, List[float]] = {}
    for event in events:
        if event.get("ph") != PH_COMPLETE:
            continue
        name = str(event.get("name") or "?")
        dur = event.get("dur", 0.0)
        if not isinstance(dur, (int, float)):
            dur = 0.0
        durations.setdefault(name, []).append(float(dur))
    stats: Dict[str, SpanStats] = {}
    for name, durs in durations.items():
        durs.sort()
        stats[name] = SpanStats(
            count=len(durs),
            total_us=sum(durs),
            mean_us=sum(durs) / len(durs),
            p95_us=percentile(durs, 0.95),
            max_us=durs[-1],
        )
    return stats


@dataclass
class SpanDelta:
    """One aligned row of the diff; either side may be absent."""

    name: str
    a: Optional[SpanStats]
    b: Optional[SpanStats]

    @property
    def status(self) -> str:
        if self.a is None:
            return "added"
        if self.b is None:
            return "removed"
        return "common"

    @property
    def count_delta(self) -> int:
        return (self.b.count if self.b else 0) - (self.a.count if self.a else 0)

    @property
    def total_delta_us(self) -> float:
        return (self.b.total_us if self.b else 0.0) - (
            self.a.total_us if self.a else 0.0
        )

    @property
    def p95_delta_us(self) -> float:
        return (self.b.p95_us if self.b else 0.0) - (
            self.a.p95_us if self.a else 0.0
        )


@dataclass
class TraceDiff:
    """The aligned per-name span diff of two traces."""

    rows: List[SpanDelta]
    n_events_a: int
    n_events_b: int

    @property
    def added(self) -> List[SpanDelta]:
        return [r for r in self.rows if r.status == "added"]

    @property
    def removed(self) -> List[SpanDelta]:
        return [r for r in self.rows if r.status == "removed"]

    @property
    def common(self) -> List[SpanDelta]:
        return [r for r in self.rows if r.status == "common"]


def diff_traces(
    events_a: List[dict], events_b: List[dict]
) -> TraceDiff:
    """Align the two traces' span aggregates by name.

    Rows are ordered by descending absolute total-time delta, so the
    spans that moved the run the most lead the report.
    """
    stats_a = span_stats(events_a)
    stats_b = span_stats(events_b)
    rows = [
        SpanDelta(name=name, a=stats_a.get(name), b=stats_b.get(name))
        for name in sorted(set(stats_a) | set(stats_b))
    ]
    rows.sort(key=lambda r: (-abs(r.total_delta_us), r.name))
    return TraceDiff(
        rows=rows, n_events_a=len(events_a), n_events_b=len(events_b)
    )


def _fmt_side(stats: Optional[SpanStats]) -> str:
    if stats is None:
        return "-"
    return f"{stats.count}x {stats.total_us:.1f}us p95={stats.p95_us:.2f}"


def format_trace_diff(diff: TraceDiff, *, top: int = 20) -> str:
    """Render the diff as the ``trace diff`` subcommand output."""
    lines = [
        f"events          A={diff.n_events_a}  B={diff.n_events_b}",
        f"span names      {len(diff.common)} common, "
        f"{len(diff.added)} added, {len(diff.removed)} removed",
    ]
    shown = diff.rows[:top]
    if shown:
        lines.append("largest span deltas (B - A):")
    for row in shown:
        lines.append(
            f"  {row.name:<22} {row.status:<8} "
            f"dcount={row.count_delta:+d}  "
            f"dtotal={row.total_delta_us:+.1f}us  "
            f"dp95={row.p95_delta_us:+.3f}us"
        )
        lines.append(
            f"    A: {_fmt_side(row.a):<36} B: {_fmt_side(row.b)}"
        )
    if len(diff.rows) > top:
        lines.append(f"  ... ({len(diff.rows) - top} more span names)")
    if not diff.rows:
        lines.append("no spans in either trace")
    return "\n".join(lines)
