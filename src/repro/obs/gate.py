"""Statistical regression gating over ledger entries.

The gate answers one question per (entry name, metric): *is the current
value credibly worse than the pinned baseline, beyond the metric's guard
band?* "Worse" depends on the metric's direction — IPC up-is-good,
refresh writes and latency down-is-good — and the guard band absorbs
benign jitter (host-dependent wall time gets a wide band, deterministic
simulation counters a zero one).

Statistics: with one sample on each side (the common case — simulation
metrics are deterministic per seed) the relative delta is compared to
the threshold directly. With repeated samples, a seeded bootstrap over
the ratio of means yields a confidence interval, and a verdict is only
``regression``/``improvement`` when the *entire* interval clears the
guard band — so noisy metrics fail loudly only when the evidence is
strong. All resampling uses an injected :class:`random.Random` seed;
gate runs are reproducible.

Exit-code convention (mirrors ``repro-rrm lint``): 0 clean, 1 at least
one regression, 2 usage/internal error.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.ledger import LedgerEntry
from repro.utils.persist import save_json

Samples = Dict[str, Dict[str, List[float]]]  # name -> metric -> values

DEFAULT_CONFIDENCE = 0.95
DEFAULT_BOOTSTRAP_ROUNDS = 2000

#: Verdict severities, used for report ordering.
_VERDICT_ORDER = (
    "regression",
    "advisory",
    "missing",
    "incomparable",
    "new",
    "improvement",
    "ok",
    "info",
)


@dataclass(frozen=True)
class GateRule:
    """Direction and guard band for every metric matching a pattern.

    A *report_only* rule still judges its metric, but a would-be
    regression becomes an ``advisory`` verdict: visible in the report,
    never in the exit code. That is the right posture for host-dependent
    throughput numbers (``sim_events_per_sec``) that are worth watching
    but would make CI flaky as hard gates.
    """

    metric: str  # fnmatch-style pattern against the metric name
    direction: str  # "up" = larger is better, "down" = smaller is better
    threshold: float  # relative guard band (0.05 = 5%)
    note: str = ""
    report_only: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down"):
            raise ConfigError(
                f"rule {self.metric!r}: direction must be 'up' or 'down', "
                f"got {self.direction!r}"
            )
        if self.threshold < 0:
            raise ConfigError(
                f"rule {self.metric!r}: threshold must be >= 0, "
                f"got {self.threshold}"
            )


#: The stock rule set. First match wins, so specific patterns precede
#: broad ones; metrics matching no rule are reported as ``info`` only.
DEFAULT_RULES: Tuple[GateRule, ...] = (
    GateRule("ipc", "up", 0.01, "headline performance metric"),
    GateRule("lifetime_years", "up", 0.01, "headline lifetime metric"),
    GateRule("wall_time_s", "down", 0.50, "host-dependent; wide band"),
    GateRule("retention_violations", "down", 0.0, "must never grow"),
    GateRule("*retention_violations", "down", 0.0, "must never grow"),
    GateRule("avg_*_latency_ns", "down", 0.05),
    # Attribution rules precede the broad *refresh* pattern below, which
    # would otherwise swallow them (first match wins).
    GateRule(
        "attr_read_refresh_share",
        "down",
        0.05,
        "RRM interference: share of read latency blamed on refreshes",
    ),
    GateRule(
        "attr_max_conservation_error_ns",
        "down",
        0.0,
        "anatomy components must keep summing to measured latency",
    ),
    GateRule("*refresh*", "down", 0.05, "refresh overhead"),
    GateRule("row_hit_rate", "up", 0.05),
    # Host-profiling metrics (repro.profiling) are watched, never
    # gating: sampling shares jitter with the host and byte counts move
    # with the interpreter. Specific needles first (first match wins).
    GateRule(
        "prof_engine_self_share",
        "down",
        0.25,
        "engine share of host self-time; the 10x campaign's needle",
        report_only=True,
    ),
    GateRule(
        "mem_bytes_per_touched_region",
        "down",
        0.25,
        "dense-state cost per touched region (ROADMAP item 5)",
        report_only=True,
    ),
    GateRule(
        "prof_*_self_share",
        "down",
        0.25,
        "host-dependent sampling share; advisory",
        report_only=True,
    ),
    GateRule(
        "mem_*",
        "down",
        0.25,
        "host-dependent memory census; advisory",
        report_only=True,
    ),
    GateRule(
        "prof_*",
        "down",
        0.50,
        "host-profiling metric; advisory",
        report_only=True,
    ),
    GateRule(
        "sim_events_per_sec",
        "up",
        0.50,
        "host-dependent simulator throughput; watched, never gating",
        report_only=True,
    ),
)


def rule_for(
    metric: str, rules: Sequence[GateRule] = DEFAULT_RULES
) -> Optional[GateRule]:
    """The first rule whose pattern matches *metric*, or None."""
    for rule in rules:
        if fnmatchcase(metric, rule.metric):
            return rule
    return None


def load_rules(path) -> List[GateRule]:
    """Parse a rules file: ``{"rules": [{"metric", "direction", "threshold"}]}``."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(f"rules file not found: {path}") from None
    except ValueError as exc:
        raise ConfigError(f"{path}: not valid JSON: {exc}") from None
    raw = payload.get("rules") if isinstance(payload, dict) else None
    if not isinstance(raw, list) or not raw:
        raise ConfigError(f"{path}: expected a non-empty 'rules' array")
    rules = []
    for i, item in enumerate(raw):
        try:
            rules.append(
                GateRule(
                    metric=item["metric"],
                    direction=item["direction"],
                    threshold=float(item["threshold"]),
                    note=item.get("note", ""),
                    report_only=bool(item.get("report_only", False)),
                )
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"{path}: bad rule #{i}: {exc}") from None
    return rules


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def bootstrap_rel_delta(
    baseline: Sequence[float],
    current: Sequence[float],
    *,
    n_boot: int = DEFAULT_BOOTSTRAP_ROUNDS,
    confidence: float = DEFAULT_CONFIDENCE,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Relative delta of means and its bootstrap CI: ``(point, lo, hi)``.

    The point estimate is ``mean(current)/mean(baseline) - 1``. With a
    single sample on both sides the interval collapses to the point
    (simulation metrics are deterministic; there is nothing to
    resample). The caller guarantees ``mean(baseline) != 0``.
    """
    base_mean = _mean(baseline)
    point = _mean(current) / base_mean - 1.0
    if len(baseline) == 1 and len(current) == 1:
        return point, point, point
    rng = random.Random(seed)
    deltas: List[float] = []
    for _ in range(n_boot):
        b = _mean([rng.choice(baseline) for _ in baseline])
        c = _mean([rng.choice(current) for _ in current])
        if b == 0:
            continue  # degenerate resample; skip rather than divide by 0
        deltas.append(c / b - 1.0)
    if not deltas:
        return point, point, point
    deltas.sort()
    alpha = (1.0 - confidence) / 2.0
    lo = deltas[int(alpha * (len(deltas) - 1))]
    hi = deltas[int((1.0 - alpha) * (len(deltas) - 1))]
    return point, lo, hi


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
@dataclass
class MetricVerdict:
    """The gate's judgement of one (entry name, metric) pair."""

    name: str
    metric: str
    verdict: str  # ok|regression|improvement|new|missing|incomparable|info
    baseline_mean: Optional[float] = None
    current_mean: Optional[float] = None
    delta: Optional[float] = None  # relative: current/baseline - 1
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    direction: Optional[str] = None
    threshold: Optional[float] = None

    def to_json_dict(self) -> dict:
        return {k: v for k, v in self.__dict__.items() if v is not None}


@dataclass
class GateReport:
    """Every verdict from one gate run, plus exit-code/report helpers."""

    verdicts: List[MetricVerdict] = field(default_factory=list)

    def by_verdict(self, verdict: str) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    @property
    def regressions(self) -> List[MetricVerdict]:
        return self.by_verdict("regression")

    @property
    def advisories(self) -> List[MetricVerdict]:
        """Would-be regressions on report-only rules; never gate."""
        return self.by_verdict("advisory")

    @property
    def improvements(self) -> List[MetricVerdict]:
        return self.by_verdict("improvement")

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for verdict in self.verdicts:
            out[verdict.verdict] = out.get(verdict.verdict, 0) + 1
        return out

    def exit_code(self, *, report_only: bool = False) -> int:
        """0 clean, 1 regressions (unless *report_only*)."""
        if report_only:
            return 0
        return 1 if self.regressions else 0

    def to_json_dict(self) -> dict:
        return {
            "counts": self.counts,
            "verdicts": [v.to_json_dict() for v in self.verdicts],
        }

    def format_text(self, *, verbose: bool = False) -> str:
        """Human-readable report; non-ok verdicts always shown."""
        lines: List[str] = []
        shown = [
            v
            for v in sorted(
                self.verdicts,
                key=lambda v: (_VERDICT_ORDER.index(v.verdict), v.name, v.metric),
            )
            if verbose or v.verdict not in ("ok", "info")
        ]
        for v in shown:
            span = ""
            if v.delta is not None:
                span = f"  delta {v.delta:+.2%}"
                if v.ci_low is not None and v.ci_low != v.ci_high:
                    span += f"  ci [{v.ci_low:+.2%}, {v.ci_high:+.2%}]"
            band = (
                f"  (band {v.threshold:.0%} {v.direction}-is-good)"
                if v.threshold is not None
                else ""
            )
            lines.append(
                f"{v.verdict.upper():<12} {v.name} :: {v.metric}{span}{band}"
            )
        counts = self.counts
        summary = ", ".join(
            f"{counts[k]} {k}" for k in _VERDICT_ORDER if counts.get(k)
        )
        lines.append(f"gate: {summary or 'nothing compared'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def samples_from_entries(
    entries: Sequence[LedgerEntry], *, last_n: Optional[int] = None
) -> Samples:
    """Ledger entries → per-name per-metric sample lists (chronological).

    *last_n* keeps only each name's most recent N entries, which is how
    the gate compares "the latest runs" against a pinned baseline.
    """
    grouped: Dict[str, List[LedgerEntry]] = {}
    for entry in entries:
        grouped.setdefault(entry.name, []).append(entry)
    samples: Samples = {}
    for name, group in grouped.items():
        if last_n is not None:
            group = group[-last_n:]
        per_metric: Dict[str, List[float]] = {}
        for entry in group:
            for metric, value in entry.metrics.items():
                per_metric.setdefault(metric, []).append(value)
        samples[name] = per_metric
    return samples


def compare_samples(
    baseline: Samples,
    current: Samples,
    *,
    rules: Sequence[GateRule] = DEFAULT_RULES,
    seed: int = 0,
    n_boot: int = DEFAULT_BOOTSTRAP_ROUNDS,
    confidence: float = DEFAULT_CONFIDENCE,
) -> GateReport:
    """Judge *current* against *baseline* under *rules*."""
    report = GateReport()
    for name in sorted(set(baseline) | set(current)):
        base_metrics = baseline.get(name)
        cur_metrics = current.get(name)
        if cur_metrics is None:
            report.verdicts.append(
                MetricVerdict(name=name, metric="*", verdict="missing")
            )
            continue
        if base_metrics is None:
            report.verdicts.append(
                MetricVerdict(name=name, metric="*", verdict="new")
            )
            continue
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            report.verdicts.append(
                _judge_metric(
                    name,
                    metric,
                    base_metrics.get(metric),
                    cur_metrics.get(metric),
                    rules,
                    seed=seed,
                    n_boot=n_boot,
                    confidence=confidence,
                )
            )
    return report


def _judge_metric(
    name: str,
    metric: str,
    base: Optional[List[float]],
    cur: Optional[List[float]],
    rules: Sequence[GateRule],
    *,
    seed: int,
    n_boot: int,
    confidence: float,
) -> MetricVerdict:
    if not cur:
        return MetricVerdict(name=name, metric=metric, verdict="missing")
    if not base:
        return MetricVerdict(
            name=name, metric=metric, verdict="new", current_mean=_mean(cur)
        )
    rule = rule_for(metric, rules)
    base_mean, cur_mean = _mean(base), _mean(cur)
    common = dict(
        name=name,
        metric=metric,
        baseline_mean=base_mean,
        current_mean=cur_mean,
        direction=rule.direction if rule else None,
        threshold=rule.threshold if rule else None,
    )
    if base_mean == 0:
        if cur_mean == 0:
            verdict = "info" if rule is None else "ok"
            return MetricVerdict(verdict=verdict, delta=0.0, **common)
        if rule is None:
            return MetricVerdict(verdict="info", **common)
        # A metric appearing from zero: its direction decides directly.
        grew_is_bad = rule.direction == "down"
        worse = cur_mean > 0 if grew_is_bad else cur_mean < 0
        if worse:
            verdict = "advisory" if rule.report_only else "regression"
        else:
            verdict = "improvement"
        return MetricVerdict(verdict=verdict, **common)
    delta, lo, hi = bootstrap_rel_delta(
        base, cur, n_boot=n_boot, confidence=confidence, seed=seed
    )
    common.update(delta=delta, ci_low=lo, ci_high=hi)
    if rule is None:
        return MetricVerdict(verdict="info", **common)
    if rule.direction == "up":
        if hi < -rule.threshold:
            verdict = "regression"
        elif lo > rule.threshold:
            verdict = "improvement"
        else:
            verdict = "ok"
    else:
        if lo > rule.threshold:
            verdict = "regression"
        elif hi < -rule.threshold:
            verdict = "improvement"
        else:
            verdict = "ok"
    if verdict == "regression" and rule.report_only:
        verdict = "advisory"
    return MetricVerdict(verdict=verdict, **common)


# ----------------------------------------------------------------------
# Pinned baselines
# ----------------------------------------------------------------------
BASELINE_SCHEMA = 1


def write_baseline(
    path, samples: Samples, *, fingerprint: Optional[dict] = None
) -> Path:
    """Pin *samples* as the committed comparison anchor."""
    path = Path(path)
    payload = {
        "schema": BASELINE_SCHEMA,
        "fingerprint": fingerprint or {},
        "samples": {
            name: {metric: list(values) for metric, values in metrics.items()}
            for name, metrics in samples.items()
        },
    }
    save_json(path, payload)
    return path


def load_baseline(path) -> Samples:
    """Load a baseline written by :func:`write_baseline`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(f"baseline file not found: {path}") from None
    except ValueError as exc:
        raise ConfigError(f"{path}: not valid JSON: {exc}") from None
    samples = payload.get("samples") if isinstance(payload, dict) else None
    if not isinstance(samples, dict):
        raise ConfigError(f"{path}: expected a 'samples' object")
    out: Samples = {}
    for name, metrics in samples.items():
        if not isinstance(metrics, dict):
            raise ConfigError(f"{path}: baseline entry {name!r} is not an object")
        out[name] = {
            metric: [float(v) for v in values]
            for metric, values in metrics.items()
            if isinstance(values, list) and values
        }
    return out
