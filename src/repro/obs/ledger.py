"""Append-only run ledger: the longitudinal record behind every gate.

One :class:`LedgerEntry` per finished run / sweep cell / benchmark, one
JSON line per entry, appended in completion order. Each entry carries a
flat numeric metric map (typically a metric-registry snapshot merged
with the :class:`~repro.sim.metrics.SimResult` reporting view) plus an
environment fingerprint — git revision, seed, configuration hash,
package version — so two entries can always be judged comparable (or
not) before their numbers are compared.

Durability follows the checkpoint-journal convention
(:mod:`repro.resilience.journal`): appends go through a temp file +
``os.replace`` so readers never see a torn file, the loader drops a
truncated *final* line, and corruption anywhere earlier raises
:class:`~repro.errors.LedgerCorruptError`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import LedgerCorruptError
from repro.utils.persist import atomic_write_text

LEDGER_SCHEMA = 1

#: Entry kinds the tooling understands (free-form strings are accepted;
#: these are the ones the CLI writes).
KIND_RUN = "run"
KIND_SWEEP = "sweep"
KIND_BENCH = "bench"


# ----------------------------------------------------------------------
# Environment fingerprinting
# ----------------------------------------------------------------------
def git_revision(cwd=None) -> str:
    """The current short git revision, or ``"unknown"`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def config_hash(config) -> str:
    """A short stable digest of a configuration object.

    Dataclasses hash their field tree; anything else hashes its
    ``repr``. Two runs with equal hashes used the same configuration.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = json.dumps(
            dataclasses.asdict(config), sort_keys=True, default=repr
        )
    else:
        payload = repr(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def environment_fingerprint(
    config=None, *, seed: Optional[int] = None
) -> Dict[str, object]:
    """The comparability stamp written into every ledger entry."""
    from repro import __version__

    fingerprint: Dict[str, object] = {
        "git_sha": git_revision(),
        "python": platform.python_version(),
        "repro_version": __version__,
    }
    if config is not None:
        fingerprint["config_hash"] = config_hash(config)
        seed = getattr(config, "seed", seed) if seed is None else seed
    if seed is not None:
        fingerprint["seed"] = seed
    return fingerprint


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
@dataclass
class LedgerEntry:
    """One recorded run: a named, fingerprinted bag of numeric metrics."""

    kind: str
    name: str
    metrics: Dict[str, float] = field(default_factory=dict)
    fingerprint: Dict[str, object] = field(default_factory=dict)
    recorded_unix_s: float = 0.0
    schema: int = LEDGER_SCHEMA

    def to_json_dict(self) -> dict:
        return {
            "schema": self.schema,
            "kind": self.kind,
            "name": self.name,
            "metrics": dict(self.metrics),
            "fingerprint": dict(self.fingerprint),
            "recorded_unix_s": self.recorded_unix_s,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "LedgerEntry":
        return cls(
            kind=d.get("kind", "run"),
            name=d.get("name", "?"),
            metrics={
                k: v
                for k, v in (d.get("metrics") or {}).items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            },
            fingerprint=dict(d.get("fingerprint") or {}),
            recorded_unix_s=float(d.get("recorded_unix_s", 0.0)),
            schema=int(d.get("schema", LEDGER_SCHEMA)),
        )

    @classmethod
    def from_result(
        cls,
        result,
        config=None,
        *,
        kind: str = KIND_RUN,
        name: Optional[str] = None,
        extra_metrics: Optional[Dict[str, float]] = None,
    ) -> "LedgerEntry":
        """Build an entry from a :class:`~repro.sim.metrics.SimResult`.

        Metrics are the numeric fields of ``result.as_dict()`` plus
        ``wall_time_s``, the deterministic engine event count
        (``sim_events``) and the host-dependent simulator throughput
        (``sim_events_per_sec``, gated report-only); runs with latency
        attribution enabled also contribute their flat ``attr_*``
        metrics (refresh-interference share and friends), making them
        gateable like any other number; host-profiled runs contribute
        ``prof_*``/``mem_*`` the same way. *extra_metrics* (e.g. a
        registry snapshot's numeric values) are merged on top.
        """
        metrics: Dict[str, float] = {
            key: value
            for key, value in result.as_dict().items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        metrics["wall_time_s"] = result.wall_time_s
        sim_events = getattr(result, "sim_events", 0)
        if sim_events:
            metrics["sim_events"] = float(sim_events)
            if result.wall_time_s > 0:
                metrics["sim_events_per_sec"] = (
                    sim_events / result.wall_time_s
                )
        attribution = getattr(result, "attribution", None)
        if attribution:
            metrics.update(
                {
                    k: v
                    for k, v in (attribution.get("ledger_metrics") or {}).items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                }
            )
        # Host-profile metrics (prof_* / mem_*) ride the same way: flat,
        # numeric, and judged only by report-only gate rules.
        profile = getattr(result, "profile", None)
        if profile:
            metrics.update(
                {
                    k: v
                    for k, v in (profile.get("ledger_metrics") or {}).items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                }
            )
        if extra_metrics:
            metrics.update(
                {
                    k: v
                    for k, v in extra_metrics.items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                }
            )
        return cls(
            kind=kind,
            name=name or f"{result.workload}/{result.scheme.value}",
            metrics=metrics,
            fingerprint=environment_fingerprint(config),
        )


# ----------------------------------------------------------------------
# The ledger store
# ----------------------------------------------------------------------
class RunLedger:
    """The append-only JSONL store of :class:`LedgerEntry` records."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.entries_appended = 0

    def register_metrics(self, registry, prefix: str = "obs.ledger") -> None:
        """Publish the ledger's write counter into a telemetry registry."""
        registry.gauge(f"{prefix}.entries_appended", lambda: self.entries_appended)

    def append(self, entry: LedgerEntry) -> LedgerEntry:
        """Durably append one entry (stamping its record time if unset)."""
        if not entry.recorded_unix_s:
            entry.recorded_unix_s = time.time()
        existing = ""
        if self.path.exists():
            existing = self.path.read_text(encoding="utf-8")
            if existing and not existing.endswith("\n"):
                existing += "\n"
        atomic_write_text(
            self.path, existing + json.dumps(entry.to_json_dict()) + "\n"
        )
        self.entries_appended += 1
        return entry

    def read(self) -> List[LedgerEntry]:
        return self.load(self.path)

    @staticmethod
    def load(path) -> List[LedgerEntry]:
        """Every entry in *path*, oldest first.

        A truncated final line (torn write) is dropped; a bad line
        anywhere earlier raises :class:`LedgerCorruptError`. A missing
        file raises :class:`FileNotFoundError` like any reader would.
        """
        path = Path(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        entries: List[LedgerEntry] = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if lineno == len(lines):
                    break  # torn final append: the entry simply re-records
                raise LedgerCorruptError(
                    f"{path}: bad ledger line {lineno}: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise LedgerCorruptError(
                    f"{path}: ledger line {lineno} is not an object"
                )
            entries.append(LedgerEntry.from_json_dict(record))
        return entries


# ----------------------------------------------------------------------
# Sharded-ledger merge (the fabric's per-worker part files)
# ----------------------------------------------------------------------
def merge_ledgers(
    part_paths, out_path, *, dedupe: bool = True
) -> List[LedgerEntry]:
    """Merge per-worker ledger shards into one ledger, deterministically.

    Workers append in completion order, which varies run to run; the
    merge sorts by ``(kind, name)`` so the combined ledger is ordered
    exactly like a serial sweep's (the CLI appends serial sweep entries
    sorted by workload/scheme). Lease-expiry races can make two workers
    record the same cell — with *dedupe* (the default) only the first
    entry per ``(kind, name)`` survives, matching the journal's
    exactly-once merge. Missing part files are skipped (that worker
    settled no jobs). Entries append to *out_path*, which may already
    hold earlier sweeps. Returns the entries appended.
    """
    entries: List[LedgerEntry] = []
    for path in part_paths:
        try:
            entries.extend(RunLedger.load(path))
        except FileNotFoundError:
            continue
    entries.sort(key=lambda e: (e.kind, e.name, e.recorded_unix_s))
    if dedupe:
        seen = set()
        unique: List[LedgerEntry] = []
        for entry in entries:
            key = (entry.kind, entry.name)
            if key in seen:
                continue
            seen.add(key)
            unique.append(entry)
        entries = unique
    ledger = RunLedger(out_path)
    for entry in entries:
        ledger.append(entry)
    return entries


# ----------------------------------------------------------------------
# Read-side helpers (gate and dashboard both consume these)
# ----------------------------------------------------------------------
def entries_by_name(
    entries: List[LedgerEntry],
) -> Dict[str, List[LedgerEntry]]:
    """Group entries by name, preserving append (chronological) order."""
    grouped: Dict[str, List[LedgerEntry]] = {}
    for entry in entries:
        grouped.setdefault(entry.name, []).append(entry)
    return grouped


def metric_series(
    entries: List[LedgerEntry], name: str, metric: str
) -> List[float]:
    """The chronological values of one metric for one entry name."""
    return [
        entry.metrics[metric]
        for entry in entries
        if entry.name == name and metric in entry.metrics
    ]
