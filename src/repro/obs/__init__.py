"""Continuous performance observability.

The longitudinal layer over the simulator's per-run telemetry: a durable
:class:`RunLedger` of fingerprinted metric snapshots, a statistical
regression gate over it, span-level trace diffing, live progress
reporters, the pinned core benchmark suite, and the offline HTML
dashboard. Everything here is *reporting-side* — attaching any of it to
a run must not change the run's :class:`~repro.sim.metrics.SimResult`.
"""

from repro.obs.benchsuite import (
    CORE_SUITE,
    SuiteOutcome,
    cell_name,
    core_config,
    run_core_suite,
    write_bench_json,
)
from repro.obs.dashboard import render_dashboard
from repro.obs.gate import (
    DEFAULT_RULES,
    GateReport,
    GateRule,
    MetricVerdict,
    bootstrap_rel_delta,
    compare_samples,
    load_baseline,
    load_rules,
    rule_for,
    samples_from_entries,
    write_baseline,
)
from repro.obs.ledger import (
    KIND_BENCH,
    KIND_RUN,
    KIND_SWEEP,
    LEDGER_SCHEMA,
    LedgerEntry,
    RunLedger,
    config_hash,
    entries_by_name,
    environment_fingerprint,
    git_revision,
    merge_ledgers,
    metric_series,
)
from repro.obs.progress import RunProgress, SweepProgress
from repro.obs.tracediff import (
    SpanDelta,
    SpanStats,
    TraceDiff,
    diff_traces,
    format_trace_diff,
    span_stats,
)

__all__ = [
    "CORE_SUITE",
    "DEFAULT_RULES",
    "GateReport",
    "GateRule",
    "KIND_BENCH",
    "KIND_RUN",
    "KIND_SWEEP",
    "LEDGER_SCHEMA",
    "LedgerEntry",
    "MetricVerdict",
    "RunLedger",
    "RunProgress",
    "SpanDelta",
    "SpanStats",
    "SuiteOutcome",
    "SweepProgress",
    "TraceDiff",
    "bootstrap_rel_delta",
    "cell_name",
    "compare_samples",
    "config_hash",
    "core_config",
    "diff_traces",
    "entries_by_name",
    "environment_fingerprint",
    "format_trace_diff",
    "git_revision",
    "load_baseline",
    "load_rules",
    "merge_ledgers",
    "metric_series",
    "render_dashboard",
    "rule_for",
    "run_core_suite",
    "samples_from_entries",
    "span_stats",
    "write_baseline",
    "write_bench_json",
]
