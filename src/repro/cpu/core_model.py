"""Single-core execution model.

The core pulls a stream of workload events — tuples
``(kind, gap, block, dirty)`` with ``kind`` one of the constants in
:mod:`repro.workloads.events` — and advances a local time cursor:

- ``gap`` instructions retire at ``base_cpi`` cycles each;
- ``EV_READ`` issues a memory read; up to ``mlp`` reads overlap, and a
  configurable fraction are *blocking* (the core waits for the data);
- ``EV_WRITE`` enqueues an LLC writeback; the core stalls only if the
  channel's write queue is full (backpressure);
- ``EV_REGISTER`` notifies the RRM of an LLC write (zero core time).

The core re-enters the event loop whenever a stall resolves (read
completion or queue space), so execution is fully event-driven.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.engine import Simulator
from repro.errors import ConfigError, SimulationError
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, RequestType
from repro.workloads.events import EV_READ, EV_REGISTER, EV_WRITE

WorkloadEvent = Tuple[int, int, int, bool]


@dataclass(frozen=True)
class CoreParams:
    """Execution parameters of one core.

    Attributes:
        freq_ghz: Core clock frequency.
        base_cpi: Cycles per instruction when memory never stalls (an
            8-issue OoO core sustains well under 1.0 on SPEC).
        mlp: Maximum overlapped outstanding reads (MSHR budget).
        blocking_load_fraction: Fraction of loads whose consumers fill the
            ROB before data returns, forcing the core to wait for that
            specific read.
    """

    freq_ghz: float = 2.0
    base_cpi: float = 0.5
    mlp: int = 16
    blocking_load_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ConfigError("freq_ghz must be positive")
        if self.base_cpi <= 0:
            raise ConfigError("base_cpi must be positive")
        if self.mlp <= 0:
            raise ConfigError("mlp must be positive")
        if not 0.0 <= self.blocking_load_fraction <= 1.0:
            raise ConfigError("blocking_load_fraction must be in [0, 1]")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz

    @property
    def ns_per_instruction(self) -> float:
        return self.base_cpi * self.cycle_ns


@dataclass
class CoreStats:
    """Progress and stall accounting for one core."""

    retired_instructions: int = 0
    reads_issued: int = 0
    writes_issued: int = 0
    registrations: int = 0
    blocking_stalls: int = 0
    mlp_stalls: int = 0
    write_queue_stalls: int = 0
    read_queue_stalls: int = 0

    def ipc(self, duration_ns: float, freq_ghz: float) -> float:
        """Instructions per cycle over *duration_ns*."""
        cycles = duration_ns * freq_ghz
        return self.retired_instructions / cycles if cycles > 0 else 0.0


# Outcomes of attempting to issue a read.
_READ_RETRY = 0    # could not issue; keep the event pending and wait
_READ_ISSUED = 1   # issued; the core continues executing
_READ_BLOCKED = 2  # issued, but the core must wait for the data

# Wait reasons (why the core's event loop is parked).
_W_NONE = 0
_W_BLOCKING = 1  # waiting for a specific read's data
_W_MLP = 2       # waiting for any read completion
_W_SPACE = 3     # waiting for a controller queue slot
_W_TIME = 4      # core time cursor is ahead of sim time


class CoreModel:
    """Drives one workload stream through the memory system."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        events: Iterator[WorkloadEvent],
        controller: MemoryController,
        params: CoreParams = CoreParams(),
        *,
        write_mode_chooser=None,
        register_sink=None,
        end_time_ns: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        """
        Args:
            events: Infinite iterator of workload events.
            write_mode_chooser: Callable block -> n_sets for writebacks
                (the RRM's decision, or a constant for static schemes).
            register_sink: Callable (block, was_dirty) receiving LLC write
                registrations (the RRM, or None to drop them).
            end_time_ns: The core parks once its time cursor passes this.
        """
        self.sim = sim
        self.core_id = core_id
        self.params = params
        self.stats = CoreStats()
        self._events = events
        self._controller = controller
        self._choose_mode = write_mode_chooser or (lambda block: 7)
        self._register = register_sink
        self._end_time_ns = end_time_ns
        self._rng = random.Random(seed * 7919 + core_id)

        self._t = 0.0  # core-local time cursor (ns)
        self._outstanding = 0
        self._wait = _W_NONE
        self._pending: Optional[WorkloadEvent] = None
        self._blocking_req_id: Optional[int] = None
        self._exhausted = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin execution at the current simulation time."""
        self.sim.schedule_at(self.sim.now, self._run)

    @property
    def parked(self) -> bool:
        """True once the core has run past its end time or its trace."""
        return self._exhausted or (
            self._end_time_ns is not None and self._t >= self._end_time_ns
        )

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self._wait not in (_W_NONE, _W_TIME):
            return  # a stale wake-up; the real wake path will re-enter
        self._wait = _W_NONE
        while True:
            if self._end_time_ns is not None and self._t >= self._end_time_ns:
                return  # park: the measurement window is over for this core

            event = self._pending
            if event is None:
                try:
                    event = next(self._events)
                except StopIteration:
                    self._exhausted = True
                    return
                kind, gap, block, dirty = event
                if gap:
                    self._t += gap * self.params.ns_per_instruction
                    self.stats.retired_instructions += gap
                event = (kind, 0, block, dirty)
            self._pending = event
            kind, _, block, dirty = event

            # Anything with a time cost must happen at the cursor time.
            if self._t > self.sim.now:
                self._wait = _W_TIME
                self.sim.schedule_at(self._t, self._wake_time)
                return

            if kind == EV_REGISTER:
                if self._register is not None:
                    self._register(block, dirty)
                self.stats.registrations += 1
                self._pending = None
                continue

            if kind == EV_READ:
                status = self._try_read(block)
                if status == _READ_RETRY:
                    return  # event stays pending; a wake path will retry
                self._pending = None
                if status == _READ_BLOCKED:
                    return  # read issued; core waits for its data
                continue

            if kind == EV_WRITE:
                if not self._try_write(block):
                    return
                self._pending = None
                continue

            raise SimulationError(f"unknown workload event kind: {kind}")

    def _wake_time(self) -> None:
        if self._wait == _W_TIME:
            self._wait = _W_NONE
            self._run()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _try_read(self, block: int) -> int:
        if self._outstanding >= self.params.mlp:
            self._wait = _W_MLP
            self.stats.mlp_stalls += 1
            return _READ_RETRY
        if not self._controller.can_accept(RequestType.READ, block):
            self._wait = _W_SPACE
            self.stats.read_queue_stalls += 1
            self._controller.notify_space(RequestType.READ, block, self._wake_space)
            return _READ_RETRY

        blocking = self._rng.random() < self.params.blocking_load_fraction
        request = MemRequest(rtype=RequestType.READ, block=block, core=self.core_id)
        request.on_complete = lambda finish: self._on_read_complete(
            request.req_id, finish
        )
        if blocking:
            self._blocking_req_id = request.req_id
        self._controller.enqueue(request)
        self._outstanding += 1
        self.stats.reads_issued += 1
        if blocking:
            self._wait = _W_BLOCKING
            self.stats.blocking_stalls += 1
            return _READ_BLOCKED
        return _READ_ISSUED

    def _on_read_complete(self, req_id: int, finish_ns: float) -> None:
        self._outstanding -= 1
        if self._outstanding < 0:
            raise SimulationError("core outstanding-read count went negative")
        if self._wait == _W_BLOCKING:
            if req_id != self._blocking_req_id:
                return  # still waiting for the dependent load's data
            self._blocking_req_id = None
            self._wait = _W_NONE
            self._t = max(self._t, finish_ns)
            self._run()
        elif self._wait == _W_MLP:
            self._wait = _W_NONE
            self._t = max(self._t, finish_ns)
            self._run()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _try_write(self, block: int) -> bool:
        if not self._controller.can_accept(RequestType.WRITE, block):
            self._wait = _W_SPACE
            self.stats.write_queue_stalls += 1
            self._controller.notify_space(RequestType.WRITE, block, self._wake_space)
            return False
        n_sets = self._choose_mode(block)
        request = MemRequest(
            rtype=RequestType.WRITE, block=block, n_sets=n_sets, core=self.core_id
        )
        self._controller.enqueue(request)
        self.stats.writes_issued += 1
        return True

    def _wake_space(self) -> None:
        if self._wait == _W_SPACE:
            self._wait = _W_NONE
            self._t = max(self._t, self.sim.now)
            self._run()
