"""Trace-driven multi-core CPU model.

The core model approximates the paper's 8-issue OoO cores at
request granularity: instructions between memory events retire at a base
CPI; loads overlap up to an MLP bound (the MSHR budget); a configurable
fraction of loads are *blocking* (dependent — the ROB fills before the
data returns); writebacks stall the core only through write-queue
backpressure. These are exactly the mechanisms through which MLC PCM
write latency reaches IPC.
"""

from repro.cpu.core_model import CoreModel, CoreParams, CoreStats
from repro.cpu.multicore import Multicore

__all__ = ["CoreModel", "CoreParams", "CoreStats", "Multicore"]
