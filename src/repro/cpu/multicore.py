"""Multi-core assembly: one CoreModel per workload stream."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.cpu.core_model import CoreModel, CoreParams, WorkloadEvent
from repro.engine import Simulator
from repro.errors import ConfigError
from repro.memctrl.controller import MemoryController


class Multicore:
    """Owns N cores and their shared progress accounting."""

    def __init__(
        self,
        sim: Simulator,
        controller: MemoryController,
        event_streams: List[Iterator[WorkloadEvent]],
        params: CoreParams = CoreParams(),
        *,
        write_mode_chooser: Optional[Callable[[int], int]] = None,
        register_sink=None,
        end_time_ns: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if not event_streams:
            raise ConfigError("at least one core workload stream is required")
        self.params = params
        self.cores = [
            CoreModel(
                sim,
                core_id,
                stream,
                controller,
                params,
                write_mode_chooser=write_mode_chooser,
                register_sink=register_sink,
                end_time_ns=end_time_ns,
                seed=seed,
            )
            for core_id, stream in enumerate(event_streams)
        ]

    def start(self) -> None:
        """Start every core at the current simulation time."""
        for core in self.cores:
            core.start()

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def total_instructions(self) -> int:
        return sum(core.stats.retired_instructions for core in self.cores)

    def per_core_ipc(self, duration_ns: float) -> List[float]:
        return [
            core.stats.ipc(duration_ns, self.params.freq_ghz) for core in self.cores
        ]

    def aggregate_ipc(self, duration_ns: float) -> float:
        """Sum of per-core IPCs (the paper's throughput metric)."""
        return sum(self.per_core_ipc(duration_ns))

    def stall_summary(self) -> dict:
        """Aggregate stall counters across cores (diagnostics)."""
        keys = (
            "blocking_stalls",
            "mlp_stalls",
            "write_queue_stalls",
            "read_queue_stalls",
        )
        return {
            key: sum(getattr(core.stats, key) for core in self.cores) for key in keys
        }

    def register_metrics(self, registry, prefix: str = "cpu") -> None:
        """Publish aggregate core counters into a telemetry registry."""
        for field_name in (
            "retired_instructions",
            "reads_issued",
            "writes_issued",
            "registrations",
            "blocking_stalls",
            "mlp_stalls",
            "write_queue_stalls",
            "read_queue_stalls",
        ):
            registry.gauge(
                f"{prefix}.{field_name}",
                lambda f=field_name: sum(
                    getattr(core.stats, f) for core in self.cores
                ),
            )
