"""In-simulation latency attribution: observe, carve, blame, conserve.

The :class:`AttributionCollector` hangs off the memory controller's
issue/complete path and maintains, per bank, a timeline of *occupancy
segments* — ``[start, end, class]`` intervals describing what the bank
was doing. When a request issues, its queue-wait window
``[issue, start]`` is carved against that timeline: overlap with a
segment is blamed on the segment's class, the remainder on the
scheduler. Write pausing splices the timeline (the preempted write's
segment is truncated at the read start and its remainder re-appended at
the extended end) so blame stays mutually exclusive.

The collector is a pure observer: it reads times the controller already
computed and never touches the simulator, so an attributed run is
bit-identical to an unattributed one. The conservation invariant —
components sum to the measured total latency — is enforced on every
completion (:data:`~repro.attribution.model.CONSERVATION_TOLERANCE_NS`),
and the worst observed error is exported so tests and CI can assert it
stayed at exactly zero.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.attribution.model import (
    BLOCKER_SCHEDULER,
    CONSERVATION_TOLERANCE_NS,
    CLASS_READ,
    REFRESH_CLASSES,
    BlameMatrix,
    RequestAnatomy,
    classify_request,
)
from repro.errors import SimulationError
from repro.memctrl.request import MemRequest

#: Prune a bank's segment timeline once it grows past this length.
_PRUNE_THRESHOLD = 64

#: Region aggregates tracked individually before spilling to "other".
_MAX_REGIONS = 4096


class AttributionCollector:
    """Per-request latency anatomy for one run.

    Args:
        n_banks: Flat bank count (channel-major, matching the
            controller's bank indices).
        banks_per_channel: For deriving the channel of a bank index.
        fast_n_sets / slow_n_sets: The device's write-mode SET counts,
            used to split write traffic into fast/slow classes.
        top_n: How many slowest-request anatomies to retain.
        region_of: Optional ``block -> region`` map enabling per-region
            aggregation (the RRM's region geometry when available).
    """

    def __init__(
        self,
        n_banks: int,
        banks_per_channel: int,
        *,
        fast_n_sets: int,
        slow_n_sets: int,
        row_hit_read_ns: float,
        top_n: int = 32,
        region_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.n_banks = n_banks
        self.banks_per_channel = banks_per_channel
        self.fast_n_sets = fast_n_sets
        self.slow_n_sets = slow_n_sets
        #: Base (row-hit) read service time; the measured surplus over it
        #: is the row-miss penalty.
        self.row_hit_read_ns = row_hit_read_ns
        self.top_n = top_n
        self.region_of = region_of

        #: Per-bank occupancy timeline: [start_ns, end_ns, class] lists,
        #: sorted by start, mutually disjoint.
        self._segments: List[List[list]] = [[] for _ in range(n_banks)]
        #: Per-bank in-flight write's segment (the splice target).
        self._write_seg: List[Optional[list]] = [None] * n_banks
        #: Per-bank issue times of requests still waiting in a queue;
        #: their minimum bounds how far back carving can ever reach.
        self._waiting: List[Dict[int, float]] = [{} for _ in range(n_banks)]

        self.matrix = BlameMatrix()
        self.bank_matrices: List[BlameMatrix] = [
            BlameMatrix() for _ in range(n_banks)
        ]
        #: victim class -> component name -> summed ns.
        self.component_sums: Dict[str, Dict[str, float]] = {}
        #: region -> [requests, wait_ns, refresh_blamed_ns].
        self.region_blame: Dict[int, list] = {}
        self.region_overflow: List[float] = [0, 0.0, 0.0]

        self.requests_observed = 0
        self.conservation_checks = 0
        self.max_conservation_error_ns = 0.0
        self.read_refresh_blame_ns = 0.0
        self.refresh_backpressure_ns = 0.0
        self.pause_preempt_total_ns = 0.0
        #: min-heap of (total_ns, req_id, anatomy) for the slowest N.
        self._slowest: List[Tuple[float, int, RequestAnatomy]] = []

    # ------------------------------------------------------------------
    # Controller hooks (issue-side)
    # ------------------------------------------------------------------
    def on_enqueue(self, request: MemRequest) -> None:
        """A request entered a controller queue (issue_time_ns is set)."""
        anatomy = RequestAnatomy(
            req_id=request.req_id,
            victim=classify_request(
                request, self.fast_n_sets, self.slow_n_sets
            ),
            block=request.block,
            bank_index=request.bank_index,
            channel=request.bank_index // self.banks_per_channel,
            issue_ns=request.issue_time_ns,
        )
        generated = getattr(request, "generated_time_ns", None)
        if generated is not None:
            anatomy.refresh_backpressure_ns = (
                request.issue_time_ns - generated
            )
        request.anatomy = anatomy
        self._waiting[request.bank_index][request.req_id] = (
            request.issue_time_ns
        )

    def on_dequeue(self, queue, request: MemRequest, n_bypassed: int) -> None:
        """The scheduler picked *request*, skipping *n_bypassed* older
        same-queue entries (the FR-FCFS reordering depth)."""
        anatomy = request.anatomy
        if anatomy is not None:
            anatomy.bypassed = n_bypassed

    def on_read_issue(self, request: MemRequest, row_hit: bool) -> None:
        """A read was scheduled onto its bank (start/finish are set)."""
        anatomy: RequestAnatomy = request.anatomy
        start = request.start_time_ns
        finish = request.finish_time_ns
        self._carve_wait(anatomy, start)
        anatomy.start_ns = start
        anatomy.row_hit = row_hit
        # Base read service is the row-hit time; the measured surplus
        # becomes the row-miss penalty at completion.
        anatomy.service_base_ns = min(finish - start, self.row_hit_read_ns)
        bank = request.bank_index
        read_seg = [start, finish, CLASS_READ]
        wseg = self._write_seg[bank]
        if wseg is not None and wseg[0] <= start < wseg[1]:
            # The read preempts the in-flight write: truncate the write's
            # segment at the read start; on_write_paused appends the
            # remainder once the extended end is known.
            wseg[1] = start
        self._segments[bank].append(read_seg)

    def on_write_issue(self, request: MemRequest) -> None:
        """A write or refresh was scheduled onto its bank."""
        anatomy: RequestAnatomy = request.anatomy
        start = request.start_time_ns
        finish = request.finish_time_ns
        self._carve_wait(anatomy, start)
        anatomy.start_ns = start
        anatomy.service_base_ns = finish - start
        bank = request.bank_index
        seg = [start, finish, anatomy.victim]
        self._segments[bank].append(seg)
        self._write_seg[bank] = seg

    def on_write_paused(
        self,
        write_request: MemRequest,
        read_request: MemRequest,
        new_end_ns: float,
    ) -> None:
        """A read cut into *write_request*; its finish moved to
        *new_end_ns*. Re-append the write's unserved remainder after the
        read so the occupancy timeline stays disjoint."""
        bank = write_request.bank_index
        read_finish = read_request.finish_time_ns
        remainder = [read_finish, new_end_ns, write_request.anatomy.victim]
        self._segments[bank].append(remainder)
        self._write_seg[bank] = remainder

    # ------------------------------------------------------------------
    # Controller hook (completion-side)
    # ------------------------------------------------------------------
    def on_complete(self, request: MemRequest) -> Optional[dict]:
        """Finalise the request's anatomy; returns compact span args for
        the tracer (or None when the anatomy is unexpectedly absent)."""
        anatomy: RequestAnatomy = request.anatomy
        if anatomy is None:
            return None
        if request.is_write:
            self._write_seg[request.bank_index] = None
        finish = request.finish_time_ns
        anatomy.finish_ns = finish
        service = finish - anatomy.start_ns
        extra = service - anatomy.service_base_ns
        if anatomy.victim == CLASS_READ:
            anatomy.row_miss_penalty_ns = extra
        else:
            anatomy.pause_preempt_ns = extra
        anatomy.sched_wait_ns = (
            anatomy.wait_ns - anatomy.blocked_total_ns
        )
        self._check_conservation(anatomy)
        self._aggregate(anatomy)
        return anatomy.trace_args()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _carve_wait(self, anatomy: RequestAnatomy, start: float) -> None:
        """Split the wait window ``[issue, start]`` over the bank's
        occupancy segments into per-blocker blamed time."""
        bank = anatomy.bank_index
        waiting = self._waiting[bank]
        waiting.pop(anatomy.req_id, None)
        issue = anatomy.issue_ns
        if start > issue:
            blocked = anatomy.blocked_ns
            for seg in self._segments[bank]:
                seg_start = seg[0]
                if seg_start >= start:
                    break
                seg_end = seg[1]
                if seg_end <= issue:
                    continue
                lo = issue if issue > seg_start else seg_start
                hi = start if start < seg_end else seg_end
                overlap = hi - lo
                if overlap > 0.0:
                    cls = seg[2]
                    blocked[cls] = blocked.get(cls, 0.0) + overlap
        segments = self._segments[bank]
        if len(segments) > _PRUNE_THRESHOLD:
            # Segments ending before every waiter's issue time can never
            # be blamed again (future requests issue even later).
            horizon = min(waiting.values()) if waiting else start
            self._segments[bank] = [s for s in segments if s[1] > horizon]

    def _check_conservation(self, anatomy: RequestAnatomy) -> None:
        self.conservation_checks += 1
        error = anatomy.conservation_error_ns()
        if error > self.max_conservation_error_ns:
            self.max_conservation_error_ns = error
        if error > CONSERVATION_TOLERANCE_NS:
            raise SimulationError(
                f"attribution conservation violated for request "
                f"{anatomy.req_id} ({anatomy.victim}): components sum to "
                f"{anatomy.components_sum_ns()!r} ns but measured total is "
                f"{anatomy.total_ns!r} ns (error {error:g} ns)"
            )
        if anatomy.sched_wait_ns < -CONSERVATION_TOLERANCE_NS:
            raise SimulationError(
                f"attribution over-blamed request {anatomy.req_id} "
                f"({anatomy.victim}): blocked time "
                f"{anatomy.blocked_total_ns!r} ns exceeds measured wait "
                f"{anatomy.wait_ns!r} ns"
            )

    def _aggregate(self, anatomy: RequestAnatomy) -> None:
        self.requests_observed += 1
        victim = anatomy.victim
        total = anatomy.total_ns
        self.matrix.add_victim(victim, total)
        bank_matrix = self.bank_matrices[anatomy.bank_index]
        bank_matrix.add_victim(victim, total)
        for cls, ns in anatomy.blocked_ns.items():
            self.matrix.add(victim, cls, ns)
            bank_matrix.add(victim, cls, ns)
        if anatomy.sched_wait_ns:
            self.matrix.add(victim, BLOCKER_SCHEDULER, anatomy.sched_wait_ns)
            bank_matrix.add(victim, BLOCKER_SCHEDULER, anatomy.sched_wait_ns)

        sums = self.component_sums.setdefault(victim, {})
        for name, ns in anatomy.components().items():
            if ns:
                sums[name] = sums.get(name, 0.0) + ns

        if victim == CLASS_READ:
            self.read_refresh_blame_ns += anatomy.refresh_blamed_ns
        self.refresh_backpressure_ns += anatomy.refresh_backpressure_ns
        self.pause_preempt_total_ns += anatomy.pause_preempt_ns

        if self.region_of is not None:
            region = self.region_of(anatomy.block)
            acc = self.region_blame.get(region)
            if acc is None:
                if len(self.region_blame) < _MAX_REGIONS:
                    acc = self.region_blame[region] = [0, 0.0, 0.0]
                else:
                    acc = self.region_overflow
            acc[0] += 1
            acc[1] += anatomy.wait_ns
            acc[2] += anatomy.refresh_blamed_ns

        entry = (total, anatomy.req_id, anatomy)
        if len(self._slowest) < self.top_n:
            heapq.heappush(self._slowest, entry)
        elif entry > self._slowest[0]:
            heapq.heapreplace(self._slowest, entry)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def slowest(self) -> List[RequestAnatomy]:
        """Retained anatomies, slowest first."""
        return [
            item[2] for item in sorted(self._slowest, reverse=True)
        ]

    @property
    def read_latency_total_ns(self) -> float:
        return self.matrix.victim_latency_ns.get(CLASS_READ, 0.0)

    @property
    def read_refresh_share(self) -> float:
        """Fraction of total read latency blamed on RRM refresh traffic
        occupying the bank — the paper's interference cost, made
        gateable."""
        total = self.read_latency_total_ns
        return self.read_refresh_blame_ns / total if total else 0.0

    def refresh_blocker_wait_ns(self) -> float:
        """All queue wait (any victim) blamed on refresh occupancy."""
        return math.fsum(
            self.matrix.blocker_total(cls) for cls in REFRESH_CLASSES
        )

    def register_metrics(self, registry, prefix: str = "attribution") -> None:
        """Publish collector counters into a telemetry registry."""
        registry.gauge(
            f"{prefix}.requests_observed", lambda: self.requests_observed
        )
        registry.gauge(
            f"{prefix}.conservation_checks", lambda: self.conservation_checks
        )
        registry.gauge(
            f"{prefix}.max_conservation_error_ns",
            lambda: self.max_conservation_error_ns,
        )
        registry.gauge(
            f"{prefix}.read_refresh_blame_ns",
            lambda: self.read_refresh_blame_ns,
        )
        registry.gauge(
            f"{prefix}.refresh_backpressure_ns",
            lambda: self.refresh_backpressure_ns,
        )
        registry.gauge(
            f"{prefix}.pause_preempt_total_ns",
            lambda: self.pause_preempt_total_ns,
        )
        registry.derived(
            f"{prefix}.read_refresh_share", lambda: self.read_refresh_share
        )
        registry.derived(
            f"{prefix}.total_blamed_ns",
            lambda: self.matrix.total_blamed_ns,
        )
