"""Per-request latency anatomy: causal attribution of memory latency.

Decomposes every memory request's end-to-end latency into named,
mutually exclusive causes (queue wait split by what occupied the bank,
scheduler wait, base service, row-miss penalty, write-pause preemption)
under a hard conservation invariant: the components sum exactly to the
measured total, enforced on every completion. See DESIGN.md §11.

Opt-in via ``TelemetryConfig(attribution=True)``; an attributed run is
bit-identical in simulation statistics to an unattributed one.
"""

from repro.attribution.collector import AttributionCollector
from repro.attribution.model import (
    BLOCKER_CLASSES,
    BLOCKER_SCHEDULER,
    CLASS_READ,
    CLASS_RRM_FAST_REFRESH,
    CLASS_RRM_SLOW_REFRESH,
    CLASS_WRITE_FAST,
    CLASS_WRITE_OTHER,
    CLASS_WRITE_SLOW,
    CONSERVATION_TOLERANCE_NS,
    REFRESH_CLASSES,
    VICTIM_CLASSES,
    BlameMatrix,
    RequestAnatomy,
    classify_request,
)
from repro.attribution.report import (
    AttributionReport,
    format_anatomy,
    format_bank_heatmap,
    format_matrix,
    format_report,
)

__all__ = [
    "AttributionCollector",
    "AttributionReport",
    "BLOCKER_CLASSES",
    "BLOCKER_SCHEDULER",
    "BlameMatrix",
    "CLASS_READ",
    "CLASS_RRM_FAST_REFRESH",
    "CLASS_RRM_SLOW_REFRESH",
    "CLASS_WRITE_FAST",
    "CLASS_WRITE_OTHER",
    "CLASS_WRITE_SLOW",
    "CONSERVATION_TOLERANCE_NS",
    "REFRESH_CLASSES",
    "RequestAnatomy",
    "VICTIM_CLASSES",
    "classify_request",
    "format_anatomy",
    "format_bank_heatmap",
    "format_matrix",
    "format_report",
]
