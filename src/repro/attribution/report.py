"""Aggregated attribution results: reports, heatmaps, ledger metrics.

The collector accumulates blame during the run; this module freezes it
into an :class:`AttributionReport` — the JSON-able summary attached to a
:class:`~repro.sim.metrics.SimResult`, rendered by ``repro-rrm
explain``, and flattened into ``attr_*`` run-ledger metrics so
refresh-interference share is gateable like any other number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attribution.collector import AttributionCollector
from repro.attribution.model import (
    BLOCKER_CLASSES,
    BLOCKER_SCHEDULER,
    CLASS_READ,
    REFRESH_CLASSES,
    BlameMatrix,
)

#: Regions listed individually in reports/JSON (ranked by refresh blame).
TOP_REGIONS = 10


@dataclass
class AttributionReport:
    """One run's frozen latency-anatomy aggregate."""

    requests: int = 0
    conservation_checks: int = 0
    max_conservation_error_ns: float = 0.0
    read_refresh_share: float = 0.0
    read_refresh_blame_ns: float = 0.0
    read_latency_total_ns: float = 0.0
    refresh_backpressure_ns: float = 0.0
    pause_preempt_total_ns: float = 0.0
    banks_per_channel: int = 1
    matrix: BlameMatrix = field(default_factory=BlameMatrix)
    bank_matrices: List[BlameMatrix] = field(default_factory=list)
    #: victim class -> component name -> summed ns.
    component_sums: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Slowest requests' anatomies as JSON dicts, slowest first.
    slowest: List[dict] = field(default_factory=list)
    #: (region, requests, wait_ns, refresh_blamed_ns), worst first.
    top_regions: List[tuple] = field(default_factory=list)
    #: Requests spilled past the per-region tracking cap, if any.
    region_overflow_requests: int = 0

    @classmethod
    def from_collector(
        cls, collector: AttributionCollector
    ) -> "AttributionReport":
        regions = sorted(
            collector.region_blame.items(),
            key=lambda kv: (-kv[1][2], -kv[1][1], kv[0]),
        )[:TOP_REGIONS]
        return cls(
            requests=collector.requests_observed,
            conservation_checks=collector.conservation_checks,
            max_conservation_error_ns=collector.max_conservation_error_ns,
            read_refresh_share=collector.read_refresh_share,
            read_refresh_blame_ns=collector.read_refresh_blame_ns,
            read_latency_total_ns=collector.read_latency_total_ns,
            refresh_backpressure_ns=collector.refresh_backpressure_ns,
            pause_preempt_total_ns=collector.pause_preempt_total_ns,
            banks_per_channel=collector.banks_per_channel,
            matrix=collector.matrix,
            bank_matrices=collector.bank_matrices,
            component_sums={
                victim: dict(sorted(sums.items()))
                for victim, sums in sorted(
                    collector.component_sums.items()
                )
            },
            slowest=[a.to_json_dict() for a in collector.slowest()],
            top_regions=[
                (region, acc[0], acc[1], acc[2]) for region, acc in regions
            ],
            region_overflow_requests=int(collector.region_overflow[0]),
        )

    # ------------------------------------------------------------------
    def summary_dict(self) -> dict:
        """Compact JSON-able digest carried on ``SimResult.attribution``."""
        return {
            "requests": self.requests,
            "conservation_checks": self.conservation_checks,
            "max_conservation_error_ns": self.max_conservation_error_ns,
            "read_refresh_share": self.read_refresh_share,
            "read_refresh_blame_ns": self.read_refresh_blame_ns,
            "read_latency_total_ns": self.read_latency_total_ns,
            "refresh_backpressure_ns": self.refresh_backpressure_ns,
            "pause_preempt_total_ns": self.pause_preempt_total_ns,
            "blocker_wait_ns": {
                blocker: self.matrix.blocker_total(blocker)
                for blocker in self.matrix.blockers()
            },
        }

    def to_json_dict(self) -> dict:
        """Full machine-readable report (``repro-rrm explain --json``)."""
        return {
            **self.summary_dict(),
            "matrix": self.matrix.to_json_dict(),
            "banks": [
                {"bank": i, "channel": i // self.banks_per_channel,
                 **m.to_json_dict()}
                for i, m in enumerate(self.bank_matrices)
            ],
            "component_sums_ns": self.component_sums,
            "slowest": self.slowest,
            "top_regions": [
                {"region": region, "requests": n, "wait_ns": wait,
                 "refresh_blamed_ns": blamed}
                for region, n, wait, blamed in self.top_regions
            ],
            "region_overflow_requests": self.region_overflow_requests,
        }

    def ledger_metrics(self) -> Dict[str, float]:
        """Flat ``attr_*`` metrics merged into run-ledger entries.

        Every value is a deterministic function of the simulation, so
        ledger-driven artifacts (BENCH_core.json, gate baselines) stay
        reproducible per seed.
        """
        metrics: Dict[str, float] = {
            "attr_requests": float(self.requests),
            "attr_max_conservation_error_ns": self.max_conservation_error_ns,
            "attr_read_refresh_share": self.read_refresh_share,
            "attr_read_refresh_blame_ns": self.read_refresh_blame_ns,
            "attr_refresh_backpressure_ns": self.refresh_backpressure_ns,
            "attr_pause_preempt_ns": self.pause_preempt_total_ns,
        }
        for blocker in BLOCKER_CLASSES:
            total = self.matrix.blocker_total(blocker)
            if total:
                metrics[f"attr_blame_{blocker}_ns"] = total
        for i, bank_matrix in enumerate(self.bank_matrices):
            for blocker in bank_matrix.blockers():
                metrics[f"attr_bank{i}_blame_{blocker}"] = (
                    bank_matrix.blocker_total(blocker)
                )
        return metrics


# ----------------------------------------------------------------------
# Text rendering (the `repro-rrm explain` output)
# ----------------------------------------------------------------------
def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    """Minimal aligned text table (first column left, rest right)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: List[str]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [cell.rjust(widths[i + 1]) for i, cell in enumerate(row[1:])]
        return "  ".join(cells).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def _us(ns: float) -> str:
    return f"{ns / 1000.0:.2f}"


def format_matrix(matrix: BlameMatrix, title: str) -> List[str]:
    """Render a victim x blocker blamed-time matrix (values in us)."""
    blockers = matrix.blockers()
    lines = [title]
    if not blockers:
        lines.append("  (no blamed wait time)")
        return lines
    headers = ["victim \\ blocker (us)"] + blockers + ["total wait"]
    rows = []
    for victim in matrix.victims():
        row = [victim]
        row += [_us(matrix.get(victim, b)) for b in blockers]
        row.append(_us(matrix.victim_total(victim)))
        rows.append(row)
    rows.append(
        ["(all victims)"]
        + [_us(matrix.blocker_total(b)) for b in blockers]
        + [_us(matrix.total_blamed_ns)]
    )
    lines.extend("  " + line for line in _table(headers, rows))
    return lines


def format_bank_heatmap(report: AttributionReport) -> List[str]:
    """Per-bank interference heatmap: wait blamed on each blocker class,
    reads as victims (the latency the paper's tradeoff is about)."""
    lines = ["per-bank read interference (us of read wait blamed on ...):"]
    blockers: List[str] = []
    for m in report.bank_matrices:
        for b in m.blockers():
            if b not in blockers:
                blockers.append(b)
    blockers = [b for b in BLOCKER_CLASSES if b in blockers] + [
        b for b in blockers if b not in BLOCKER_CLASSES
    ]
    if not blockers:
        lines.append("  (no blamed wait time)")
        return lines
    headers = ["bank"] + blockers
    rows = []
    for i, m in enumerate(report.bank_matrices):
        channel = i // report.banks_per_channel
        rows.append(
            [f"ch{channel}/b{i}"]
            + [_us(m.get(CLASS_READ, b)) for b in blockers]
        )
    lines.extend("  " + line for line in _table(headers, rows))
    return lines


def format_anatomy(anatomy: dict, rank: int) -> List[str]:
    """Render one slow request's full anatomy (from its JSON dict)."""
    total = anatomy["total_ns"]
    head = (
        f"  #{rank}: {anatomy['victim']} block={anatomy['block']} "
        f"ch{anatomy['channel']}/b{anatomy['bank']} "
        f"total={_us(total)}us at t={_us(anatomy['issue_ns'])}us"
    )
    lines = [head]
    components = anatomy["components_ns"]
    for name, ns in sorted(
        components.items(), key=lambda kv: -kv[1]
    ):
        if not ns:
            continue
        share = ns / total if total else 0.0
        lines.append(f"      {name:<24} {_us(ns):>10} us  ({share:6.1%})")
    extra = anatomy.get("refresh_backpressure_ns") or 0.0
    if extra:
        lines.append(
            f"      (+ pre-queue refresh backpressure {_us(extra)} us,"
            " outside the conservation sum)"
        )
    return lines


def format_report(
    report: AttributionReport,
    *,
    top: int = 5,
    header: Optional[str] = None,
) -> str:
    """The full ``repro-rrm explain`` text output."""
    lines: List[str] = []
    if header:
        lines += [header, ""]
    lines.append(
        f"requests observed        {report.requests}"
    )
    lines.append(
        f"conservation             max error "
        f"{report.max_conservation_error_ns:g} ns over "
        f"{report.conservation_checks} checks"
    )
    lines.append(
        f"read refresh share       {report.read_refresh_share:.4%} of read "
        f"latency blamed on RRM refresh occupancy "
        f"({_us(report.read_refresh_blame_ns)} us)"
    )
    lines.append(
        f"write-pause preemption   {_us(report.pause_preempt_total_ns)} us "
        "added to paused writes by reads cutting in"
    )
    if report.refresh_backpressure_ns:
        lines.append(
            f"refresh backpressure     {_us(report.refresh_backpressure_ns)}"
            " us spent by refreshes waiting for queue space (pre-queue)"
        )
    lines.append("")
    lines.extend(
        format_matrix(report.matrix, "blamed wait time, all banks:")
    )
    lines.append("")
    lines.extend(format_bank_heatmap(report))
    if report.top_regions:
        lines.append("")
        lines.append("regions with the most refresh-blamed wait:")
        headers = ["region", "requests", "wait (us)", "refresh-blamed (us)"]
        rows = [
            [str(region), str(n), _us(wait), _us(blamed)]
            for region, n, wait, blamed in report.top_regions
        ]
        lines.extend("  " + line for line in _table(headers, rows))
    if top > 0 and report.slowest:
        lines.append("")
        lines.append(f"slowest {min(top, len(report.slowest))} requests:")
        for rank, anatomy in enumerate(report.slowest[:top], start=1):
            lines.extend(format_anatomy(anatomy, rank))
    return "\n".join(lines)


def refresh_share_of(metrics: Dict[str, float]) -> float:
    """The gateable refresh-interference share from flat ledger metrics."""
    return metrics.get("attr_read_refresh_share", 0.0)


def read_refresh_blame_ns(matrix: BlameMatrix) -> float:
    """Read wait blamed on refresh classes in *matrix*."""
    return math.fsum(
        matrix.get(CLASS_READ, cls) for cls in REFRESH_CLASSES
    )


__all__ = [
    "AttributionReport",
    "BLOCKER_SCHEDULER",
    "TOP_REGIONS",
    "format_anatomy",
    "format_bank_heatmap",
    "format_matrix",
    "format_report",
    "read_refresh_blame_ns",
    "refresh_share_of",
]
