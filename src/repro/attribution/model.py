"""Latency-anatomy data model: cause taxonomy, per-request anatomy, blame.

Every completed memory request's end-to-end latency is decomposed into
named, mutually exclusive causes (DESIGN.md §11):

- **queue wait, blocked** — time spent queued while the request's bank
  was occupied, split by *what* occupied it (the blocker class);
- **queue wait, scheduler** — time spent queued while the bank was free
  (priority inversion, the bounded FR-FCFS window, write-drain gating,
  channel-level bank accounting);
- **base service** — the operation's intrinsic bank time (row-hit read
  time for reads, the write mode's pulse latency for writes/refreshes);
- **row-miss penalty** — extra read service due to a row-buffer miss;
- **pause preemption** — extra write duration accrued while paused by
  reads that cut in at SET boundaries.

The components form a partition of ``[issue, finish]`` on the sim
clock, so they sum to the measured total latency — the conservation
invariant :meth:`RequestAnatomy.conservation_error_ns` quantifies and
the collector enforces in-sim.

Victim and blocker classes share one vocabulary so blamed time can be
aggregated into victim-class × blocker-class matrices
(:class:`BlameMatrix`); the scheduler pseudo-blocker captures free-bank
wait, which has no occupying request to blame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.memctrl.request import MemRequest, RequestType

#: Traffic classes (victims and bank-occupancy blockers).
CLASS_READ = "read"
CLASS_WRITE_FAST = "write_fast"
CLASS_WRITE_SLOW = "write_slow"
CLASS_WRITE_OTHER = "write_other"
CLASS_RRM_FAST_REFRESH = "rrm_fast_refresh"
CLASS_RRM_SLOW_REFRESH = "rrm_slow_refresh"

#: Pseudo-blocker for queue wait while the bank was free: the request
#: was runnable but the scheduler had not picked it (priority, window,
#: drain gating, channel bank accounting).
BLOCKER_SCHEDULER = "scheduler"

#: All victim classes, in report order.
VICTIM_CLASSES: Tuple[str, ...] = (
    CLASS_READ,
    CLASS_WRITE_FAST,
    CLASS_WRITE_SLOW,
    CLASS_WRITE_OTHER,
    CLASS_RRM_FAST_REFRESH,
    CLASS_RRM_SLOW_REFRESH,
)

#: All blocker classes, in report order (occupants + the scheduler).
BLOCKER_CLASSES: Tuple[str, ...] = VICTIM_CLASSES + (BLOCKER_SCHEDULER,)

#: Blocker classes that are RRM refresh traffic (the interference the
#: paper's RRM must keep small).
REFRESH_CLASSES: Tuple[str, ...] = (
    CLASS_RRM_FAST_REFRESH,
    CLASS_RRM_SLOW_REFRESH,
)

#: Conservation slop (ns) tolerated before the in-sim invariant trips.
#: Cut points are nearby sim times, so their differences are exact in
#: double precision (Sterbenz) and the observed error is 0.0; the bound
#: exists so a genuine accounting bug fails loudly rather than drifting.
CONSERVATION_TOLERANCE_NS = 1e-6


def classify_request(
    request: MemRequest, fast_n_sets: int, slow_n_sets: int
) -> str:
    """The taxonomy class of *request* (victim or blocker role alike)."""
    rtype = request.rtype
    if rtype is RequestType.READ:
        return CLASS_READ
    if rtype is RequestType.RRM_REFRESH:
        return CLASS_RRM_FAST_REFRESH
    if rtype is RequestType.RRM_SLOW_REFRESH:
        return CLASS_RRM_SLOW_REFRESH
    if request.n_sets == fast_n_sets:
        return CLASS_WRITE_FAST
    if request.n_sets == slow_n_sets:
        return CLASS_WRITE_SLOW
    return CLASS_WRITE_OTHER


@dataclass
class RequestAnatomy:
    """One request's full latency decomposition (all times in ns).

    ``blocked_ns`` maps blocker class to the queue-wait time the bank
    spent occupied by that class; the remaining wait is
    ``sched_wait_ns``. Service splits into ``service_base_ns`` plus one
    class-specific surcharge (``row_miss_penalty_ns`` for reads,
    ``pause_preempt_ns`` for writes/refreshes paused by reads).

    ``refresh_backpressure_ns`` is the pre-controller time an RRM
    refresh sat in the monitor's pending deque waiting for queue space.
    It happens *before* ``issue_time_ns``, so it is reported alongside
    the anatomy but deliberately excluded from the conservation sum.
    """

    req_id: int
    victim: str
    block: int
    bank_index: int
    channel: int
    issue_ns: float
    start_ns: float = 0.0
    finish_ns: float = 0.0
    blocked_ns: Dict[str, float] = field(default_factory=dict)
    sched_wait_ns: float = 0.0
    service_base_ns: float = 0.0
    row_miss_penalty_ns: float = 0.0
    pause_preempt_ns: float = 0.0
    refresh_backpressure_ns: float = 0.0
    row_hit: Optional[bool] = None
    #: Older same-queue entries skipped by FR-FCFS when this issued.
    bypassed: int = 0

    @property
    def total_ns(self) -> float:
        """Measured end-to-end latency (issue to finish)."""
        return self.finish_ns - self.issue_ns

    @property
    def wait_ns(self) -> float:
        """Measured queue wait (issue to bank start)."""
        return self.start_ns - self.issue_ns

    @property
    def service_ns(self) -> float:
        """Measured bank service (start to finish, pauses included)."""
        return self.finish_ns - self.start_ns

    @property
    def blocked_total_ns(self) -> float:
        return math.fsum(self.blocked_ns.values())

    def components(self) -> Dict[str, float]:
        """The named, mutually exclusive causes, as one flat dict."""
        out = {f"wait_{cls}": ns for cls, ns in self.blocked_ns.items()}
        out["wait_scheduler"] = self.sched_wait_ns
        out["service_base"] = self.service_base_ns
        out["row_miss_penalty"] = self.row_miss_penalty_ns
        out["pause_preempt"] = self.pause_preempt_ns
        return out

    def components_sum_ns(self) -> float:
        """Exact (fsum) total of every cause component."""
        return math.fsum(self.components().values())

    def conservation_error_ns(self) -> float:
        """How far the components are from the measured total latency."""
        return abs(self.components_sum_ns() - self.total_ns)

    @property
    def refresh_blamed_ns(self) -> float:
        """Queue wait blamed on RRM refresh occupancy of the bank."""
        return math.fsum(
            self.blocked_ns.get(cls, 0.0) for cls in REFRESH_CLASSES
        )

    def to_json_dict(self) -> dict:
        return {
            "req_id": self.req_id,
            "victim": self.victim,
            "block": self.block,
            "bank": self.bank_index,
            "channel": self.channel,
            "issue_ns": self.issue_ns,
            "start_ns": self.start_ns,
            "finish_ns": self.finish_ns,
            "total_ns": self.total_ns,
            "components_ns": self.components(),
            "refresh_backpressure_ns": self.refresh_backpressure_ns,
            "row_hit": self.row_hit,
            "bypassed": self.bypassed,
        }

    def trace_args(self) -> dict:
        """Compact non-zero component map for Chrome-trace span args."""
        out = {
            key: value for key, value in self.components().items() if value
        }
        if self.refresh_backpressure_ns:
            out["refresh_backpressure"] = self.refresh_backpressure_ns
        return out


class BlameMatrix:
    """Victim-class × blocker-class blamed-time accumulator (ns)."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, str], float] = {}
        self.victim_counts: Dict[str, int] = {}
        self.victim_latency_ns: Dict[str, float] = {}

    def add(self, victim: str, blocker: str, ns: float) -> None:
        if ns:
            key = (victim, blocker)
            self._cells[key] = self._cells.get(key, 0.0) + ns

    def add_victim(self, victim: str, total_latency_ns: float) -> None:
        """Record one completed request of class *victim*."""
        self.victim_counts[victim] = self.victim_counts.get(victim, 0) + 1
        self.victim_latency_ns[victim] = (
            self.victim_latency_ns.get(victim, 0.0) + total_latency_ns
        )

    def get(self, victim: str, blocker: str) -> float:
        return self._cells.get((victim, blocker), 0.0)

    def victims(self) -> List[str]:
        """Victim classes seen, in canonical order (unknowns last)."""
        seen = set(self.victim_counts) | {v for v, _ in self._cells}
        ordered = [cls for cls in VICTIM_CLASSES if cls in seen]
        ordered.extend(sorted(seen - set(VICTIM_CLASSES)))
        return ordered

    def blockers(self) -> List[str]:
        seen = {b for _, b in self._cells}
        ordered = [cls for cls in BLOCKER_CLASSES if cls in seen]
        ordered.extend(sorted(seen - set(BLOCKER_CLASSES)))
        return ordered

    def blocker_total(self, blocker: str) -> float:
        return math.fsum(
            ns for (_, b), ns in self._cells.items() if b == blocker
        )

    def victim_total(self, victim: str) -> float:
        return math.fsum(
            ns for (v, _), ns in self._cells.items() if v == victim
        )

    @property
    def total_blamed_ns(self) -> float:
        return math.fsum(self._cells.values())

    def merge(self, other: "BlameMatrix") -> None:
        for (victim, blocker), ns in other._cells.items():
            self.add(victim, blocker, ns)
        for victim, n in other.victim_counts.items():
            self.victim_counts[victim] = (
                self.victim_counts.get(victim, 0) + n
            )
        for victim, ns in other.victim_latency_ns.items():
            self.victim_latency_ns[victim] = (
                self.victim_latency_ns.get(victim, 0.0) + ns
            )

    def rows(self) -> Iterable[Tuple[str, Dict[str, float]]]:
        """(victim, {blocker: ns}) rows in canonical order."""
        for victim in self.victims():
            yield victim, {
                blocker: self.get(victim, blocker)
                for blocker in self.blockers()
                if self.get(victim, blocker)
            }

    def to_json_dict(self) -> dict:
        return {
            "cells": [
                {"victim": v, "blocker": b, "blamed_ns": ns}
                for (v, b), ns in sorted(self._cells.items())
            ],
            "victim_counts": dict(sorted(self.victim_counts.items())),
            "victim_latency_ns": dict(
                sorted(self.victim_latency_ns.items())
            ),
        }
