"""Trace file I/O.

Generated workloads (or memory traffic observed during a run) can be
persisted as traces and replayed later, which makes experiments exactly
reproducible across machines and lets users bring their own traces.

Format: one record per line, whitespace-separated::

    <kind> <gap> <block> <dirty>

where ``kind`` is ``read`` / ``write`` / ``register``, ``gap`` is the
instruction gap, ``block`` the 64-byte block index and ``dirty`` 0/1.
Lines starting with ``#`` are comments. The format is deliberately plain
text: traces are small at simulator scale and diffable in review.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import TraceFormatError
from repro.workloads.events import (
    EV_READ,
    EV_REGISTER,
    EV_WRITE,
    WorkloadEvent,
    event_kind_name,
)

_KIND_BY_NAME = {"read": EV_READ, "write": EV_WRITE, "register": EV_REGISTER}

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceRecord:
    """One parsed trace line."""

    kind: int
    gap: int
    block: int
    dirty: bool

    def as_event(self) -> WorkloadEvent:
        return (self.kind, self.gap, self.block, self.dirty)

    def format(self) -> str:
        return (
            f"{event_kind_name(self.kind)} {self.gap} {self.block} "
            f"{1 if self.dirty else 0}"
        )

    @classmethod
    def parse(cls, line: str, lineno: int = 0) -> "TraceRecord":
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(
                f"line {lineno}: expected 4 fields, got {len(parts)}: {line!r}"
            )
        kind_name, gap_s, block_s, dirty_s = parts
        try:
            kind = _KIND_BY_NAME[kind_name]
        except KeyError:
            raise TraceFormatError(
                f"line {lineno}: unknown kind {kind_name!r}"
            ) from None
        try:
            gap, block, dirty = int(gap_s), int(block_s), int(dirty_s)
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: bad integer field") from exc
        if gap < 0 or block < 0 or dirty not in (0, 1):
            raise TraceFormatError(f"line {lineno}: field out of range")
        return cls(kind=kind, gap=gap, block=block, dirty=bool(dirty))


class TraceWriter:
    """Writes workload events to a trace file.

    Usable as a context manager::

        with TraceWriter("gems.trace") as w:
            for event in itertools.islice(generator, 10000):
                w.write_event(event)
    """

    def __init__(self, path: PathLike, header: str = "") -> None:
        self._path = Path(path)
        self._file: "io.TextIOBase | None" = None
        self._header = header
        self.records_written = 0

    def __enter__(self) -> "TraceWriter":
        self._file = self._path.open("w", encoding="utf-8")
        if self._header:
            for line in self._header.splitlines():
                self._file.write(f"# {line}\n")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def write_event(self, event: WorkloadEvent) -> None:
        kind, gap, block, dirty = event
        self.write(TraceRecord(kind=kind, gap=gap, block=block, dirty=dirty))

    def write(self, record: TraceRecord) -> None:
        if self._file is None:
            raise TraceFormatError("TraceWriter used outside its context")
        self._file.write(record.format() + "\n")
        self.records_written += 1


class TraceReader:
    """Reads a trace file back as workload events."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)
        if not self._path.exists():
            raise TraceFormatError(f"trace file not found: {self._path}")

    def records(self) -> Iterator[TraceRecord]:
        with self._path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                yield TraceRecord.parse(stripped, lineno)

    def events(self) -> Iterator[WorkloadEvent]:
        for record in self.records():
            yield record.as_event()

    def __iter__(self) -> Iterator[WorkloadEvent]:
        return self.events()


def write_trace(path: PathLike, events: Iterable[WorkloadEvent], header: str = "") -> int:
    """Convenience: dump *events* to *path*; returns the record count."""
    with TraceWriter(path, header=header) as writer:
        for event in events:
            writer.write_event(event)
        return writer.records_written
