"""Per-benchmark traffic profiles.

Nine memory-intensive SPEC2006 benchmarks are modelled (paper Table VII).
MPKIs come straight from the paper; the locality parameters encode each
benchmark's well-known qualitative behaviour (streaming vs. pointer
chasing vs. stencil reuse) scaled to the simulator's footprint. GemsFDTD's
tiers are shaped to reproduce the paper's Table III: roughly 1% of touched
regions take ~77% of writes at short intervals, a smaller tier takes ~16%
at medium intervals, and a huge tail is written rarely or once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.errors import ConfigError
from repro.workloads.synthetic import RegionProfile


@dataclass(frozen=True)
class BenchmarkProfile:
    """A named benchmark: its paper MPKI and its traffic shape."""

    name: str
    paper_mpki: float
    traffic: RegionProfile

    def scaled_footprint(self, factor: float) -> "BenchmarkProfile":
        """Shrink/grow every region-count parameter by *factor* (>0),
        preserving tier proportions. Used to fit workloads into scaled
        memory configurations."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")

        def scale(n: int, minimum: int) -> int:
            return max(minimum, int(round(n * factor)))

        t = self.traffic
        traffic = replace(
            t,
            footprint_regions=scale(t.footprint_regions, 64),
            hot_regions=scale(t.hot_regions, 4),
            warm_regions=scale(t.warm_regions, 8),
        )
        return BenchmarkProfile(self.name, self.paper_mpki, traffic)


def _profile(name: str, mpki: float, **kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(name, mpki, RegionProfile(mpki=mpki, **kwargs))


#: The nine single benchmarks of paper Table VII.
BENCHMARKS: Dict[str, BenchmarkProfile] = {
    # bwaves: blocked stencil solver — strong write reuse over mid-sized
    # working set, moderate MPKI.
    "bwaves": _profile(
        "bwaves", 11.69,
        writeback_per_miss=0.50, footprint_regions=6144,
        hot_regions=96, warm_regions=384,
        hot_write_share=0.79, warm_write_share=0.13, streaming_fraction=0.02,
        read_hot_share=0.50, hot_working_blocks=40,
    ),
    # GemsFDTD: finite-difference time domain — the paper's Table III
    # benchmark; hot field arrays rewritten every timestep.
    "GemsFDTD": _profile(
        "GemsFDTD", 26.56,
        writeback_per_miss=0.55, footprint_regions=16384,
        hot_regions=144, warm_regions=512,
        hot_write_share=0.80, warm_write_share=0.14, streaming_fraction=0.02,
        read_hot_share=0.45, hot_working_blocks=48,
    ),
    # hmmer: profile HMM search — tiny hot working set, compute bound.
    "hmmer": _profile(
        "hmmer", 2.84,
        writeback_per_miss=0.40, footprint_regions=1024,
        hot_regions=32, warm_regions=96,
        hot_write_share=0.85, warm_write_share=0.08, streaming_fraction=0.01,
        read_hot_share=0.70, hot_working_blocks=32,
    ),
    # lbm: lattice-Boltzmann — write-heavy grid sweeps. At 4KB-region
    # granularity the repeated timestep sweeps give most regions
    # short-interval write reuse; only a small write-once tail remains.
    "lbm": _profile(
        "lbm", 55.15,
        writeback_per_miss=0.65, footprint_regions=20480,
        hot_regions=192, warm_regions=512,
        hot_write_share=0.80, warm_write_share=0.10, streaming_fraction=0.04,
        read_hot_share=0.40, hot_working_blocks=56,
    ),
    # leslie3d: stencil CFD — similar to bwaves, larger footprint.
    "leslie3d": _profile(
        "leslie3d", 10.46,
        writeback_per_miss=0.48, footprint_regions=8192,
        hot_regions=112, warm_regions=448,
        hot_write_share=0.77, warm_write_share=0.14, streaming_fraction=0.02,
        read_hot_share=0.48, hot_working_blocks=40,
    ),
    # libquantum: one large array swept repeatedly by successive quantum
    # gates. Block-level locality is streaming, but 4KB regions are
    # re-swept at millisecond intervals, so region-level write reuse is
    # high; the write-once tail covers initialisation and growth.
    "libquantum": _profile(
        "libquantum", 52.07,
        writeback_per_miss=0.45, footprint_regions=16384,
        hot_regions=96, warm_regions=384,
        hot_write_share=0.74, warm_write_share=0.12, streaming_fraction=0.08,
        read_hot_share=0.30, hot_working_blocks=64,
    ),
    # mcf: pointer-chasing over a huge graph — read-dominated, scattered
    # writes with a warm tier of frequently updated nodes.
    "mcf": _profile(
        "mcf", 73.42,
        writeback_per_miss=0.30, footprint_regions=24576,
        hot_regions=96, warm_regions=768,
        hot_write_share=0.72, warm_write_share=0.22, streaming_fraction=0.00,
        read_hot_share=0.30, hot_working_blocks=24, zipf_alpha=0.9,
    ),
    # milc: lattice QCD — large working set, moderate reuse.
    "milc": _profile(
        "milc", 34.40,
        writeback_per_miss=0.50, footprint_regions=12288,
        hot_regions=128, warm_regions=640,
        hot_write_share=0.74, warm_write_share=0.14, streaming_fraction=0.04,
        read_hot_share=0.40, hot_working_blocks=48,
    ),
    # zeusmp: astrophysical CFD — moderate MPKI, decent locality.
    "zeusmp": _profile(
        "zeusmp", 7.64,
        writeback_per_miss=0.46, footprint_regions=6144,
        hot_regions=96, warm_regions=320,
        hot_write_share=0.75, warm_write_share=0.14, streaming_fraction=0.02,
        read_hot_share=0.52, hot_working_blocks=36,
    ),
}


def benchmark_names() -> List[str]:
    """Benchmark names in the paper's (alphabetical) order."""
    return sorted(BENCHMARKS, key=str.lower)


def get_benchmark(name: str) -> BenchmarkProfile:
    """Lookup by name; accepts the paper's ``bwave`` alias for bwaves."""
    if name == "bwave":
        name = "bwaves"
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(benchmark_names())
        raise ConfigError(f"unknown benchmark {name!r}; known: {known}") from None
