"""Instruction-level access generator for full-hierarchy runs.

Unlike :class:`~repro.workloads.synthetic.RegionTrafficGenerator`, which
emits LLC-level traffic directly, this generator produces raw CPU
loads/stores with cache-friendly short-range reuse, to be filtered through
:class:`~repro.cache.hierarchy.CacheHierarchy`. It is used by integration
tests and examples to validate that the fast LLC-level path and the full
hierarchy produce the same qualitative traffic structure.

Model: a working-set hierarchy. Each access either re-touches a recently
used block (drawn from a bounded recency pool, hitting in L1/L2), touches
a block of the current *frame* of the footprint (LLC-resident), or jumps
to a new frame (LLC miss territory). Stores follow the same distribution
with a configurable fraction.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Tuple

from repro.errors import ConfigError

#: One CPU access: (gap_instructions, block, is_write).
CpuAccess = Tuple[int, int, bool]


@dataclass(frozen=True)
class CpuTraceProfile:
    """Shape of an instruction-level access stream.

    Attributes:
        accesses_per_kilo_instr: Memory accesses per 1000 instructions
            (loads+stores reaching the L1D).
        store_fraction: Fraction of accesses that are stores.
        reuse_fraction: Probability an access re-touches the recency pool
            (L1/L2 hits).
        pool_blocks: Size of the recency pool.
        frame_blocks: Blocks per footprint frame (LLC-resident region).
        footprint_blocks: Total footprint.
        frame_jump_prob: Probability an access abandons the current frame.
    """

    accesses_per_kilo_instr: float = 300.0
    store_fraction: float = 0.35
    reuse_fraction: float = 0.80
    pool_blocks: int = 256
    frame_blocks: int = 4096
    footprint_blocks: int = 1 << 20
    frame_jump_prob: float = 0.002

    def __post_init__(self) -> None:
        if self.accesses_per_kilo_instr <= 0:
            raise ConfigError("accesses_per_kilo_instr must be positive")
        if not 0 <= self.store_fraction <= 1:
            raise ConfigError("store_fraction must be in [0,1]")
        if not 0 <= self.reuse_fraction <= 1:
            raise ConfigError("reuse_fraction must be in [0,1]")
        if self.pool_blocks <= 0 or self.frame_blocks <= 0:
            raise ConfigError("pool/frame sizes must be positive")
        if self.footprint_blocks < self.frame_blocks:
            raise ConfigError("footprint smaller than one frame")
        if not 0 <= self.frame_jump_prob <= 1:
            raise ConfigError("frame_jump_prob must be in [0,1]")


class CpuAccessGenerator:
    """Deterministic infinite stream of CPU accesses."""

    def __init__(
        self, profile: CpuTraceProfile, base_block: int = 0, seed: int = 0
    ) -> None:
        self.profile = profile
        self.base_block = base_block
        self._rng = random.Random((seed << 8) ^ 0xACCE55 ^ base_block)
        self._pool: Deque[int] = deque(maxlen=profile.pool_blocks)
        self._frame_origin = 0
        self._mean_gap = 1000.0 / profile.accesses_per_kilo_instr

    def __iter__(self) -> Iterator[CpuAccess]:
        return self._generate()

    def _generate(self) -> Iterator[CpuAccess]:
        rng = self._rng
        p = self.profile
        while True:
            gap = max(1, int(rng.expovariate(1.0 / self._mean_gap)))
            block = self._pick_block(rng)
            is_write = rng.random() < p.store_fraction
            yield (gap, self.base_block + block, is_write)

    def _pick_block(self, rng: random.Random) -> int:
        p = self.profile
        if self._pool and rng.random() < p.reuse_fraction:
            block = self._pool[rng.randrange(len(self._pool))]
        else:
            if rng.random() < p.frame_jump_prob or not self._pool:
                max_origin = p.footprint_blocks - p.frame_blocks
                self._frame_origin = rng.randrange(max_origin + 1)
            block = self._frame_origin + rng.randrange(p.frame_blocks)
            self._pool.append(block)
        return block
