"""Region-tier synthetic traffic generator.

The generator models the write-locality structure the paper measures in
Section III-C / Table III: a small set of *hot* regions receives most
writes at short intervals, a *warm* tier sits near the hotness boundary,
and a vast *cold* tail is written rarely or once. Reads follow a related
but independent mixture, plus an optional *streaming* component that
sweeps the footprint touching each line once (which the RRM's dirty-write
filter must ignore).

Mechanics per LLC-miss cycle:

1. draw an instruction gap (geometric, mean ``1000 / mpki``);
2. emit one memory READ from the read mixture;
3. with probability ``writeback_per_miss`` emit a write group: a few
   REGISTER events (LLC stores; dirty for reuse traffic, clean for
   streaming) followed by one memory WRITE to the same block.

Hot regions cycle through a per-region working set of blocks so each block
is written repeatedly — the temporal locality that makes short-retention
writes safe. All randomness is seeded; a given (profile, seed) pair always
produces the identical stream.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ConfigError
from repro.workloads.events import EV_READ, EV_REGISTER, EV_WRITE, WorkloadEvent


@dataclass(frozen=True)
class RegionProfile:
    """Statistical shape of one benchmark's LLC-level traffic.

    All shares are fractions of the relevant traffic class; region counts
    are in 4KB regions of the workload's private footprint.

    Attributes:
        mpki: LLC read misses per 1000 instructions (paper Table VII).
        writeback_per_miss: Memory writes per memory read.
        registrations_per_write: LLC store registrations preceding each
            memory writeback (dirty-line reuse in the LLC).
        footprint_regions: Total 4KB regions the workload touches.
        hot_regions: Regions in the hot tier.
        warm_regions: Regions in the warm (near-threshold) tier.
        hot_write_share / warm_write_share: Fraction of write groups
            targeting each tier (the rest is cold/streaming).
        streaming_fraction: Fraction of write groups that are streaming
            (clean registrations, write-once blocks).
        read_hot_share: Fraction of reads hitting the hot tier.
        hot_working_blocks: Blocks actively rewritten within a hot region
            (<= 64); writes cycle over these.
        zipf_alpha: Skew of popularity within the hot tier.
        gap_cv_shape: >=1 burstiness knob — gaps are drawn geometrically
            and multiplied by this for a fraction of long gaps.
        cold_dirty_fraction: Fraction of cold-tier writes whose LLC line
            was already dirty (occasional reuse in the tail).
        phase_interval_writes: Write groups between program phase changes
            (0 = stationary). On a phase change a fraction of the hot
            tier is swapped with cold regions — the behaviour the RRM's
            decay mechanism exists for (obsolete hot regions must stop
            being refreshed).
        phase_rotation_fraction: Share of the hot tier replaced per phase
            change.
        tier_cluster_regions: Hot/warm regions are allocated in contiguous
            runs of this many 4KB regions (hot arrays are contiguous in
            real programs — this is why the paper finds 8KB/16KB RRM
            entries as accurate as 4KB ones).
    """

    mpki: float
    writeback_per_miss: float = 0.45
    registrations_per_write: float = 3.5
    footprint_regions: int = 8192
    hot_regions: int = 96
    warm_regions: int = 512
    hot_write_share: float = 0.70
    warm_write_share: float = 0.18
    streaming_fraction: float = 0.05
    read_hot_share: float = 0.45
    hot_working_blocks: int = 32
    zipf_alpha: float = 0.7
    gap_cv_shape: float = 1.0
    cold_dirty_fraction: float = 0.2
    phase_interval_writes: int = 30000
    phase_rotation_fraction: float = 0.2
    tier_cluster_regions: int = 8

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ConfigError("mpki must be positive")
        if not 0 <= self.writeback_per_miss <= 4:
            raise ConfigError("writeback_per_miss out of range")
        if self.registrations_per_write < 1:
            raise ConfigError("each writeback needs at least one registration")
        if self.footprint_regions < self.hot_regions + self.warm_regions:
            raise ConfigError("footprint smaller than hot+warm tiers")
        shares = self.hot_write_share + self.warm_write_share + self.streaming_fraction
        if shares > 1.0 + 1e-9:
            raise ConfigError("write shares exceed 1.0")
        if not 0 <= self.read_hot_share <= 1:
            raise ConfigError("read_hot_share must be in [0,1]")
        if not 1 <= self.hot_working_blocks <= 64:
            raise ConfigError("hot_working_blocks must be in [1, 64]")
        if self.zipf_alpha < 0:
            raise ConfigError("zipf_alpha must be non-negative")
        if not 0 <= self.cold_dirty_fraction <= 1:
            raise ConfigError("cold_dirty_fraction must be in [0,1]")
        if self.phase_interval_writes < 0:
            raise ConfigError("phase_interval_writes must be non-negative")
        if not 0 <= self.phase_rotation_fraction <= 1:
            raise ConfigError("phase_rotation_fraction must be in [0,1]")
        if self.tier_cluster_regions < 1:
            raise ConfigError("tier_cluster_regions must be positive")

    @property
    def cold_write_share(self) -> float:
        return max(
            0.0,
            1.0 - self.hot_write_share - self.warm_write_share - self.streaming_fraction,
        )

    @property
    def mean_gap(self) -> float:
        """Mean instructions between LLC misses."""
        return 1000.0 / self.mpki


def _log_spread_cdf(n: int, rng: random.Random) -> List[float]:
    """Cumulative probabilities with per-item weights log-uniform in
    [0.5, 6.0] — a ~12x popularity spread across warm regions, centred so
    that at the default hot_threshold a majority of warm regions qualify
    as hot while a meaningful population sits just below (giving the
    threshold sweep its gradient)."""
    import math

    weights = [math.exp(rng.uniform(math.log(0.5), math.log(6.0))) for _ in range(n)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


def _zipf_cdf(n: int, alpha: float) -> List[float]:
    """Cumulative probabilities of a Zipf(alpha) distribution over n items."""
    weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


#: Blocks per 4KB region (64-byte blocks).
BLOCKS_PER_REGION = 64


class RegionTrafficGenerator:
    """Generates one core's infinite LLC-level event stream.

    Args:
        profile: Traffic shape.
        base_block: First block of this core's private footprint (cores
            get disjoint windows, like separate program copies).
        seed: RNG seed; streams are fully deterministic per (profile,
            base_block, seed).
        warm_period_events: A warm region is revisited roughly every this
            many write groups — tuned so warm regions straddle the
            hot_threshold boundary.
    """

    def __init__(
        self,
        profile: RegionProfile,
        base_block: int = 0,
        seed: int = 0,
        warm_period_events: Optional[int] = None,
    ) -> None:
        if base_block < 0:
            raise ConfigError("base_block must be non-negative")
        self.profile = profile
        self.base_block = base_block
        self._rng = random.Random((seed << 16) ^ 0x5EED ^ base_block)

        p = profile
        shuffler = random.Random(seed ^ 0xC0FFEE)
        # Tiers are allocated in contiguous runs ("clusters") so spatially
        # adjacent regions share behaviour, as hot arrays do in real
        # programs; the cluster order itself is shuffled.
        cluster = min(p.tier_cluster_regions, p.footprint_regions)
        clusters = [
            list(range(start, min(start + cluster, p.footprint_regions)))
            for start in range(0, p.footprint_regions, cluster)
        ]
        shuffler.shuffle(clusters)
        region_ids = [region for chunk in clusters for region in chunk]
        self._hot = region_ids[: p.hot_regions]
        self._warm = region_ids[p.hot_regions : p.hot_regions + p.warm_regions]
        self._cold_start = p.hot_regions + p.warm_regions
        self._cold_ids = region_ids[self._cold_start :]

        self._hot_cdf = _zipf_cdf(len(self._hot), p.zipf_alpha) if self._hot else []
        #: Per-hot-region rotating write cursor over the working blocks.
        self._hot_cursor = [0] * len(self._hot)
        # Warm regions get log-spread popularity so their per-interval
        # dirty-write counts straddle the hot_threshold boundary: the most
        # popular warm regions qualify as hot at low thresholds, the least
        # popular never do. This is what gives the hot_threshold sweep
        # (paper Fig. 11) its smooth performance/lifetime gradient.
        self._warm_cdf = _log_spread_cdf(len(self._warm), shuffler) if self._warm else []
        self._stream_block = 0
        self._reads_emitted = 0
        self._writes_emitted = 0
        self.phase_changes = 0

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[WorkloadEvent]:
        return self._generate()

    def _generate(self) -> Iterator[WorkloadEvent]:
        rng = self._rng
        p = self.profile
        mean_gap = p.mean_gap
        while True:
            gap = self._draw_gap(rng, mean_gap)
            yield (EV_READ, gap, self._pick_read_block(rng), False)
            self._reads_emitted += 1
            if rng.random() < p.writeback_per_miss:
                yield from self._write_group(rng)

    def _draw_gap(self, rng: random.Random, mean_gap: float) -> int:
        gap = rng.expovariate(1.0 / mean_gap) if mean_gap > 0 else 0.0
        if self.profile.gap_cv_shape > 1.0 and rng.random() < 0.05:
            gap *= self.profile.gap_cv_shape
        return max(1, int(gap))

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def _pick_read_block(self, rng: random.Random) -> int:
        p = self.profile
        roll = rng.random()
        if roll < p.read_hot_share and self._hot:
            region = self._pick_hot_region(rng)
            offset = rng.randrange(BLOCKS_PER_REGION)
        elif roll < p.read_hot_share + p.streaming_fraction:
            region, offset = self._advance_stream()
        else:
            region = self._cold_ids[rng.randrange(len(self._cold_ids))]
            offset = rng.randrange(BLOCKS_PER_REGION)
        return self._block_of(region, offset)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def _write_group(self, rng: random.Random) -> Iterator[WorkloadEvent]:
        p = self.profile
        roll = rng.random()
        if roll < p.hot_write_share and self._hot:
            block = self._next_hot_write_block(rng)
            dirty = True
        elif roll < p.hot_write_share + p.warm_write_share and self._warm:
            block = self._next_warm_write_block(rng)
            dirty = True
        elif roll < p.hot_write_share + p.warm_write_share + p.streaming_fraction:
            region, offset = self._advance_stream()
            block = self._block_of(region, offset)
            dirty = False  # streaming lines are written once: never dirty
        else:
            region = self._cold_ids[rng.randrange(len(self._cold_ids))]
            block = self._block_of(region, rng.randrange(BLOCKS_PER_REGION))
            dirty = rng.random() < p.cold_dirty_fraction

        n_regs = self._registration_count(rng)
        for _ in range(n_regs):
            yield (EV_REGISTER, 0, block, dirty)
        yield (EV_WRITE, 0, block, False)
        self._writes_emitted += 1
        if (
            p.phase_interval_writes
            and self._writes_emitted % p.phase_interval_writes == 0
        ):
            self._rotate_phase(rng)

    def _rotate_phase(self, rng: random.Random) -> None:
        """Program phase change: retire part of the hot tier into the cold
        pool and promote random cold regions in its place."""
        p = self.profile
        if not self._hot or not self._cold_ids:
            return
        count = max(1, int(len(self._hot) * p.phase_rotation_fraction))
        for _ in range(count):
            hot_index = rng.randrange(len(self._hot))
            cold_index = rng.randrange(len(self._cold_ids))
            self._hot[hot_index], self._cold_ids[cold_index] = (
                self._cold_ids[cold_index],
                self._hot[hot_index],
            )
            self._hot_cursor[hot_index] = 0
        self.phase_changes += 1

    def _registration_count(self, rng: random.Random) -> int:
        mean = self.profile.registrations_per_write
        base = int(mean)
        return base + (1 if rng.random() < (mean - base) else 0)

    def _pick_hot_region(self, rng: random.Random) -> int:
        index = bisect.bisect_left(self._hot_cdf, rng.random())
        index = min(index, len(self._hot) - 1)
        return self._hot[index]

    def _next_hot_write_block(self, rng: random.Random) -> int:
        index = bisect.bisect_left(self._hot_cdf, rng.random())
        index = min(index, len(self._hot) - 1)
        region = self._hot[index]
        # Cycle over the region's working blocks with slight jitter so the
        # short_retention_vector fills progressively, as in real reuse.
        cursor = self._hot_cursor[index]
        self._hot_cursor[index] = (cursor + 1) % self.profile.hot_working_blocks
        offset = cursor
        if rng.random() < 0.1:
            offset = rng.randrange(self.profile.hot_working_blocks)
        return self._block_of(region, offset)

    def _next_warm_write_block(self, rng: random.Random) -> int:
        index = bisect.bisect_left(self._warm_cdf, rng.random())
        index = min(index, len(self._warm) - 1)
        region = self._warm[index]
        # Warm writes spread over the whole region: halving the entry
        # coverage size halves each entry's dirty-write accumulation rate,
        # which is the paper's stated reason 2KB entries underperform.
        offset = rng.randrange(BLOCKS_PER_REGION)
        return self._block_of(region, offset)

    def _advance_stream(self) -> "tuple[int, int]":
        # The streaming pointer sweeps the cold portion of the footprint.
        n_cold = max(1, len(self._cold_ids))
        index = (self._stream_block // BLOCKS_PER_REGION) % n_cold
        offset = self._stream_block % BLOCKS_PER_REGION
        self._stream_block += 1
        return self._cold_ids[index], offset

    def _block_of(self, region: int, offset: int) -> int:
        return self.base_block + region * BLOCKS_PER_REGION + offset

    # ------------------------------------------------------------------
    @property
    def footprint_blocks(self) -> int:
        return self.profile.footprint_regions * BLOCKS_PER_REGION
