"""Workload composition: single-benchmark and mixed workloads.

Paper Section V: a single-benchmark workload runs 4 identical copies of
one benchmark (each in its own address range); MIX_1 and MIX_2 combine
four different benchmarks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigError
from repro.workloads.spec2006 import BENCHMARKS, BenchmarkProfile, get_benchmark

#: The paper's two mixed workloads (Table VII).
MIXES: Dict[str, List[str]] = {
    "MIX_1": ["mcf", "bwaves", "zeusmp", "milc"],
    "MIX_2": ["GemsFDTD", "libquantum", "lbm", "leslie3d"],
}


def mix_profiles(name: str) -> List[BenchmarkProfile]:
    """The four per-core profiles of a mixed workload."""
    try:
        members = MIXES[name]
    except KeyError:
        raise ConfigError(
            f"unknown mix {name!r}; known: {', '.join(sorted(MIXES))}"
        ) from None
    return [get_benchmark(member) for member in members]


def workload_profiles(name: str, n_cores: int = 4) -> List[BenchmarkProfile]:
    """Per-core profiles for any workload name.

    A benchmark name yields *n_cores* copies of that benchmark; a mix name
    yields its members (and requires ``n_cores == 4``, as in the paper).
    """
    if name in MIXES:
        profiles = mix_profiles(name)
        if n_cores != len(profiles):
            raise ConfigError(
                f"mix {name} defines {len(profiles)} cores, requested {n_cores}"
            )
        return profiles
    profile = get_benchmark(name)
    return [profile] * n_cores


def all_workload_names() -> List[str]:
    """The paper's full evaluation set: 9 benchmarks + 2 mixes."""
    return sorted(BENCHMARKS, key=str.lower) + sorted(MIXES)
