"""Workload event encoding.

Events are plain tuples ``(kind, gap, block, dirty)`` — this is the
hottest data path in the simulator, so we avoid per-event object overhead:

- ``kind``: one of :data:`EV_READ`, :data:`EV_WRITE`, :data:`EV_REGISTER`;
- ``gap``: instructions retired since the previous event;
- ``block``: 64-byte block index the event targets;
- ``dirty``: for registrations, whether the written LLC line was already
  dirty (always False otherwise).
"""

from __future__ import annotations

from typing import Tuple

#: Memory read — an LLC miss that must fetch from PCM.
EV_READ = 0
#: Memory write — a dirty LLC victim written back to PCM.
EV_WRITE = 1
#: LLC write registration — a dirty L2 victim landing in the LLC.
EV_REGISTER = 2

WorkloadEvent = Tuple[int, int, int, bool]

_KIND_NAMES = {EV_READ: "read", EV_WRITE: "write", EV_REGISTER: "register"}


def event_kind_name(kind: int) -> str:
    """Readable name of an event kind (for traces and debugging)."""
    try:
        return _KIND_NAMES[kind]
    except KeyError:
        raise ValueError(f"unknown event kind: {kind}") from None
