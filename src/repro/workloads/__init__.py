"""Synthetic workload generators.

SPEC2006 binaries and traces are not redistributable, so each benchmark is
replaced by a statistical generator calibrated to the paper's published
characteristics: LLC MPKI (Table VII) and region-level write locality
(Table III). See DESIGN.md, substitution 1.

Generators emit *LLC-level* event streams — memory reads (LLC misses),
memory writes (LLC dirty writebacks) and LLC write registrations — that
feed the CPU model directly. The :mod:`repro.workloads.cpu_trace` module
additionally provides instruction-level streams for runs through the full
cache hierarchy.
"""

from repro.workloads.events import (
    EV_READ,
    EV_REGISTER,
    EV_WRITE,
    WorkloadEvent,
    event_kind_name,
)
from repro.workloads.synthetic import RegionProfile, RegionTrafficGenerator
from repro.workloads.spec2006 import (
    BENCHMARKS,
    BenchmarkProfile,
    benchmark_names,
    get_benchmark,
)
from repro.workloads.mixes import MIXES, mix_profiles, workload_profiles
from repro.workloads.trace import TraceReader, TraceRecord, TraceWriter
from repro.workloads.cpu_trace import CpuAccessGenerator, CpuTraceProfile

__all__ = [
    "EV_READ",
    "EV_REGISTER",
    "EV_WRITE",
    "WorkloadEvent",
    "event_kind_name",
    "RegionProfile",
    "RegionTrafficGenerator",
    "BENCHMARKS",
    "BenchmarkProfile",
    "benchmark_names",
    "get_benchmark",
    "MIXES",
    "mix_profiles",
    "workload_profiles",
    "TraceReader",
    "TraceRecord",
    "TraceWriter",
    "CpuAccessGenerator",
    "CpuTraceProfile",
]
