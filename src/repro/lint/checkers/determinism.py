"""Determinism rules: RL001 no-wallclock, RL002 seeded-rng.

The paper's trade-off curves (Figs. 7-13) are reproduced by replaying
identical event streams; any wall-clock read or global-RNG draw on the
simulation path makes two runs with the same seed diverge. These two
rules make that class of bug un-mergeable instead of un-debuggable.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.base import Checker, register
from repro.lint.context import SIM_PATH_PACKAGES, LintModule
from repro.lint.finding import Finding
from repro.lint.resolve import ImportMap, resolve_call_target

#: Callables that read the host clock. ``perf_counter`` is included on
#: purpose: even "just measuring" on the sim path invites feeding host
#: time into simulated state.
WALLCLOCK_TARGETS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The module-level convenience API of :mod:`random` — every call draws
#: from (or reseeds) the hidden global generator. ``random.Random`` /
#: ``random.SystemRandom`` construction is deliberately absent: an
#: injected seeded instance is the sanctioned pattern.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: numpy's legacy global-state RNG surface (``np.random.<fn>``).
NUMPY_GLOBAL_FUNCS = frozenset(
    {
        "choice",
        "exponential",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "seed",
        "shuffle",
        "uniform",
    }
)


@register
class WallClockChecker(Checker):
    """RL001: no wall-clock reads in simulation-path packages.

    Simulated time is ``Simulator.now`` and nothing else. Host-time
    measurement belongs in the orchestration/telemetry layers (which
    this rule does not scan); the rare legitimate sim-path use — e.g.
    reporting host elapsed time alongside results — carries an inline
    pragma stating why.
    """

    rule_id = "RL001"
    name = "no-wallclock"
    severity = "error"
    packages = SIM_PATH_PACKAGES

    def check(self, module: LintModule) -> List[Finding]:
        imports = ImportMap(module.tree)
        out: List[Finding] = []
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, imports)
            if target in WALLCLOCK_TARGETS:
                self.emit(
                    out,
                    module,
                    node,
                    f"wall-clock read `{target}()` on the simulation path",
                    hint="use Simulator.now (simulated ns); host-time "
                    "measurement belongs in telemetry/resilience, or "
                    "justify with `# repro-lint: disable=RL001`",
                )
        return out


@register
class SeededRngChecker(Checker):
    """RL002: randomness must come from an injected seeded generator.

    The module-level ``random.*`` / ``numpy.random.*`` APIs share hidden
    global state: import order, test order, or a library reseeding it
    changes every downstream draw. Components instead accept a seed and
    own a ``random.Random`` instance (see workloads/cpu/cache for the
    pattern).
    """

    rule_id = "RL002"
    name = "seeded-rng"
    severity = "error"
    packages = None  # global RNG state is poison everywhere

    def check(self, module: LintModule) -> List[Finding]:
        imports = ImportMap(module.tree)
        out: List[Finding] = []
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, imports)
            if target is None:
                continue
            if (
                target.startswith("random.")
                and target.split(".", 1)[1] in GLOBAL_RANDOM_FUNCS
            ):
                self.emit(
                    out,
                    module,
                    node,
                    f"module-level `{target}()` draws from the global RNG",
                    hint="thread a seeded `random.Random(seed)` instance "
                    "through the constructor instead",
                )
            elif target.startswith("numpy.random."):
                func = target.rsplit(".", 1)[1]
                if func in NUMPY_GLOBAL_FUNCS:
                    self.emit(
                        out,
                        module,
                        node,
                        f"global numpy RNG call `{target}()`",
                        hint="use `numpy.random.default_rng(seed)` held by "
                        "the component",
                    )
                elif func == "default_rng" and not node.args and not node.keywords:
                    self.emit(
                        out,
                        module,
                        node,
                        "`numpy.random.default_rng()` without a seed is "
                        "entropy-seeded",
                        hint="pass an explicit seed derived from the run "
                        "configuration",
                    )
        return out
