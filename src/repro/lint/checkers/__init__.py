"""Built-in checker set.

Importing this package registers every shipped rule; :func:`~repro.lint.
base.all_checkers` does so lazily. Rules are grouped by the invariant
family they protect, one module per family.
"""

from repro.lint.checkers.concurrency import (
    ExceptionSafeLockChecker,
    ForkThreadSafetyChecker,
    LockDisciplineChecker,
    WallclockLeaseChecker,
)
from repro.lint.checkers.determinism import SeededRngChecker, WallClockChecker
from repro.lint.checkers.durability import (
    AtomicPersistenceChecker,
    SilentSwallowChecker,
)
from repro.lint.checkers.events import EventDisciplineChecker
from repro.lint.checkers.metrics import MetricsCoverageChecker
from repro.lint.checkers.units import FloatTimeEqualityChecker, UnitMixingChecker

__all__ = [
    "AtomicPersistenceChecker",
    "EventDisciplineChecker",
    "ExceptionSafeLockChecker",
    "FloatTimeEqualityChecker",
    "ForkThreadSafetyChecker",
    "LockDisciplineChecker",
    "MetricsCoverageChecker",
    "SeededRngChecker",
    "SilentSwallowChecker",
    "UnitMixingChecker",
    "WallClockChecker",
    "WallclockLeaseChecker",
]
