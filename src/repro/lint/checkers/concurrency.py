"""Concurrency rules: RL007 lock-discipline, RL009 fork-thread-safety,
RL010 exception-safe-lock, RL011 wallclock-lease-logic.

PR 6 made exactly-once claiming depend on real concurrency primitives:
flock sidecars, O_EXCL fallbacks, lease records, daemon threads. These
rules lint the orchestration packages (``resilience``, ``fabric``,
``obs``) for the bug classes that silently break exactly-once semantics
and serial/parallel bit-identity. They share the per-module call graph
and lock-context dataflow in :mod:`repro.lint.callgraph`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.lint.base import Checker, register
from repro.lint.callgraph import ModuleCallGraph, is_lock_expr, terminal_name
from repro.lint.checkers.determinism import WALLCLOCK_TARGETS
from repro.lint.context import ORCH_PATH_PACKAGES, LintModule
from repro.lint.finding import Finding
from repro.lint.resolve import ImportMap, dotted_parts, resolve_call_target

#: Raw shared-file mutation primitives that must only run under a lock:
#: unbuffered fd writes and in-place truncation (torn-tail repair).
RAW_WRITE_ORIGINS = frozenset({"os.write", "os.pwrite", "os.ftruncate"})

#: Thread/process constructor origins.
THREAD_ORIGINS = frozenset({"threading.Thread", "threading.Timer"})
PROCESS_ORIGINS = frozenset({"multiprocessing.Process"})

#: Words marking lease/retry/timeout *logic* — decisions that change
#: behaviour, as opposed to passive measurement.
_LEASE_VOCAB_RE = re.compile(
    r"lease|deadline|expire|expiry|timeout|stale|retry|not_before|backoff|grace",
    re.IGNORECASE,
)

#: Words marking passive measurement: recording how long something took
#: is legitimate wall-clock use even in lease-adjacent functions.
_MEASURE_VOCAB_RE = re.compile(
    r"busy|wall|elapsed|started|t0|recorded|measured|stamp|unix",
    re.IGNORECASE,
)


def _statement_of(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Optional[ast.stmt]:
    """Innermost statement containing *node*."""
    cursor: Optional[ast.AST] = node
    while cursor is not None and not isinstance(cursor, ast.stmt):
        cursor = parents.get(cursor)
    return cursor if isinstance(cursor, ast.stmt) else None


def _sibling_block(
    stmt: ast.stmt, parents: Dict[ast.AST, ast.AST]
) -> Tuple[List[ast.stmt], int]:
    """The statement list containing *stmt* and its index there."""
    parent = parents.get(stmt)
    if parent is not None:
        for field in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(parent, field, None)
            if isinstance(block, list) and stmt in block:
                return block, block.index(stmt)
    return [stmt], 0


@register
class LockDisciplineChecker(Checker):
    """RL007: shared-file mutation primitives only under a lock.

    The shared journal's exactly-once guarantee rests on every
    read-decide-append cycle running inside ``with self.lock``. Raw fd
    writes (``os.write``), in-place ``truncate()`` repair, and calls to
    ``*_locked``-suffixed helpers are only correct inside a lock scope —
    directly, or in a function the dataflow proves is always entered
    with the lock held.
    """

    rule_id = "RL007"
    name = "lock-discipline"
    severity = "error"
    packages = ORCH_PATH_PACKAGES

    def check(self, module: LintModule) -> List[Finding]:
        imports = ImportMap(module.tree)
        graph = ModuleCallGraph(module.tree, imports)
        out: List[Finding] = []
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            reason = self._guarded_operation(node, imports)
            if reason is None:
                continue
            if graph.in_lock_context(node):
                continue
            self.emit(
                out,
                module,
                node,
                f"{reason} outside any lock scope",
                hint="wrap the call in `with <lock>:`, or move it into a "
                "`*_locked` helper whose callers hold the lock "
                "(see SharedJournal._append_locked)",
            )
        return out

    @staticmethod
    def _guarded_operation(
        node: ast.Call, imports: ImportMap
    ) -> Optional[str]:
        origin = resolve_call_target(node.func, imports)
        if origin in RAW_WRITE_ORIGINS:
            return f"raw shared-file write `{origin}()`"
        callee = terminal_name(node.func)
        if callee is None:
            return None
        if callee.endswith("_locked"):
            return f"call to lock-requiring helper `{callee}()`"
        if callee == "truncate" and isinstance(node.func, ast.Attribute):
            return "in-place `truncate()` of a shared file"
        return None


@register
class ForkThreadSafetyChecker(Checker):
    """RL009: keep threads and worker forks apart.

    A ``fork()`` snapshots only the calling thread; any lock another
    thread holds at fork time is copied *held forever* into the child.
    Two patterns are flagged: (a) modules that construct both threads
    and worker processes — the fork may inherit a wedged lock; and (b)
    daemon threads whose target (resolved intra-module) transitively
    takes a lock — the interpreter may kill them mid-critical-section
    at shutdown.
    """

    rule_id = "RL009"
    name = "fork-thread-safety"
    severity = "error"
    packages = ORCH_PATH_PACKAGES

    def check(self, module: LintModule) -> List[Finding]:
        imports = ImportMap(module.tree)
        graph = ModuleCallGraph(module.tree, imports)
        out: List[Finding] = []

        thread_calls: List[ast.Call] = []
        has_process = False
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_target(node.func, imports)
            callee = terminal_name(node.func)
            if origin in THREAD_ORIGINS:
                thread_calls.append(node)
            elif origin in PROCESS_ORIGINS or (
                callee == "Process" and isinstance(node.func, ast.Attribute)
            ):
                has_process = True

        for call in thread_calls:
            if has_process:
                self.emit(
                    out,
                    module,
                    call,
                    "thread created in a module that also forks worker "
                    "processes: a fork while this thread holds state "
                    "leaves the child wedged",
                    hint="keep thread use and worker spawning in separate "
                    "modules, or spawn workers before any thread starts",
                )
                continue
            self._check_daemon_target(out, module, graph, call)
        return out

    def _check_daemon_target(
        self,
        out: List[Finding],
        module: LintModule,
        graph: ModuleCallGraph,
        call: ast.Call,
    ) -> None:
        daemon = False
        target_qual: Optional[str] = None
        for kw in call.keywords:
            if kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
                daemon = bool(kw.value.value)
            elif kw.arg == "target":
                target_qual = self._resolve_target(graph, call, kw.value)
        if not daemon or target_qual is None:
            return
        for info in graph.transitive_callees(target_qual):
            if info.takes_lock:
                self.emit(
                    out,
                    module,
                    call,
                    f"daemon thread target `{target_qual}` takes a lock "
                    f"(via `{info.qualname}`): daemon threads die "
                    "mid-critical-section at interpreter shutdown",
                    hint="use a non-daemon thread joined on shutdown, or "
                    "keep daemon threads lock-free",
                    severity="warning",
                )
                return

    @staticmethod
    def _resolve_target(
        graph: ModuleCallGraph, call: ast.Call, value: ast.AST
    ) -> Optional[str]:
        if isinstance(value, ast.Name):
            return value.id if value.id in graph.functions else None
        parts = dotted_parts(value)
        if parts is None or len(parts) != 2 or parts[0] not in ("self", "cls"):
            return None
        owner = graph.owner_of(call)
        if owner is None or "." not in owner.qualname:
            return None
        cls = owner.qualname.split(".")[0]
        qual = f"{cls}.{parts[1]}"
        return qual if qual in graph.functions else None


@register
class ExceptionSafeLockChecker(Checker):
    """RL010: a bare ``.acquire()`` must have a guaranteed release.

    A lock acquired outside ``with`` and outside a ``try``/``finally``
    that releases it stays held when the critical section raises — the
    worker wedges, the lease expires, and the healer re-runs work that
    may be half-applied. ``with lock:`` is the sanctioned form.
    """

    rule_id = "RL010"
    name = "exception-safe-lock"
    severity = "error"
    packages = ORCH_PATH_PACKAGES

    #: Functions allowed to call ``.acquire()`` bare: lock wrappers.
    _EXEMPT_FUNC_RE = re.compile(r"^(__enter__|__exit__|acquire|release|_acquire.*|_release.*)$")

    def check(self, module: LintModule) -> List[Finding]:
        imports = ImportMap(module.tree)
        graph = ModuleCallGraph(module.tree, imports)
        parents = module.parent_map()
        out: List[Finding] = []
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "acquire"
                and is_lock_expr(func.value, imports)
            ):
                continue
            owner = graph.owner_of(node)
            if owner is not None and self._EXEMPT_FUNC_RE.match(
                owner.qualname.rsplit(".", 1)[-1]
            ):
                continue
            if self._released_in_finally(node, parents):
                continue
            self.emit(
                out,
                module,
                node,
                "lock `.acquire()` without a guaranteed release: an "
                "exception in the critical section leaves the lock held",
                hint="use `with <lock>:`, or `acquire()` immediately "
                "followed by `try: ... finally: <lock>.release()`",
            )
        return out

    @staticmethod
    def _released_in_finally(
        node: ast.Call, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        def releases(block: List[ast.stmt]) -> bool:
            for stmt in block:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                    ):
                        return True
            return False

        # Inside a try whose finally releases.
        cursor: Optional[ast.AST] = node
        while cursor is not None:
            parent = parents.get(cursor)
            if isinstance(parent, ast.Try) and cursor in parent.body:
                if releases(parent.finalbody):
                    return True
            cursor = parent
        # `lock.acquire()` statement immediately followed by try/finally.
        stmt = _statement_of(node, parents)
        if stmt is not None:
            block, index = _sibling_block(stmt, parents)
            if index + 1 < len(block):
                nxt = block[index + 1]
                if isinstance(nxt, ast.Try) and releases(nxt.finalbody):
                    return True
        return False


@register
class WallclockLeaseChecker(Checker):
    """RL011: lease/retry/timeout logic must use an injected clock.

    RL001 keeps wall clocks off the simulation path; this rule extends
    the idea to orchestration *decisions*. Lease expiry, retry backoff
    and supervision deadlines computed from a direct ``time.time()`` /
    ``time.monotonic()`` call cannot be unit-tested without sleeping and
    cannot be replayed; an injected ``clock=`` callable (the pattern of
    ``SharedJournal.claim_next`` and ``RunProgress``) can. Passive
    measurement (``elapsed``, ``busy_s``, ``wall_s``, ``recorded_*``)
    is exempt.
    """

    rule_id = "RL011"
    name = "wallclock-lease-logic"
    severity = "error"
    packages = ORCH_PATH_PACKAGES

    def check(self, module: LintModule) -> List[Finding]:
        imports = ImportMap(module.tree)
        graph = ModuleCallGraph(module.tree, imports)
        parents = module.parent_map()
        vocab_cache: Dict[str, bool] = {}
        out: List[Finding] = []
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, imports)
            if target not in WALLCLOCK_TARGETS:
                continue
            owner = graph.owner_of(node)
            if owner is None:
                continue  # module-level constants are not lease logic
            if not self._has_lease_vocab(owner.qualname, owner.node, vocab_cache):
                continue
            if self._is_measurement(node, parents):
                continue
            self.emit(
                out,
                module,
                node,
                f"direct `{target}()` in lease/timeout logic "
                f"(`{owner.qualname}`)",
                hint="inject the clock (e.g. a `clock=time.monotonic` "
                "parameter, as in SharedJournal.claim_next) so expiry "
                "logic is testable without sleeping",
            )
        return out

    @staticmethod
    def _has_lease_vocab(
        qualname: str, func: ast.AST, cache: Dict[str, bool]
    ) -> bool:
        if qualname not in cache:
            words: List[str] = []
            for sub in ast.walk(func):
                if isinstance(sub, ast.Name):
                    words.append(sub.id)
                elif isinstance(sub, ast.Attribute):
                    words.append(sub.attr)
                elif isinstance(sub, ast.arg):
                    words.append(sub.arg)
                elif isinstance(sub, ast.keyword) and sub.arg:
                    words.append(sub.arg)
            cache[qualname] = any(_LEASE_VOCAB_RE.search(w) for w in words)
        return cache[qualname]

    @staticmethod
    def _is_measurement(
        node: ast.Call, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        """True when the enclosing statement stores the reading under a
        measurement name (``elapsed_s = ...``, ``busy_s += ...``,
        ``FailedRun(..., elapsed_s=...)``)."""
        stmt = _statement_of(node, parents)
        if stmt is None:
            return False
        names: List[str] = []
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.append(sub.id)
                elif isinstance(sub, ast.Attribute):
                    names.append(sub.attr)
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.keyword) and sub.arg:
                names.append(sub.arg)
        return any(_MEASURE_VOCAB_RE.search(name) for name in names)
