"""Event-discipline rule: RL006.

The engine (:mod:`repro.engine.simulator`) guarantees causality at
runtime — scheduling in the past raises, ``run()`` owns the clock. This
rule catches the same violations statically, before a run ever executes
the offending path: literal negative delays, absolute literal
timestamps (which are only correct at t=0 and silently wrong after a
warm-up phase), non-positive literal periods, and handlers reaching
into another object's clock instead of scheduling an event.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.base import Checker, register
from repro.lint.context import SIM_PATH_PACKAGES, LintModule
from repro.lint.finding import Finding

_SCHEDULE_METHODS = ("schedule_after", "schedule_at", "schedule_periodic")


def _numeric_literal(node: ast.AST) -> Optional[float]:
    """Value of a (possibly negated) numeric literal, else None."""
    sign = 1.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        sign = -1.0 if isinstance(node.op, ast.USub) else 1.0
        node = node.operand
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return sign * node.value
    return None


@register
class EventDisciplineChecker(Checker):
    """RL006: scheduling calls and clock ownership.

    Patterns flagged:

    - ``schedule_after(-d, ...)`` with a literal negative delay;
    - ``schedule_at(<literal>, ...)`` — an absolute literal timestamp is
      not ``now``-relative and breaks once anything runs before it;
    - ``schedule_periodic(<literal <= 0>, ...)``;
    - assignment to ``<obj>.now`` / ``<obj>._now`` where ``<obj>`` is
      not ``self`` — only the engine advances the clock, from inside
      ``run()``; handlers schedule events instead.
    """

    rule_id = "RL006"
    name = "event-discipline"
    severity = "error"
    packages = SIM_PATH_PACKAGES

    def check(self, module: LintModule) -> List[Finding]:
        out: List[Finding] = []
        for node in module.walk():
            if isinstance(node, ast.Call):
                self._check_schedule_call(out, module, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._check_clock_mutation(out, module, node)
        return out

    # ------------------------------------------------------------------
    def _check_schedule_call(
        self, out: List[Finding], module: LintModule, node: ast.Call
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _SCHEDULE_METHODS:
            return
        if not node.args:
            return
        first = _numeric_literal(node.args[0])
        if func.attr == "schedule_after" and first is not None and first < 0:
            self.emit(
                out,
                module,
                node,
                f"schedule_after with negative delay {first:g}",
                hint="delays are non-negative ns from `now`",
            )
        elif func.attr == "schedule_at" and first is not None:
            self.emit(
                out,
                module,
                node,
                f"schedule_at with absolute literal time {first:g}",
                hint="schedule relative to the clock (`sim.now + delay` "
                "or schedule_after); literal timestamps are stale "
                "after any warm-up",
            )
        elif func.attr == "schedule_periodic" and first is not None and first <= 0:
            self.emit(
                out,
                module,
                node,
                f"schedule_periodic with non-positive period {first:g}",
                hint="periods are positive ns",
            )

    def _check_clock_mutation(
        self, out: List[Finding], module: LintModule, node: ast.AST
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr not in ("now", "_now"):
                continue
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                continue  # the clock owner updating its own state
            self.emit(
                out,
                module,
                node,
                f"direct mutation of `{ast.unparse(target)}` — handlers "
                "must not move another object's clock",
                hint="schedule an event at the desired time instead",
            )
