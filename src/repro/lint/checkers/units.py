"""Unit-safety rules: RL003 unit-mixing, RL004 float-time-equality.

The simulator keeps time in nanoseconds internally, speaks seconds at
its edges (Table I retention values, CLI durations), counts core time in
cycles, and sizes in bytes (``utils/units`` owns all conversions).
Identifiers carry their unit as a suffix (``latency_ns``,
``retention_s``, ``size_bytes``), which makes a whole family of unit
bugs statically visible: adding or comparing two identifiers whose
suffixes disagree is almost always a missing conversion.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.lint.base import Checker, register
from repro.lint.context import LintModule
from repro.lint.finding import Finding

#: suffix -> (dimension, unit). Same dimension but different unit still
#: conflicts (ns + s is exactly the bug this rule exists for).
UNIT_SUFFIXES = {
    "_ns": ("time", "ns"),
    "_us": ("time", "us"),
    "_ms": ("time", "ms"),
    "_s": ("time", "s"),
    "_years": ("time", "years"),
    "_cycles": ("cycles", "cycles"),
    "_bytes": ("size", "bytes"),
    "_kb": ("size", "kb"),
    "_mb": ("size", "mb"),
    "_gb": ("size", "gb"),
    "_ghz": ("freq", "ghz"),
    "_mhz": ("freq", "mhz"),
}

#: Time-dimension suffixes, for RL004.
TIME_SUFFIXES = frozenset(
    suffix for suffix, (dim, _) in UNIT_SUFFIXES.items() if dim == "time"
)


def unit_of(node: ast.AST) -> Optional[Tuple[str, str, str]]:
    """(identifier, dimension, unit) when *node* names a suffixed value."""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    lowered = ident.lower()
    for suffix in sorted(UNIT_SUFFIXES, key=len, reverse=True):
        if lowered.endswith(suffix):
            dim, unit = UNIT_SUFFIXES[suffix]
            return ident, dim, unit
    return None


def _is_tolerance_call(node: ast.AST) -> bool:
    """Calls that make float equality well-defined (approx, isclose)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name in ("approx", "isclose")


def _is_time_like(node: ast.AST) -> Optional[str]:
    """Identifier text when *node* reads like a simulation-time value."""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    lowered = ident.lower()
    if lowered in ("now", "_now"):
        return ident
    for suffix in TIME_SUFFIXES:
        if lowered.endswith(suffix):
            return ident
    return None


@register
class UnitMixingChecker(Checker):
    """RL003: additive arithmetic/comparison across unit suffixes.

    Flags ``a_ns + b_s``, ``a_cycles - b_ns``, ``a_bytes < b_ns`` and
    friends. Multiplication and division are conversions by nature and
    are never flagged. A second, weaker pattern (warning) is a bare
    numeric literal passed as a ``*_ns=`` keyword argument: call sites
    are where magnitude mistakes happen, and ``utils/units`` exists so
    they don't (``duration_ns=s_to_ns(0.1)``, ``parse_duration("1ms")``).
    Class-level field defaults are exempt — the dataclass declaration is
    where a unit's canonical value is documented.
    """

    rule_id = "RL003"
    name = "unit-mixing"
    severity = "error"
    packages = None

    #: Additive/comparative operators where mixed units are a bug.
    _ADDITIVE = (ast.Add, ast.Sub)

    def check(self, module: LintModule) -> List[Finding]:
        out: List[Finding] = []
        for node in module.walk():
            if isinstance(node, ast.BinOp) and isinstance(node.op, self._ADDITIVE):
                self._check_pair(out, module, node, node.left, node.right, "+/-")
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for left, right in zip(operands, operands[1:]):
                    self._check_pair(out, module, node, left, right, "comparison")
            elif isinstance(node, ast.Call):
                self._check_literal_kwargs(out, module, node)
        return out

    def _check_pair(
        self,
        out: List[Finding],
        module: LintModule,
        node: ast.AST,
        left: ast.AST,
        right: ast.AST,
        op_label: str,
    ) -> None:
        left_unit = unit_of(left)
        right_unit = unit_of(right)
        if left_unit is None or right_unit is None:
            return
        (l_ident, l_dim, l_unit) = left_unit
        (r_ident, r_dim, r_unit) = right_unit
        if l_unit == r_unit:
            return
        if l_dim != r_dim:
            message = (
                f"{op_label} between different dimensions: "
                f"`{l_ident}` [{l_unit}] vs `{r_ident}` [{r_unit}]"
            )
        else:
            message = (
                f"{op_label} between mismatched {l_dim} units: "
                f"`{l_ident}` [{l_unit}] vs `{r_ident}` [{r_unit}]"
            )
        self.emit(
            out,
            module,
            node,
            message,
            hint="convert explicitly via utils/units (s_to_ns, ns_to_s, "
            "parse_size) before combining",
        )

    def _check_literal_kwargs(
        self, out: List[Finding], module: LintModule, node: ast.Call
    ) -> None:
        for keyword in node.keywords:
            if keyword.arg is None or not keyword.arg.lower().endswith("_ns"):
                continue
            value = keyword.value
            if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
                value = value.operand
            if (
                isinstance(value, ast.Constant)
                and isinstance(value.value, (int, float))
                and not isinstance(value.value, bool)
                and value.value != 0
            ):
                self.emit(
                    out,
                    module,
                    node,
                    f"bare numeric literal for `{keyword.arg}=` at a call "
                    "site hides its unit provenance",
                    hint="derive it via utils/units (e.g. s_to_ns(...)) or "
                    "a named, unit-suffixed constant",
                    severity="warning",
                )


@register
class FloatTimeEqualityChecker(Checker):
    """RL004: no ``==``/``!=`` on simulation-time expressions.

    Simulated timestamps are floats accumulated through ns-scale
    arithmetic; exact equality is representation-dependent (two paths to
    "the same" instant can differ in the last ulp) and silently breaks
    when a latency constant gains a fractional part. Order comparisons
    (``<=``, ``>=``) or an explicit tolerance express the actual intent.
    Comparisons against literal ``0`` are flagged too: "has time
    advanced" is ``> 0.0``, not ``!= 0.0``.
    """

    rule_id = "RL004"
    name = "float-time-equality"
    severity = "warning"
    packages = None

    def check(self, module: LintModule) -> List[Finding]:
        out: List[Finding] = []
        for node in module.walk():
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                ident = _is_time_like(left) or _is_time_like(right)
                if ident is None:
                    continue
                # `x_ns == None` style checks are not equality-on-floats.
                if any(
                    isinstance(side, ast.Constant) and side.value is None
                    for side in (left, right)
                ):
                    continue
                # Tolerance-based equality is the recommended fix, not a
                # finding: `x_ns == pytest.approx(y)`, `isclose(...)`.
                if any(_is_tolerance_call(side) for side in (left, right)):
                    continue
                self.emit(
                    out,
                    module,
                    node,
                    f"exact equality on simulation-time value `{ident}`",
                    hint="compare with <=/>= or an explicit tolerance; "
                    "float timestamps are not exact",
                )
        return out
