"""Durability rules: RL008 atomic-persistence, RL012 silent-swallow.

A crash mid-write must never leave a half-written result file that a
resumed sweep then trusts, and a worker that swallows an exception must
leave evidence. These rules lint the orchestration packages for both
failure modes.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from repro.lint.base import Checker, register
from repro.lint.callgraph import ModuleCallGraph, terminal_name
from repro.lint.context import ORCH_PATH_PACKAGES, LintModule
from repro.lint.finding import Finding
from repro.lint.resolve import ImportMap, resolve_call_target

#: Function names whose presence in the same scope marks the write as
#: part of an atomic tmp-file + rename sequence.
_ATOMIC_MARKERS = frozenset({"replace", "rename", "atomic_write_text", "save_json"})

_WRITE_MODE_RE = re.compile(r"[wax]")


def _open_mode(call: ast.Call) -> Optional[str]:
    """Literal mode string of an ``open()`` call, if statically known."""
    mode_node: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


@register
class AtomicPersistenceChecker(Checker):
    """RL008: durable artifacts are written atomically.

    A bare ``open(path, "w")`` / ``Path.write_text`` / ``json.dump``
    that dies mid-write leaves a torn file; the resumed run either
    crashes or silently computes on half a ledger. The sanctioned
    patterns are write-to-tmp + ``os.replace`` in the same function
    (what :func:`repro.utils.persist.atomic_write_text` wraps) and the
    append-only journal APIs, whose readers repair torn tails.
    """

    rule_id = "RL008"
    name = "atomic-persistence"
    severity = "error"
    packages = ORCH_PATH_PACKAGES

    def check(self, module: LintModule) -> List[Finding]:
        imports = ImportMap(module.tree)
        graph = ModuleCallGraph(module.tree, imports)
        out: List[Finding] = []
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            what = self._bare_write(node, imports)
            if what is None:
                continue
            if self._scope_is_atomic(node, graph, module, imports):
                continue
            self.emit(
                out,
                module,
                node,
                f"{what} without an atomic replace: a crash mid-write "
                "leaves a torn artifact",
                hint="write a tmp file and `os.replace` it (use "
                "repro.utils.persist.atomic_write_text / save_json), or "
                "append through a journal API with torn-tail repair",
            )
        return out

    @staticmethod
    def _bare_write(node: ast.Call, imports: ImportMap) -> Optional[str]:
        origin = resolve_call_target(node.func, imports)
        if origin == "json.dump":
            return "direct `json.dump()` to a file handle"
        callee = terminal_name(node.func)
        if callee == "write_text" and isinstance(node.func, ast.Attribute):
            return "`Path.write_text()`"
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = _open_mode(node)
            if mode is None or _WRITE_MODE_RE.search(mode):
                return f"`open(..., {mode!r})` for writing" if mode else (
                    "`open()` with a non-literal mode"
                )
        return None

    @staticmethod
    def _scope_is_atomic(
        node: ast.Call,
        graph: ModuleCallGraph,
        module: LintModule,
        imports: ImportMap,
    ) -> bool:
        owner = graph.owner_of(node)
        scope: ast.AST = owner.node if owner is not None else module.tree
        for sub in ast.walk(scope):
            if not isinstance(sub, ast.Call):
                continue
            origin = resolve_call_target(sub.func, imports)
            if origin in ("os.replace", "os.rename"):
                return True
            callee = terminal_name(sub.func)
            if callee in _ATOMIC_MARKERS:
                return True
        return False


#: Handler body elements that count as "leaving evidence".
_REPORT_CALL_RE = re.compile(
    r"log|warn|error|exception|print|emit|publish|record|failure|debug"
    r"|send|put|write|append|release",
    re.IGNORECASE,
)
_COUNTER_NAME_RE = re.compile(
    r"count|dropped|fail|error|retr|swallow|skip", re.IGNORECASE
)
_ERROR_TARGET_RE = re.compile(r"error|failure|fail", re.IGNORECASE)

_BROAD_TYPES = frozenset({"Exception", "BaseException"})


@register
class SilentSwallowChecker(Checker):
    """RL012: broad exception handlers must leave evidence.

    ``except Exception: pass`` in a worker or serve loop converts a
    crash into a silent hang or silently-wrong sweep. Broad handlers in
    orchestration code must raise, log, emit an event, write a failure
    record, bump a counter, or store the error — anything a post-mortem
    can find.
    """

    rule_id = "RL012"
    name = "silent-swallow"
    severity = "error"
    packages = ORCH_PATH_PACKAGES

    def check(self, module: LintModule) -> List[Finding]:
        out: List[Finding] = []
        for node in module.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._leaves_evidence(node.body):
                continue
            caught = (
                "bare `except`"
                if node.type is None
                else f"`except {ast.unparse(node.type)}`"
            )
            self.emit(
                out,
                module,
                node,
                f"{caught} swallows the exception without leaving "
                "evidence",
                hint="log it, emit an event, append a failure record, or "
                "bump a telemetry counter before continuing — or narrow "
                "the except to the exceptions you mean",
            )
        return out

    @staticmethod
    def _is_broad(type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        candidates: List[ast.AST] = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        return any(
            isinstance(c, ast.Name) and c.id in _BROAD_TYPES
            for c in candidates
        )

    @staticmethod
    def _leaves_evidence(body: List[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    return True
                if isinstance(sub, ast.Call):
                    callee = terminal_name(sub.func)
                    if callee and _REPORT_CALL_RE.search(callee):
                        return True
                if isinstance(sub, ast.AugAssign):
                    name = terminal_name(sub.target)
                    if name and _COUNTER_NAME_RE.search(name):
                        return True
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        name = terminal_name(target)
                        if name and _ERROR_TARGET_RE.search(name):
                            return True
        return False
