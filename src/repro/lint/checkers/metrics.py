"""Metrics-coverage rule: RL005.

PR 2 made the telemetry :class:`~repro.telemetry.registry.MetricRegistry`
the single source of stats: every sim-path component publishes its
counters through a ``register_metrics(registry, prefix)`` method. A
class that accumulates counters but never registers them is invisible to
traces, profiles, and the summary report — exactly the kind of silent
coverage gap that let wear/lifetime numbers drift unnoticed in other
PCM simulators. This rule finds counter-bearing sim-path classes with no
``register_metrics``.
"""

from __future__ import annotations

import ast
import re
from typing import List, Set

from repro.lint.base import Checker, register
from repro.lint.context import SIM_PATH_PACKAGES, LintModule
from repro.lint.finding import Finding

#: Attribute-name shapes that read as event counters. Deliberately a
#: vocabulary of this codebase's domain nouns rather than "any +=":
#: cursors, clocks, and accumulating floats are not counters.
_COUNTER_WORDS = (
    "count",
    "hits",
    "misses",
    "reads",
    "writes",
    "stalls",
    "evictions",
    "refreshes",
    "promotions",
    "demotions",
    "violations",
    "retries",
    "drops",
    "moves",
    "changes",
    "interrupts",
    "appends",
    "issued",
    "completed",
    "emitted",
    "scheduled",
    "cancelled",
    "registrations",
    "rotations",
    "instructions",
    "ticks",
    "total",
    "events",
)

_COUNTER_RE = re.compile(
    r"(?:^|_)(?:" + "|".join(_COUNTER_WORDS) + r")(?:_|$)"
)


def is_counter_name(name: str) -> bool:
    """Public attribute names that read as monotonically-counted events."""
    if name.startswith("_"):
        return False
    lowered = name.lower()
    return bool(
        _COUNTER_RE.search(lowered)
        or lowered.startswith(("n_", "num_"))
    )


@register
class MetricsCoverageChecker(Checker):
    """RL005: counter-mutating sim-path classes must register metrics.

    A class is flagged when it increments (``+=``) public counter-like
    ``self`` attributes but defines no ``register_metrics`` method.
    Plain stats structs whose counters are incremented *by their owner*
    (``self.stats.reads += 1``) are not flagged here — the owner is, if
    it fails to expose them.
    """

    rule_id = "RL005"
    name = "metrics-coverage"
    severity = "warning"
    packages = SIM_PATH_PACKAGES

    def applies_to(self, module: LintModule) -> bool:
        # The live-observability and profiling layers are held to the
        # same bar as the sim path: a telemetry class that hoards
        # counters (log sinks, flight recorders, heartbeat aggregates,
        # stack samplers) is a blind spot in the very surface meant to
        # remove blind spots.
        if "repro/obs/live/" in module.relpath:
            return True
        if "repro/profiling/" in module.relpath:
            return True
        return super().applies_to(module)

    def check(self, module: LintModule) -> List[Finding]:
        out: List[Finding] = []
        for cls in self._all_classes(module):
            counters = self._self_counters(cls)
            if not counters:
                continue
            if self._has_register_metrics(cls):
                continue
            names = ", ".join(sorted(counters))
            self.emit(
                out,
                module,
                cls,
                f"class `{cls.name}` mutates counter(s) {names} but has "
                "no register_metrics()",
                hint="add register_metrics(registry, prefix) publishing "
                "them as gauges/counters (see engine.Simulator), or "
                "suppress if the owner class registers them",
            )
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _all_classes(module: LintModule) -> List[ast.ClassDef]:
        return [
            node for node in module.walk() if isinstance(node, ast.ClassDef)
        ]

    @staticmethod
    def _has_register_metrics(cls: ast.ClassDef) -> bool:
        return any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "register_metrics"
            for node in cls.body
        )

    @staticmethod
    def _self_counters(cls: ast.ClassDef) -> Set[str]:
        """Public counter-like ``self.x += ...`` targets inside *cls*,
        excluding those inside nested class definitions."""
        counters: Set[str] = set()
        stack: List[ast.AST] = list(cls.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.ClassDef):
                continue  # a nested class owns its own counters
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, ast.Add):
                continue
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and is_counter_name(target.attr)
            ):
                counters.add(target.attr)
        return counters
