"""Module-level call graph with lock-context dataflow.

The concurrency rules (RL007–RL012) need more than single-node pattern
matching: whether ``self._append_locked(...)`` is safe depends on who
calls it and under which lock. This module builds, per file:

* a **function table** — every ``def`` keyed by qualname (``func`` for
  module-level functions, ``Class.method`` for methods, with nested
  functions attributed to their outermost enclosing def);
* **intra-module call edges** — bare-name calls resolve to module-level
  functions, ``self.x()`` / ``cls.x()`` resolve to methods of the
  enclosing class. Anything else (imports, call results, other objects)
  is deliberately out of scope: the analysis stays per-file so findings
  are local and reviewable;
* **lock scopes** — the source spans of ``with`` items whose context
  expression is lock-like (see :func:`is_lock_expr`);
* a **holds-lock fixpoint** — a function is considered to *hold a lock
  on entry* when its name follows the ``*_locked`` convention, or when
  it has at least one intra-module caller and every one of its call
  sites sits inside a lock scope (directly or in a function that itself
  holds a lock on entry).

The dataflow is conservative in the direction that matters for a
linter: it never *assumes* a lock is held without evidence, so missing
edges produce findings (reviewed, then fixed or baselined) rather than
silent passes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.resolve import ImportMap, dotted_parts, resolve_call_target

#: Dotted origins that construct a lock object.
LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "repro.fabric.locking.FileLock",
    }
)


def terminal_name(node: ast.AST) -> Optional[str]:
    """Last segment of a ``Name``/``Attribute`` chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_lock_expr(expr: ast.AST, imports: ImportMap) -> bool:
    """Heuristic: does *expr* evaluate to a lock?

    True for names/attributes whose terminal segment mentions ``lock``
    or ``mutex`` (``self._lock``, ``journal.lock``), and for calls to a
    known lock constructor — either by dotted origin (``threading.Lock()``)
    or by a class name ending in ``Lock`` (``FileLock(path)``).
    """
    name = terminal_name(expr)
    if name is not None and ("lock" in name.lower() or "mutex" in name.lower()):
        return True
    if isinstance(expr, ast.Call):
        origin = resolve_call_target(expr.func, imports)
        if origin in LOCK_CONSTRUCTORS:
            return True
        callee = terminal_name(expr.func)
        if callee is not None and callee.endswith("Lock"):
            return True
        # ``self._lock.acquire_context()``-style helpers: recurse one level.
        return is_lock_expr(expr.func, imports)
    return False


class FunctionInfo:
    """One ``def`` in the module, with its concurrency-relevant facts."""

    def __init__(self, qualname: str, node: ast.AST) -> None:
        self.qualname = qualname
        self.node = node
        #: Line spans ``(first, last)`` of statements inside lock ``with``
        #: bodies within this function.
        self.lock_spans: List[Tuple[int, int]] = []
        #: Qualnames of intra-module functions this one calls, with the
        #: call node and whether the call site is inside a lock span.
        self.calls: List[Tuple[str, ast.Call, bool]] = []
        #: Resolved "holds a lock when entered" (fixpoint result).
        self.holds_lock_on_entry: bool = False
        #: True when the function itself enters a lock scope.
        self.takes_lock: bool = False

    def in_lock_span(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return False
        return any(first <= lineno <= last for first, last in self.lock_spans)


class ModuleCallGraph:
    """Call graph + lock-context dataflow for one parsed module."""

    def __init__(self, tree: ast.AST, imports: Optional[ImportMap] = None) -> None:
        self.imports = imports if imports is not None else ImportMap(tree)
        self.functions: Dict[str, FunctionInfo] = {}
        #: Maps every AST node to the qualname of its innermost enclosing
        #: def ("" for module level).
        self._owner: Dict[ast.AST, str] = {}
        self._collect(tree)
        self._solve()

    # -- construction ---------------------------------------------------
    def _collect(self, tree: ast.AST) -> None:
        module_funcs: Set[str] = set()
        class_methods: Dict[str, Set[str]] = {}
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_funcs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                class_methods[node.name] = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }

        def visit(node: ast.AST, owner: str, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                child_owner, child_cls = owner, cls
                if isinstance(child, ast.ClassDef) and owner == "":
                    child_cls = child.name
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if owner == "":
                        qual = f"{cls}.{child.name}" if cls else child.name
                        self.functions[qual] = FunctionInfo(qual, child)
                        child_owner = qual
                    # nested defs keep the outer function as owner
                self._owner[child] = child_owner
                visit(child, child_owner, child_cls)

        self._owner[tree] = ""
        visit(tree, "", None)

        for info in self.functions.values():
            self._scan_function(info, module_funcs, class_methods)

    def _scan_function(
        self,
        info: FunctionInfo,
        module_funcs: Set[str],
        class_methods: Dict[str, Set[str]],
    ) -> None:
        cls = info.qualname.split(".")[0] if "." in info.qualname else None
        for node in ast.walk(info.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    is_lock_expr(item.context_expr, self.imports)
                    for item in node.items
                ):
                    first = node.body[0].lineno if node.body else node.lineno
                    last = getattr(node, "end_lineno", None) or first
                    info.lock_spans.append((first, last))
                    info.takes_lock = True
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_intra(node, cls, module_funcs, class_methods)
            if target is None:
                continue
            info.calls.append((target, node, info.in_lock_span(node)))

    def _resolve_intra(
        self,
        call: ast.Call,
        cls: Optional[str],
        module_funcs: Set[str],
        class_methods: Dict[str, Set[str]],
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in module_funcs:
                return func.id
            return None
        parts = dotted_parts(func)
        if parts is None or len(parts) != 2:
            return None
        root, attr = parts
        if root in ("self", "cls") and cls is not None:
            if attr in class_methods.get(cls, set()):
                return f"{cls}.{attr}"
        return None

    # -- dataflow -------------------------------------------------------
    def _solve(self) -> None:
        """Fixpoint for ``holds_lock_on_entry``.

        Seed: ``*_locked``-named functions hold a lock by contract.
        Iterate: a function holds a lock when it has callers and every
        call site is either inside a lock span or inside a function that
        itself holds a lock on entry (and outside any of that function's
        own spans, the inherited lock still applies).
        """
        for info in self.functions.values():
            base = info.qualname.rsplit(".", 1)[-1]
            if base.endswith("_locked"):
                info.holds_lock_on_entry = True

        callers: Dict[str, List[Tuple[FunctionInfo, bool]]] = {}
        for info in self.functions.values():
            for target, _node, in_lock in info.calls:
                callers.setdefault(target, []).append((info, in_lock))

        changed = True
        while changed:
            changed = False
            for qual, sites in callers.items():
                info = self.functions.get(qual)
                if info is None or info.holds_lock_on_entry:
                    continue
                if sites and all(
                    in_lock or caller.holds_lock_on_entry
                    for caller, in_lock in sites
                ):
                    info.holds_lock_on_entry = True
                    changed = True

    # -- queries --------------------------------------------------------
    def owner_of(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The FunctionInfo whose body contains *node*, or None."""
        qual = self._owner.get(node)
        if not qual:
            return None
        return self.functions.get(qual)

    def in_lock_context(self, node: ast.AST) -> bool:
        """True when *node* executes under a lock: it sits inside a lock
        ``with`` span, or inside a function that holds a lock on entry."""
        info = self.owner_of(node)
        if info is None:
            return False
        return info.in_lock_span(node) or info.holds_lock_on_entry

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def transitive_callees(self, qualname: str) -> Iterator[FunctionInfo]:
        """Yield *qualname*'s function and every intra-module function
        reachable from it (depth-first, each once)."""
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.functions.get(current)
            if info is None:
                continue
            yield info
            stack.extend(target for target, _n, _l in info.calls)
