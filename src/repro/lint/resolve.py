"""Lightweight import-aware name resolution.

The determinism checkers need to know that ``t.monotonic()`` is really
``time.monotonic()`` and that ``from random import shuffle as mix;
mix(x)`` is ``random.shuffle(x)``. :class:`ImportMap` records a file's
import aliases; :func:`resolve_call_target` turns a ``Name`` /
``Attribute`` chain into a dotted origin string, or ``None`` when the
root is a local object (``self._rng.random()`` resolves to ``None`` —
exactly right, since instance RNGs are the sanctioned pattern).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


class ImportMap:
    """Local name -> dotted origin, built from one module's imports."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else local
                    self.aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay package-local
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def origin(self, local_name: str) -> Optional[str]:
        return self.aliases.get(local_name)


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]``, else None."""
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    parts.reverse()
    return parts


def resolve_call_target(
    func: ast.AST, imports: ImportMap
) -> Optional[str]:
    """Dotted origin of a call's callee, e.g. ``numpy.random.rand``.

    Returns None when the callee's root is not an imported module-level
    name (locals, ``self`` attributes, call results).
    """
    parts = dotted_parts(func)
    if parts is None:
        return None
    origin = imports.origin(parts[0])
    if origin is None:
        return None
    return ".".join([origin] + parts[1:])
