"""Static simulator-invariant analysis (``repro-rrm lint``).

A determinism-critical discrete-event simulator has invariants no
general-purpose linter knows about: simulation-path code must never read
the wall clock, randomness must flow from injected seeded generators,
time units must not silently mix (Table I retention seconds vs. device
nanoseconds vs. core cycles), and event handlers must respect the
engine's scheduling discipline. ``repro.lint`` walks the package's ASTs
with a set of pluggable :class:`~repro.lint.base.Checker` passes and
reports violations as structured :class:`~repro.lint.finding.Finding`
records.

Rules shipped:

========  ======================  =====================================
Rule      Name                    Guards against
========  ======================  =====================================
RL001     no-wallclock            wall-clock reads in sim-path packages
RL002     seeded-rng              module-level (unseeded) RNG use
RL003     unit-mixing             arithmetic across `_ns`/`_s`/... units
RL004     float-time-equality     ``==`` on simulation-time floats
RL005     metrics-coverage        counters invisible to the telemetry
                                  registry (no ``register_metrics``)
RL006     event-discipline        negative/absolute-literal scheduling,
                                  clock mutation outside the engine
========  ======================  =====================================

Suppression is explicit and reviewable: inline ``# repro-lint:
disable=RL00x`` pragmas next to the code they excuse, or entries in
``.repro-lint-baseline.json`` with a ``justification`` string.

``ruff``/``mypy`` (configured in ``pyproject.toml``) cover generic style
and typing; this package only checks invariants they cannot express.
"""

from repro.lint.api import (
    LintReport,
    iter_python_files,
    lint_source,
    run_lint,
)
from repro.lint.base import Checker, all_checkers, checker_classes, register
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.finding import SEVERITIES, Finding
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "LintReport",
    "SEVERITIES",
    "all_checkers",
    "checker_classes",
    "iter_python_files",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]
