"""Static simulator-invariant analysis (``repro-rrm lint``).

A determinism-critical discrete-event simulator has invariants no
general-purpose linter knows about: simulation-path code must never read
the wall clock, randomness must flow from injected seeded generators,
time units must not silently mix (Table I retention seconds vs. device
nanoseconds vs. core cycles), and event handlers must respect the
engine's scheduling discipline. The orchestration path (``resilience``,
``fabric``, ``obs``) has its own invariants: shared-file mutation only
under a lock, atomic persistence, fork/thread separation, and loud
failure. ``repro.lint`` walks the package's ASTs with a set of pluggable
:class:`~repro.lint.base.Checker` passes — the concurrency rules share a
per-module call graph with lock-context dataflow
(:mod:`repro.lint.callgraph`) — and reports violations as structured
:class:`~repro.lint.finding.Finding` records.

Rules shipped:

========  ======================  =====================================
Rule      Name                    Guards against
========  ======================  =====================================
RL001     no-wallclock            wall-clock reads in sim-path packages
RL002     seeded-rng              module-level (unseeded) RNG use
RL003     unit-mixing             arithmetic across `_ns`/`_s`/... units
RL004     float-time-equality     ``==`` on simulation-time floats
RL005     metrics-coverage        counters invisible to the telemetry
                                  registry (no ``register_metrics``)
RL006     event-discipline        negative/absolute-literal scheduling,
                                  clock mutation outside the engine
RL007     lock-discipline         raw shared-file writes / ``*_locked``
                                  helpers outside any lock scope
RL008     atomic-persistence      durable artifacts written without
                                  tmp-file + ``os.replace``
RL009     fork-thread-safety      threads mixed with worker forks;
                                  lock-taking daemon threads
RL010     exception-safe-lock     ``.acquire()`` without a guaranteed
                                  ``release`` (no with/try-finally)
RL011     wallclock-lease-logic   lease/retry/timeout decisions on a
                                  direct wall-clock read (no injected
                                  clock)
RL012     silent-swallow          broad ``except`` that leaves no
                                  evidence (no log/record/counter)
========  ======================  =====================================

RL001–RL006 guard the simulation path (``SIM_PATH_PACKAGES``);
RL007–RL012 guard the orchestration path (``ORCH_PATH_PACKAGES``).

Suppression is explicit and reviewable: inline ``# repro-lint:
disable=RL00x`` pragmas next to the code they excuse, or entries in
``.repro-lint-baseline.json`` with a ``justification`` string.

``ruff``/``mypy`` (configured in ``pyproject.toml``) cover generic style
and typing; this package only checks invariants they cannot express.
"""

from repro.lint.api import (
    LintReport,
    iter_python_files,
    lint_source,
    parse_rule_selection,
    run_lint,
    select_checkers,
)
from repro.lint.base import Checker, all_checkers, checker_classes, register
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.callgraph import ModuleCallGraph
from repro.lint.finding import SEVERITIES, Finding
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "LintReport",
    "ModuleCallGraph",
    "SEVERITIES",
    "all_checkers",
    "checker_classes",
    "iter_python_files",
    "lint_source",
    "parse_rule_selection",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "select_checkers",
]
