"""The :class:`Finding` record every checker emits.

Findings are plain data so reporters, the baseline machinery, and tests
can all consume them without knowing which checker produced them. The
``context`` field (the stripped source line) — not the line number — is
what baselines key on, so a baseline survives unrelated edits that shift
lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Severities in increasing order of badness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Rule identifier (``RL001`` ... ``RL012``; ``RL000`` is
            reserved for files the analyzer itself could not parse).
        severity: ``"error"`` or ``"warning"``. Errors always fail the
            lint run; warnings only fail it under ``--strict``.
        path: Path of the offending file, relative to the lint root,
            with forward slashes.
        line: 1-based source line.
        col: 0-based column.
        message: What is wrong, concretely.
        hint: How to fix it (or how to legitimately suppress it).
        context: The stripped text of the offending source line.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    context: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity: {self.severity!r}")

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching: stable across reflows."""
        return (self.rule, self.path, self.context)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-stable representation (schema covered by tests)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "context": self.context,
        }

    def render(self) -> str:
        text = f"{self.location}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
