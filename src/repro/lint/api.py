"""Lint engine and public entry points.

:func:`run_lint` is the programmatic face of ``repro-rrm lint``: it
discovers files, runs every registered checker, applies the baseline,
and returns a :class:`LintReport`. :func:`lint_source` lints one source
string — the unit-test surface for individual rules.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.errors import ConfigError
from repro.lint.base import Checker, all_checkers
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.context import LintModule
from repro.lint.finding import Finding

#: Default lint roots, relative to the working directory: the package
#: sources. Tests/benchmarks host intentional rule triggers (fixtures),
#: so they are opt-in via explicit paths.
DEFAULT_ROOTS = ("src/repro",)


_RULE_ID_RE = re.compile(r"^RL(\d{3})$")


def parse_rule_selection(spec: str) -> Set[str]:
    """Expand a ``--select``/``--ignore`` spec into a set of rule ids.

    Grammar: comma-separated tokens, each either a rule id (``RL007``)
    or an inclusive range (``RL007-RL012``). Case-insensitive.

    Raises:
        ConfigError: empty spec, malformed token, or inverted range.
    """
    rules: Set[str] = set()
    for token in spec.split(","):
        token = token.strip().upper()
        if not token:
            continue
        if "-" in token:
            low_s, _, high_s = token.partition("-")
            low_m = _RULE_ID_RE.match(low_s.strip())
            high_m = _RULE_ID_RE.match(high_s.strip())
            if low_m is None or high_m is None:
                raise ConfigError(
                    f"bad rule range {token!r}: expected RLnnn-RLnnn"
                )
            low, high = int(low_m.group(1)), int(high_m.group(1))
            if low > high:
                raise ConfigError(f"inverted rule range {token!r}")
            rules.update(f"RL{n:03d}" for n in range(low, high + 1))
        else:
            if _RULE_ID_RE.match(token) is None:
                raise ConfigError(
                    f"bad rule id {token!r}: expected RLnnn (e.g. RL007)"
                )
            rules.add(token)
    if not rules:
        raise ConfigError("empty rule selection")
    return rules


def select_checkers(
    checkers: Sequence[Checker],
    select: Optional[str] = None,
    ignore: Optional[str] = None,
) -> List[Checker]:
    """Filter *checkers* by ``--select``/``--ignore`` specs.

    ``select`` keeps only the listed rules (every listed id must be
    registered); ``ignore`` then drops its rules (unknown ignored ids
    are an error too — they are typos, not wishes).
    """
    active = list(checkers)
    known = {c.rule_id for c in active}
    for spec, label in ((select, "--select"), (ignore, "--ignore")):
        if spec is None:
            continue
        wanted = parse_rule_selection(spec)
        unknown = sorted(r for r in wanted if r not in known)
        if unknown:
            raise ConfigError(
                f"{label} names unregistered rule(s): {', '.join(unknown)}"
            )
    if select is not None:
        keep = parse_rule_selection(select)
        active = [c for c in active if c.rule_id in keep]
    if ignore is not None:
        drop = parse_rule_selection(ignore)
        active = [c for c in active if c.rule_id not in drop]
    return active


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    baseline_path: Optional[str] = None
    baseline_updated: bool = False
    #: Rule ids that were active for this run (after select/ignore).
    rules_active: List[str] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self, strict: bool = False) -> int:
        """CLI convention: 0 clean, 1 findings (errors, or anything
        under ``--strict``), usage/internal problems exit 2 upstream."""
        if self.error_count:
            return 1
        if strict and self.findings:
            return 1
        return 0

    def summary_line(self) -> str:
        parts = [
            f"{self.files_scanned} file(s) scanned",
            f"{self.error_count} error(s)",
            f"{self.warning_count} warning(s)",
        ]
        if self.baselined:
            parts.append(f"{len(self.baselined)} baselined")
        return ", ".join(parts)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__",)
                )
                collected.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            raise ConfigError(f"lint path does not exist: {path}")
    return sorted(set(collected))


def _parse_error_finding(relpath: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="RL000",
        severity="error",
        path=relpath,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
        hint="repro-lint analyzes ASTs; fix the syntax error first",
        context=(exc.text or "").strip(),
    )


def lint_source(
    source: str,
    relpath: str = "src/repro/sim/example.py",
    checkers: Optional[Sequence[Checker]] = None,
) -> List[Finding]:
    """Lint one in-memory source blob as if it lived at *relpath*.

    The default *relpath* places the snippet in a simulation-path
    package so every rule is active; pass another path to test package
    gating.
    """
    try:
        module = LintModule(source, relpath)
    except SyntaxError as exc:
        return [_parse_error_finding(relpath, exc)]
    active = list(checkers) if checkers is not None else all_checkers()
    findings: List[Finding] = []
    for checker in active:
        findings.extend(checker.run(module))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def run_lint(
    paths: Optional[Sequence[str]] = None,
    *,
    checkers: Optional[Sequence[Checker]] = None,
    baseline: Optional[str] = None,
    update_baseline: bool = False,
    select: Optional[str] = None,
    ignore: Optional[str] = None,
) -> LintReport:
    """Lint *paths* (default: ``src/repro``) and apply the baseline.

    Args:
        paths: Files and/or directories; directories are walked for
            ``.py`` files. Relative paths are kept relative (findings
            report them as given, with forward slashes).
        checkers: Override the registered checker set (tests).
        baseline: Baseline file path. ``None`` auto-loads
            ``.repro-lint-baseline.json`` from the working directory
            when present.
        update_baseline: Rewrite the baseline to cover all current
            findings (preserving existing justifications), then report
            zero new findings.
        select: ``--select`` spec: only run these rules
            (``"RL007,RL010"`` or ``"RL007-RL012"``).
        ignore: ``--ignore`` spec: run everything but these rules.

    Raises:
        ConfigError: A path does not exist, the baseline is malformed,
            or select/ignore names an unregistered rule (the CLI maps
            this to exit code 2).
    """
    roots = list(paths) if paths else [p for p in DEFAULT_ROOTS if os.path.isdir(p)]
    if not roots:
        raise ConfigError(
            "no lint paths: pass files/directories or run from the repo root"
        )
    files = iter_python_files(roots)

    active = list(checkers) if checkers is not None else all_checkers()
    active = select_checkers(active, select=select, ignore=ignore)
    findings: List[Finding] = []
    for filepath in files:
        relpath = os.path.relpath(filepath).replace(os.sep, "/")
        try:
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise ConfigError(f"unreadable file {filepath}: {exc}") from exc
        try:
            module = LintModule(source, relpath)
        except SyntaxError as exc:
            findings.append(_parse_error_finding(relpath, exc))
            continue
        for checker in active:
            findings.extend(checker.run(module))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    baseline_path = baseline
    if baseline_path is None and os.path.isfile(DEFAULT_BASELINE_NAME):
        baseline_path = DEFAULT_BASELINE_NAME

    report = LintReport(
        files_scanned=len(files),
        baseline_path=baseline_path,
        rules_active=sorted(c.rule_id for c in active),
    )
    previous = (
        Baseline.load(baseline_path)
        if baseline_path and os.path.isfile(baseline_path)
        else Baseline()
    )
    if update_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        Baseline.from_findings(findings, previous=previous).save(target)
        report.baseline_path = target
        report.baseline_updated = True
        report.baselined = findings
        return report

    fresh, absorbed = previous.partition(findings)
    report.findings = fresh
    report.baselined = absorbed
    return report
