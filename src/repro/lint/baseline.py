"""Baseline (accepted-findings) file support.

A baseline is the reviewable ledger of findings the project has decided
to live with: each entry carries a ``justification`` string, and CI runs
``--strict`` so only *new* findings fail the build. Entries match on
``(rule, path, context)`` — the stripped source line — not line numbers,
so unrelated edits don't invalidate the baseline; ``count`` bounds how
many identical occurrences one entry may absorb.

File format (``.repro-lint-baseline.json``)::

    {
      "version": 1,
      "tool": "repro-lint",
      "entries": [
        {"rule": "RL001", "path": "src/repro/sim/system.py",
         "context": "started = time.perf_counter()", "count": 1,
         "justification": "host elapsed-time reporting, not sim state"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.lint.finding import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


def paths_match(a: str, b: str) -> bool:
    """Whether two finding paths name the same file.

    Baseline entries store repo-relative paths, but a scan may be
    invoked from another directory or with absolute paths, producing
    spellings like ``../../repo/src/repro/sim/system.py`` for the entry
    ``src/repro/sim/system.py``. Treat paths as equal when one is a
    whole-component suffix of the other.
    """
    a = a.replace("\\", "/")
    b = b.replace("\\", "/")
    return a == b or a.endswith("/" + b) or b.endswith("/" + a)


@dataclass
class BaselineEntry:
    """One accepted finding pattern."""

    rule: str
    path: str
    context: str
    count: int = 1
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.context)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
            "count": self.count,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The set of accepted findings, with bounded-count matching."""

    entries: List[BaselineEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise ConfigError(
                f"baseline {path}: expected version {BASELINE_VERSION}"
            )
        entries = []
        for item in raw.get("entries", []):
            try:
                entries.append(
                    BaselineEntry(
                        rule=item["rule"],
                        path=item["path"],
                        context=item["context"],
                        count=int(item.get("count", 1)),
                        justification=item.get("justification", ""),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigError(
                    f"baseline {path}: malformed entry {item!r}"
                ) from exc
        return cls(entries=entries)

    def save(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro-lint",
            "entries": [entry.as_dict() for entry in self.entries],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")

    # ------------------------------------------------------------------
    def unjustified(self) -> List[BaselineEntry]:
        """Entries with no real justification (empty or the
        ``--update-baseline`` placeholder). CI fails when non-empty:
        a baseline entry is a reviewed decision, not a mute button."""
        return [
            entry
            for entry in self.entries
            if not entry.justification.strip()
            or entry.justification.startswith("TODO")
        ]

    # ------------------------------------------------------------------
    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into (new, baselined).

        Each entry absorbs at most ``count`` findings with its key;
        extra occurrences of a baselined pattern are *new* findings —
        a baseline never grows silently. Paths compare via
        :func:`paths_match`, so a baseline written at the repo root
        still applies when the scan is invoked from elsewhere.
        """
        budget = [[entry, entry.count] for entry in self.entries]
        fresh: List[Finding] = []
        absorbed: List[Finding] = []
        for finding in findings:
            for slot in budget:
                entry, remaining = slot
                if (
                    remaining > 0
                    and entry.rule == finding.rule
                    and entry.context == finding.context
                    and paths_match(entry.path, finding.path)
                ):
                    slot[1] -= 1
                    absorbed.append(finding)
                    break
            else:
                fresh.append(finding)
        return fresh, absorbed

    @classmethod
    def from_findings(
        cls, findings: List[Finding], previous: "Baseline" = None
    ) -> "Baseline":
        """Baseline covering *findings*, keeping justifications that
        *previous* already recorded for surviving patterns."""
        kept_justifications: Dict[Tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                if entry.justification:
                    kept_justifications.setdefault(entry.key, entry.justification)
        grouped: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = finding.baseline_key
            grouped[key] = grouped.get(key, 0) + 1
        entries = [
            BaselineEntry(
                rule=rule,
                path=path,
                context=context,
                count=count,
                justification=kept_justifications.get(
                    (rule, path, context),
                    "TODO: justify or fix (added by --update-baseline)",
                ),
            )
            for (rule, path, context), count in sorted(grouped.items())
        ]
        return cls(entries=entries)
