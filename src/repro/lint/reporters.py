"""Finding reporters: human text and machine JSON.

The JSON schema is part of the tool's contract (CI and editor tooling
parse it); ``tests/test_lint.py`` pins it. Bump ``REPORT_VERSION`` on
any shape change.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.api import LintReport

REPORT_VERSION = 2


def render_text(report: "LintReport", *, verbose_baseline: bool = False) -> str:
    """Human-readable report: one block per finding plus a summary."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    if verbose_baseline and report.baselined:
        lines.append("")
        lines.append(f"baselined ({len(report.baselined)} accepted):")
        for finding in report.baselined:
            lines.append(f"  {finding.location}: {finding.rule}")
    lines.append("" if lines else "")
    lines.append(report.summary_line())
    return "\n".join(line for line in lines if line is not None).strip("\n")


def render_json(report: "LintReport") -> str:
    """Machine-readable report (stable schema, version field first)."""
    by_rule: Dict[str, int] = {}
    for finding in report.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "files_scanned": report.files_scanned,
        "rules_active": list(report.rules_active),
        "counts": {
            "errors": report.error_count,
            "warnings": report.warning_count,
            "baselined": len(report.baselined),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [finding.as_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2)
