"""Per-file analysis context shared by all checkers.

One :class:`LintModule` is built per source file: its parsed AST, source
lines, the ``repro`` sub-package it belongs to, and the parsed
suppression pragmas. Checkers receive the module and ask it questions;
they never re-read the file.

Pragma grammar (comments, case-insensitive on the keyword)::

    x = wallclock()          # repro-lint: disable=RL001
    y = foo() + bar()        # repro-lint: disable=RL003,RL004
    # repro-lint: disable-file=RL005

``disable=`` applies to findings on any line spanned by the flagged
statement (so a pragma on the closing paren of a multi-line call
works). ``disable-file=`` anywhere in the file disables the listed
rules for the whole file. ``disable=all`` disables every rule.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

#: ``repro`` sub-packages that form the simulation path: code here runs
#: under the discrete-event clock and must be bit-deterministic. The
#: orchestration (``resilience``), observability (``telemetry``),
#: reporting (``analysis``) and input-generation (``workloads``) layers
#: legitimately touch the host environment.
SIM_PATH_PACKAGES = frozenset(
    {"engine", "pcm", "memctrl", "cache", "core", "cpu", "sim", "attribution"}
)

#: ``repro`` sub-packages that form the orchestration path: code here
#: runs across processes and threads (work-stealing fabric, checkpoint
#: journals, run ledgers) and must uphold lock discipline, atomic
#: persistence, and loud failure — the concurrency/durability rules
#: RL007–RL012 target exactly these layers.
ORCH_PATH_PACKAGES = frozenset({"resilience", "fabric", "obs", "profiling"})

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint\s*:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


def parse_pragmas(
    lines: List[str],
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract suppression pragmas from *lines*.

    Returns ``(per_line, per_file)`` where ``per_line`` maps 1-based
    line numbers to the set of disabled rule ids (upper-cased; the
    token ``ALL`` disables everything) and ``per_file`` is the set of
    file-wide disabled rules.
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        if "repro-lint" not in line:
            continue
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = {
            token.strip().upper()
            for token in match.group(2).split(",")
            if token.strip()
        }
        if match.group(1) == "disable-file":
            per_file |= rules
        else:
            per_line.setdefault(lineno, set()).update(rules)
    return per_line, per_file


class LintModule:
    """One parsed source file plus everything checkers ask about it."""

    def __init__(self, source: str, relpath: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        #: Raises SyntaxError upward; api.run_lint turns that into RL000.
        self.tree = ast.parse(source, filename=self.relpath)
        self._line_pragmas, self._file_pragmas = parse_pragmas(self.lines)

    # ------------------------------------------------------------------
    @property
    def package(self) -> str:
        """The ``repro`` sub-package this file belongs to (`""` for
        top-level modules like ``cli.py``, or files outside ``repro``)."""
        parts = self.relpath.split("/")
        try:
            index = parts.index("repro")
        except ValueError:
            return ""
        subpath = parts[index + 1 : -1]
        return subpath[0] if subpath else ""

    @property
    def in_sim_path(self) -> bool:
        return self.package in SIM_PATH_PACKAGES

    @property
    def in_orch_path(self) -> bool:
        return self.package in ORCH_PATH_PACKAGES

    # ------------------------------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_disabled(self, rule: str, node: ast.AST) -> bool:
        """True when a pragma suppresses *rule* at *node*'s location."""
        rule = rule.upper()
        if rule in self._file_pragmas or "ALL" in self._file_pragmas:
            return True
        start = getattr(node, "lineno", None)
        if start is None:
            return False
        end = getattr(node, "end_lineno", None) or start
        for lineno in range(start, end + 1):
            disabled = self._line_pragmas.get(lineno)
            if disabled and (rule in disabled or "ALL" in disabled):
                return True
        return False

    # ------------------------------------------------------------------
    def walk(self):
        return ast.walk(self.tree)

    def top_level_classes(self) -> List[ast.ClassDef]:
        return [
            node for node in self.tree.body if isinstance(node, ast.ClassDef)
        ]

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map for checkers that need enclosing context."""
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        return parents

    def enclosing_class(
        self, node: ast.AST, parents: Optional[Dict[ast.AST, ast.AST]] = None
    ) -> Optional[ast.ClassDef]:
        parents = parents if parents is not None else self.parent_map()
        cursor = parents.get(node)
        while cursor is not None:
            if isinstance(cursor, ast.ClassDef):
                return cursor
            cursor = parents.get(cursor)
        return None
