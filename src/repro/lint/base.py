"""Checker plugin base class and registry.

A checker is one rule: it owns a rule id, a default severity, and a
``check(module)`` pass over one file's AST. Checkers are registered with
the :func:`register` decorator at import time; :func:`all_checkers`
instantiates the full set (importing :mod:`repro.lint.checkers` for its
registration side effects), so adding a rule is one new class in one
file.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Type

from repro.lint.context import LintModule
from repro.lint.finding import Finding


class Checker:
    """One lint rule.

    Subclasses set :attr:`rule_id`, :attr:`name`, :attr:`severity`, and
    optionally :attr:`packages` (restrict the rule to specific ``repro``
    sub-packages; ``None`` means every scanned file), then implement
    :meth:`check`, emitting findings with :meth:`emit` so inline pragmas
    are honoured against the full source span of the offending node.
    """

    #: ``RLnnn`` identifier; must be unique across registered checkers.
    rule_id: str = ""
    #: Short kebab-case name used in reports (``no-wallclock``).
    name: str = ""
    #: Default severity of this rule's findings.
    severity: str = "error"
    #: Restrict to these ``repro`` sub-packages, or None for all files.
    packages: Optional[Iterable[str]] = None

    def applies_to(self, module: LintModule) -> bool:
        if self.packages is None:
            return True
        return module.package in set(self.packages)

    def check(self, module: LintModule) -> List[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def emit(
        self,
        out: List[Finding],
        module: LintModule,
        node: ast.AST,
        message: str,
        *,
        hint: str = "",
        severity: Optional[str] = None,
    ) -> None:
        """Append a Finding anchored at *node* unless a pragma on any
        line the node spans suppresses this rule."""
        if module.is_disabled(self.rule_id, node):
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        out.append(
            Finding(
                rule=self.rule_id,
                severity=severity or self.severity,
                path=module.relpath,
                line=line,
                col=col,
                message=message,
                hint=hint,
                context=module.line_text(line),
            )
        )

    def run(self, module: LintModule) -> List[Finding]:
        """``check()`` gated on this rule's package restriction."""
        if not self.applies_to(module):
            return []
        return list(self.check(module))


#: Registered checker classes in registration order.
_REGISTRY: List[Type[Checker]] = []


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding *cls* to the global checker registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if any(existing.rule_id == cls.rule_id for existing in _REGISTRY):
        raise ValueError(f"duplicate rule id: {cls.rule_id}")
    _REGISTRY.append(cls)
    return cls


def checker_classes() -> List[Type[Checker]]:
    """All registered checker classes, importing the built-in set."""
    import repro.lint.checkers  # noqa: F401  (registration side effect)

    return list(_REGISTRY)


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker, sorted by rule id."""
    return [cls() for cls in sorted(checker_classes(), key=lambda c: c.rule_id)]
