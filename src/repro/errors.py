"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulator reached an invalid internal state."""


class QueueFullError(SimulationError):
    """A bounded hardware queue received a request while full.

    Memory-controller queues apply backpressure instead of raising; this
    error signals a protocol violation (an unchecked enqueue).
    """


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed."""


class RetentionViolationError(SimulationError):
    """A short-retention block was not refreshed before its data expired.

    The paper reports never observing this with the default configuration;
    we raise (or record, depending on policy) so misconfigured systems are
    detected rather than silently losing data.
    """


class ResilienceError(ReproError):
    """Base class for experiment-orchestration failures.

    These describe problems with *running* a job (worker processes,
    checkpoints), not with the simulated system itself.
    """


class JobTimeoutError(ResilienceError):
    """A supervised job exceeded its wall-clock timeout and was killed."""


class JobCrashedError(ResilienceError):
    """A worker process died (non-zero exit, signal, or closed pipe)
    before delivering a result."""


class CorruptResultError(JobCrashedError):
    """A worker returned a payload that failed result validation."""


class CheckpointCorruptError(ResilienceError):
    """A results journal contains an unreadable record before its final
    line (a truncated *final* line is expected after a crash and is
    skipped, not an error)."""


class FabricError(ReproError):
    """Base class for sharded-sweep-fabric failures.

    These describe problems with the parallel execution fabric — worker
    fleets, journal leases, the serve socket — not with the simulated
    system itself."""


class LockTimeoutError(FabricError):
    """A journal lock could not be acquired within its deadline.

    Either another process is wedged while holding the lock, or the
    lease file is stale (e.g. left behind by a SIGKILL'd coordinator on
    a filesystem without ``flock`` support)."""


class ProtocolError(FabricError):
    """A ``repro-rrm serve`` client or server received a malformed or
    out-of-sequence message on the line-delimited JSON wire protocol."""


class LedgerCorruptError(ReproError):
    """A run ledger contains an unreadable record before its final line.

    Mirrors :class:`CheckpointCorruptError`: a truncated *final* line is
    a torn append and is dropped silently; anything earlier means the
    file was edited or damaged and must not be trusted."""
