"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulator reached an invalid internal state."""


class QueueFullError(SimulationError):
    """A bounded hardware queue received a request while full.

    Memory-controller queues apply backpressure instead of raising; this
    error signals a protocol violation (an unchecked enqueue).
    """


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed."""


class RetentionViolationError(SimulationError):
    """A short-retention block was not refreshed before its data expired.

    The paper reports never observing this with the default configuration;
    we raise (or record, depending on policy) so misconfigured systems are
    detected rather than silently losing data.
    """
