"""Discrete-event simulation engine.

Time is a float in nanoseconds. Events are callbacks scheduled on a binary
heap; ties break on insertion order so the simulation is deterministic.
"""

from repro.engine.simulator import (
    Event,
    EventCostAccounting,
    Simulator,
    owner_label,
)

__all__ = ["Event", "EventCostAccounting", "Simulator", "owner_label"]
