"""Heap-based discrete-event simulator.

The engine is intentionally minimal: a priority queue of ``(time, seq)``
keyed events, a current-time cursor, and helpers for periodic events. All
higher-level behaviour (memory scheduling, refresh interrupts, decay ticks)
is built from these primitives.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so simultaneous events fire in the
    order they were scheduled — this keeps runs deterministic, which the
    test suite relies on.
    """

    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: ``module:qualname`` of the scheduling owner; populated only while
    #: cost accounting is enabled (never consulted by the run loop's
    #: ordering, so accounting cannot perturb the simulation).
    owner: Optional[str] = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


def owner_label(callback: Callable) -> str:
    """``module:qualname`` identity of a callback for cost attribution.

    Bound methods resolve through ``__func__`` so the label names the
    defining class, not the instance. Objects with neither module nor
    qualname (rare C callables) fall back to ``?``.
    """
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", None) or "?"
    qual = getattr(func, "__qualname__", None) or getattr(
        func, "__name__", "?"
    )
    return f"{module}:{qual}"


class EventCostAccounting:
    """Opt-in per-owner dispatch accounting for the run loop.

    Two tables, one determinism contract:

    - ``counts`` maps owner labels to callbacks dispatched — a pure
      function of the simulated run, bit-stable across hosts, safe to
      pin in committed benchmarks;
    - ``host_ns`` maps owner labels to cumulative host time measured by
      the *injected* clock (the engine itself never touches a wall
      clock; sim-path rule RL001). With no clock, only counts accrue.

    Accounting is observational: it wraps each dispatch but neither
    reorders events nor touches simulation state, so profiled runs stay
    bit-identical to unprofiled ones (asserted in tests).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self.counts: Dict[str, int] = {}
        self.host_ns: Dict[str, float] = {}
        self.dispatches_total = 0

    def register_metrics(self, registry, prefix: str = "engine.cost") -> None:
        """Publish accounting totals into a telemetry registry."""
        registry.gauge(f"{prefix}.dispatches_total", lambda: self.dispatches_total)
        registry.gauge(f"{prefix}.owners", lambda: len(self.counts))

    def dispatch(self, event: Event) -> None:
        """Run *event*'s callback, charging its owner."""
        owner = event.owner or "?"
        clock = self._clock
        if clock is None:
            event.callback()
        else:
            t0 = clock()
            try:
                event.callback()
            finally:
                self.host_ns[owner] = (
                    self.host_ns.get(owner, 0.0) + (clock() - t0) * 1e9
                )
        self.counts[owner] = self.counts.get(owner, 0) + 1
        self.dispatches_total += 1


class Simulator:
    """Discrete-event simulation core.

    Usage::

        sim = Simulator()
        sim.schedule_at(100.0, lambda: ...)
        sim.run(until=1_000_000.0)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self._running = False
        self._stopped = False
        self._accounting: Optional[EventCostAccounting] = None

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled (processed, pending or cancelled)."""
        return self._seq

    @property
    def events_cancelled(self) -> int:
        """Number of cancelled events the run loop has discarded."""
        return self._events_cancelled

    @property
    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def register_metrics(self, registry, prefix: str = "engine") -> None:
        """Publish the engine's counters into a telemetry registry."""
        registry.gauge(f"{prefix}.now_ns", lambda: self._now)
        registry.gauge(f"{prefix}.events_processed", lambda: self._events_processed)
        registry.gauge(f"{prefix}.events_scheduled", lambda: self._seq)
        registry.gauge(f"{prefix}.events_cancelled", lambda: self._events_cancelled)
        registry.gauge(f"{prefix}.pending_events", lambda: self.pending_events)

    def enable_cost_accounting(
        self, clock: Optional[Callable[[], float]] = None
    ) -> EventCostAccounting:
        """Turn on per-owner dispatch accounting for this simulator.

        Must be called before events of interest are scheduled — owner
        labels are resolved at schedule time, so earlier events are
        charged to ``?``. *clock* (injected; e.g. ``time.perf_counter``
        passed by the caller) additionally enables host-time charging.
        """
        self._accounting = EventCostAccounting(clock=clock)
        return self._accounting

    @property
    def cost_accounting(self) -> Optional[EventCostAccounting]:
        return self._accounting

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        *,
        owner: Optional[str] = None,
    ) -> Event:
        """Schedule *callback* at absolute *time* (ns). Returns the event.

        *owner* overrides the cost-accounting attribution label; by
        default the label is derived from the callback itself (and only
        when accounting is enabled — the default path stays allocation-
        identical to the unprofiled engine).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback)
        if self._accounting is not None:
            event.owner = owner if owner is not None else owner_label(callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: EventCallback,
        *,
        owner: Optional[str] = None,
    ) -> Event:
        """Schedule *callback* after *delay* ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, owner=owner)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        *,
        start: Optional[float] = None,
    ) -> Event:
        """Schedule *callback* to repeat every *period* ns.

        The first firing is at *start* (default: one period from now). The
        returned event is the first occurrence; cancelling it stops the
        chain only before it first fires. For a stoppable periodic task,
        have the callback raise StopIteration — the chain then ends.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first = self._now + period if start is None else start
        # Attribute the whole periodic chain to the wrapped callback,
        # not this engine-local closure.
        chain_owner = (
            owner_label(callback) if self._accounting is not None else None
        )

        def tick() -> None:
            try:
                callback()
            except StopIteration:
                return
            self.schedule_after(period, tick, owner=chain_owner)

        return self.schedule_at(first, tick, owner=chain_owner)

    def stop(self) -> None:
        """Stop the run loop after the current callback returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue empties, *until* is reached, or
        *max_events* callbacks have run. Returns the final simulation time.

        When *until* is given, time advances exactly to *until* even if the
        last event fires earlier, so rate computations (events / elapsed
        time) are well defined.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed_this_run = 0
        accounting = self._accounting
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    self._events_cancelled += 1
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and processed_this_run >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                if accounting is None:
                    event.callback()
                else:
                    accounting.dispatch(event)
                self._events_processed += 1
                processed_this_run += 1
        finally:
            self._running = False
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return self._now
