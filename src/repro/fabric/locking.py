"""Inter-process file locking for the shared sweep journal.

One advisory exclusive lock per journal, held only for the few
milliseconds a claim/append critical section needs. POSIX hosts get
``fcntl.flock`` on a sidecar ``<journal>.lock`` file — the kernel
releases it automatically when the holder dies, so a SIGKILL'd worker
can never wedge the fleet. Hosts without ``fcntl`` (or filesystems that
refuse ``flock``) fall back to ``O_CREAT | O_EXCL`` spin-locking with a
staleness bound, which is weaker but portable.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable

from repro.errors import LockTimeoutError

try:  # pragma: no cover - import probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX host
    fcntl = None

#: Seconds between acquisition attempts while the lock is contended.
_POLL_S = 0.003

#: An O_EXCL lockfile older than this is presumed orphaned (its creator
#: died without fcntl cleanup) and is broken. flock never needs this.
_STALE_LOCKFILE_S = 60.0


class FileLock:
    """Advisory exclusive lock on ``<path>.lock``; use as a context manager.

    Re-entrant within a process is *not* supported — the fabric's
    critical sections never nest. ``timeout_s`` bounds acquisition; a
    held lock past the deadline raises :class:`LockTimeoutError` rather
    than deadlocking the fleet. ``clock`` injects the timeout clock so
    expiry paths are testable without sleeping (RL011).
    """

    def __init__(
        self,
        path,
        *,
        timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(str(path) + ".lock")
        self.timeout_s = timeout_s
        self._clock = clock
        self._fd: int | None = None
        self._excl = False

    def acquire(self) -> "FileLock":
        deadline = self._clock() + self.timeout_s
        if fcntl is not None:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return self
                except OSError:
                    if self._clock() >= deadline:
                        os.close(fd)
                        raise LockTimeoutError(
                            f"{self.path}: lock not acquired within "
                            f"{self.timeout_s:.3g}s"
                        ) from None
                    time.sleep(_POLL_S)
        return self._acquire_excl(deadline)

    def _acquire_excl(self, deadline: float) -> "FileLock":
        """Portable fallback: the lockfile's existence is the lock."""
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    # The lockfile carries no fcntl state, so its mtime —
                    # host wall time by definition — is the only staleness
                    # signal available.
                    age = time.time() - self.path.stat().st_mtime
                    if age > _STALE_LOCKFILE_S:
                        self.path.unlink(missing_ok=True)
                        continue
                except OSError:
                    pass  # raced with the holder's release; retry
                if self._clock() >= deadline:
                    raise LockTimeoutError(
                        f"{self.path}: lock not acquired within "
                        f"{self.timeout_s:.3g}s"
                    ) from None
                time.sleep(_POLL_S)
                continue
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            except OSError:
                # Leave nothing behind: an orphaned fd plus an empty
                # lockfile would wedge every other worker for
                # _STALE_LOCKFILE_S.
                os.close(fd)
                self.path.unlink(missing_ok=True)
                raise
            self._fd = fd
            self._excl = True
            return self

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            if self._excl:
                self.path.unlink(missing_ok=True)
            elif fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None
            self._excl = False

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
