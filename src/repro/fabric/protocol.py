"""The ``repro-rrm serve`` wire protocol: line-delimited JSON.

One request object per line from the client; one response object per
line from the server, optionally followed by a stream of event objects
(``submit --watch`` / ``watch``). The framing is a bare ``\\n`` — no
length prefixes, no binary — so a sweep can be driven with ``nc`` and
the stream is greppable.

Addresses are either a Unix-socket path (the default; the server
creates it) or ``host:port`` for TCP. Anything containing a colon is
parsed as TCP, so relative paths stay unambiguous.

Requests carry an ``op``::

    {"op": "ping"}
    {"op": "submit", "spec": {...SweepSpec...}, "watch": true}
    {"op": "status"}
    {"op": "watch", "sweep": "sweep-001"}
    {"op": "metrics"}
    {"op": "fleet"}
    {"op": "profile", "duration_s": 2.0}
    {"op": "shutdown"}

``metrics`` returns ``{"ok": true, "text": "<Prometheus exposition>"}``
— the same text the optional plain-HTTP ``/metrics`` endpoint serves.
``fleet`` returns ``{"ok": true, "fleet": {...FleetStatus.as_dict()...}}``
(per-worker heartbeats with staleness annotations plus fleet totals).
``profile`` samples the *server process itself* for ``duration_s`` host
seconds (clamped to 60) and returns ``{"ok": true, "profile":
{...Profile.to_json_dict()...}}`` — an operator's way to ask a live
server where its time goes without attaching a debugger.

Responses carry ``ok`` (and ``error`` when false); streamed events
carry ``event`` — ``sweep.queued`` / ``sweep.started`` /
``sweep.finished``, the job lifecycle (``job.attempt`` / ``job.result``
/ ``job.retry`` / ``job.failed``, plus ``fabric.*``), ``ledger.entry``
(one per settled cell, the full fingerprinted entry) and
``gate.verdict`` (when the server holds a baseline).
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import ProtocolError

PROTOCOL_VERSION = 1

#: Maximum accepted line length (a defensive bound; a sweep spec or
#: ledger entry is a few KB).
MAX_LINE_BYTES = 4 * 1024 * 1024

OP_PING = "ping"
OP_SUBMIT = "submit"
OP_STATUS = "status"
OP_WATCH = "watch"
OP_METRICS = "metrics"
OP_FLEET = "fleet"
OP_PROFILE = "profile"
OP_SHUTDOWN = "shutdown"

EVENT_SWEEP_QUEUED = "sweep.queued"
EVENT_SWEEP_STARTED = "sweep.started"
EVENT_SWEEP_FINISHED = "sweep.finished"
EVENT_LEDGER_ENTRY = "ledger.entry"
EVENT_GATE_VERDICT = "gate.verdict"

#: Events that terminate a watch stream.
TERMINAL_EVENTS = (EVENT_SWEEP_FINISHED,)

Address = Union[str, Path]


def parse_address(address: Address) -> Tuple[str, object]:
    """``("tcp", (host, port))`` for ``host:port``, else ``("unix", path)``."""
    address = str(address)
    if not address:
        raise ProtocolError("empty serve address")
    if ":" in address:
        host, _, port = address.rpartition(":")
        try:
            return "tcp", (host or "127.0.0.1", int(port))
        except ValueError:
            raise ProtocolError(
                f"bad TCP address {address!r}: port must be an integer"
            ) from None
    return "unix", address


def listen(address: Address, backlog: int = 16) -> socket.socket:
    """Bind a listening server socket for *address*."""
    family, target = parse_address(address)
    if family == "unix":
        path = Path(str(target))
        path.unlink(missing_ok=True)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(path))
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(target)
    sock.listen(backlog)
    return sock


def connect(address: Address, timeout_s: Optional[float] = None) -> socket.socket:
    """Open a client connection to a serving *address*."""
    family, target = parse_address(address)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    try:
        sock.connect(target if family == "tcp" else str(target))
    except OSError as exc:
        sock.close()
        raise ProtocolError(f"cannot connect to {address}: {exc}") from None
    return sock


class LineChannel:
    """One connection's framing: JSON objects in, JSON objects out."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buffer = b""
        self._eof = False

    def send(self, message: dict) -> None:
        try:
            self.sock.sendall(
                json.dumps(message, separators=(",", ":")).encode("utf-8")
                + b"\n"
            )
        except OSError as exc:
            raise ProtocolError(f"send failed: {exc}") from None

    def recv(self) -> Optional[dict]:
        """The next message, or ``None`` on a clean EOF."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[:newline]
                self._buffer = self._buffer[newline + 1 :]
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                except ValueError as exc:
                    raise ProtocolError(f"bad message line: {exc}") from None
                if not isinstance(message, dict):
                    raise ProtocolError(
                        f"expected a JSON object, got {type(message).__name__}"
                    )
                return message
            if self._eof:
                if self._buffer.strip():
                    raise ProtocolError("connection closed mid-message")
                return None
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError(
                    f"message exceeds {MAX_LINE_BYTES} bytes"
                )
            try:
                chunk = self.sock.recv(65536)
            except OSError as exc:
                raise ProtocolError(f"recv failed: {exc}") from None
            if not chunk:
                self._eof = True
                continue
            self._buffer += chunk

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "LineChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
