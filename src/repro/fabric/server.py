"""``repro-rrm serve``: a thin batch service over the sweep fabric.

The server accepts :class:`~repro.fabric.spec.SweepSpec` submissions
over a local socket, schedules them sequentially on the fabric (each
sweep itself fans out over ``spec.jobs`` worker processes), and streams
progress events, per-cell ledger entries and — when pinned against a
baseline — gate verdicts back to watching clients.

Design choices, all in the service of crash-composability:

- every sweep gets a predictably named journal
  (``<journal_dir>/sweep-001.jsonl``), so a sweep interrupted by
  killing the *server* resumes with the ordinary CLI:
  ``repro-rrm sweep --resume --journal <dir>/sweep-001.jsonl --jobs N``;
- sweeps run one at a time (the fabric already saturates the host;
  queueing at the server keeps worker counts predictable);
- every event is buffered per sweep, so a ``watch`` attached late
  replays the full history before going live — clients never have to
  race the scheduler.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
import traceback
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigError, ProtocolError, ReproError
from repro.fabric import protocol
from repro.fabric.spec import SweepSpec

#: How long a watch subscriber waits for the next event before checking
#: whether the server is shutting down.
_WATCH_POLL_S = 0.25


class _SweepState:
    """One submitted sweep: spec, lifecycle, and its event history."""

    def __init__(self, sweep_id: str, spec: SweepSpec, journal_path: Path,
                 ledger_path: Path) -> None:
        self.sweep_id = sweep_id
        self.spec = spec
        self.journal_path = journal_path
        self.ledger_path = ledger_path
        self.state = "queued"  # queued | running | finished | failed
        self.completed = 0
        self.failed = 0
        self.error: Optional[str] = None
        #: The live ExperimentRunner while (and after) the sweep runs;
        #: the server's metrics/fleet requests read through it.
        self.runner = None
        self.lock = threading.Lock()
        self.events: List[dict] = []
        self.subscribers: List[queue_module.Queue] = []

    # ------------------------------------------------------------------
    def publish(self, event: dict) -> None:
        """Record one event and fan it out to live subscribers."""
        with self.lock:
            self.events.append(event)
            subscribers = list(self.subscribers)
        for subscriber in subscribers:
            subscriber.put(event)

    def subscribe(self) -> queue_module.Queue:
        """History-then-live event queue for one watcher."""
        subscriber: queue_module.Queue = queue_module.Queue()
        with self.lock:
            for event in self.events:
                subscriber.put(event)
            self.subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: queue_module.Queue) -> None:
        with self.lock:
            if subscriber in self.subscribers:
                self.subscribers.remove(subscriber)

    def summary(self) -> dict:
        rate = 0.0
        runner = self.runner
        if runner is not None and getattr(runner, "fleet", None) is not None:
            rate = runner.fleet.totals().get("sim_events_per_sec", 0.0)
        with self.lock:
            return {
                "sweep": self.sweep_id,
                "state": self.state,
                "jobs": len(self.spec.keys()),
                "completed": self.completed,
                "failed": self.failed,
                "workers": self.spec.jobs,
                "sim_events_per_sec": rate,
                "journal": str(self.journal_path),
                "ledger": str(self.ledger_path),
                **({"error": self.error} if self.error else {}),
            }


class FabricServer:
    """The batch service; one instance per ``repro-rrm serve`` process."""

    def __init__(
        self,
        address,
        journal_dir,
        *,
        baseline_path=None,
        on_log=None,
        logger=None,
        http_address=None,
    ) -> None:
        self.address = address
        self.journal_dir = Path(journal_dir)
        self.baseline_path = baseline_path
        self.on_log = on_log
        #: Optional :class:`~repro.obs.live.slog.StructuredLogger`;
        #: preferred over the legacy plain-line ``on_log`` hook.
        self.logger = logger
        #: Optional ``HOST:PORT`` for a plain-HTTP ``/metrics`` endpoint.
        self.http_address = http_address
        self._http = None
        self._sweeps: Dict[str, _SweepState] = {}
        self._order: List[str] = []
        self._queue: "queue_module.Queue[Optional[str]]" = queue_module.Queue()
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._listener = None
        self._threads: List[threading.Thread] = []
        #: Sweeps the scheduler settled as failed; exposed via ping so a
        #: swallowed scheduler exception is visible from any client.
        self.sweeps_failed = 0

    def _log(self, event: str, **fields) -> None:
        """One structured log record (or a legacy plain line)."""
        if self.logger is not None:
            self.logger.event(event, **fields)
        elif self.on_log is not None:
            detail = " ".join(f"{k}={v}" for k, v in fields.items())
            self.on_log(f"{event} {detail}".strip())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FabricServer":
        """Bind the socket and start the accept + scheduler threads."""
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self._listener = protocol.listen(self.address)
        self._listener.settimeout(_WATCH_POLL_S)
        for name, target in (
            ("fabric-accept", self._accept_loop),
            ("fabric-scheduler", self._scheduler_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        if self.http_address is not None:
            from repro.obs.live.httpmetrics import MetricsHTTPServer

            self._http = MetricsHTTPServer(
                self.http_address, self.render_metrics
            ).start()
            self._log("serve.http_metrics", port=self._http.port)
        self._log(
            "serve.listening",
            address=str(self.address),
            journal_dir=str(self.journal_dir),
        )
        return self

    def stop(self) -> None:
        """Stop accepting, finish nothing: in-flight sweeps are abandoned
        to their journals (that is the crash-recovery story, not a bug)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._queue.put(None)
        if self._http is not None:
            self._http.stop()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        family, target = protocol.parse_address(self.address)
        if family == "unix":
            Path(str(target)).unlink(missing_ok=True)

    def wait(self, timeout_s: Optional[float] = None) -> None:
        """Block until the server stops (the CLI's foreground mode)."""
        self._stopping.wait(timeout_s)
        for thread in self._threads:
            thread.join(timeout=_WATCH_POLL_S * 4)

    # ------------------------------------------------------------------
    # Submission / inspection (also usable in-process, without a socket)
    # ------------------------------------------------------------------
    def submit(self, spec: SweepSpec) -> str:
        with self._lock:
            sweep_id = f"sweep-{len(self._order) + 1:03d}"
            state = _SweepState(
                sweep_id,
                spec,
                journal_path=self.journal_dir / f"{sweep_id}.jsonl",
                ledger_path=self.journal_dir / f"{sweep_id}.ledger.jsonl",
            )
            self._sweeps[sweep_id] = state
            self._order.append(sweep_id)
        state.publish(
            {"event": protocol.EVENT_SWEEP_QUEUED, "sweep": sweep_id,
             "spec": spec.to_json_dict()}
        )
        self._queue.put(sweep_id)
        self._log("sweep.queued", sweep=sweep_id, jobs=len(spec.keys()))
        return sweep_id

    def status(self) -> List[dict]:
        with self._lock:
            return [self._sweeps[sid].summary() for sid in self._order]

    def sweep(self, sweep_id: str) -> _SweepState:
        with self._lock:
            try:
                return self._sweeps[sweep_id]
            except KeyError:
                raise ProtocolError(f"unknown sweep {sweep_id!r}") from None

    def _live_runner(self):
        """The most recent sweep's runner (running or finished), if any."""
        with self._lock:
            for sweep_id in reversed(self._order):
                runner = self._sweeps[sweep_id].runner
                if runner is not None:
                    return runner
        return None

    # ------------------------------------------------------------------
    # Live observability (the `metrics` / `fleet` ops and /metrics HTTP)
    # ------------------------------------------------------------------
    def build_registry(self):
        """A fresh registry over the server's live state.

        Rebuilt per scrape: registration is one-time wiring per
        registry, and snapshots are pure reads, so a throwaway registry
        is the clean way to expose objects whose lifetime (one sweep)
        is shorter than the server's.
        """
        from repro.telemetry.registry import MetricRegistry

        registry = MetricRegistry()
        registry.gauge("serve.sweeps_submitted", lambda: len(self._order))
        registry.gauge("serve.sweeps_failed", lambda: self.sweeps_failed)
        runner = self._live_runner()
        if runner is not None and runner.fabric_stats is not None:
            runner.fabric_stats.register_metrics(registry)
        if runner is not None and runner.fleet is not None:
            runner.fleet.register_metrics(registry)
        if self.logger is not None:
            self.logger.register_metrics(registry)
        if self._http is not None:
            self._http.register_metrics(registry)
        return registry

    def render_metrics(self) -> str:
        """Prometheus exposition text for the current server state."""
        from repro.obs.live.exposition import render_exposition

        return render_exposition(self.build_registry())

    def fleet_snapshot(self) -> dict:
        """The aggregated worker-heartbeat view (empty before any sweep)."""
        runner = self._live_runner()
        if runner is not None and runner.fleet is not None:
            return runner.fleet.as_dict()
        from repro.obs.live.heartbeat import FleetStatus

        return FleetStatus().as_dict()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while not self._stopping.is_set():
            sweep_id = self._queue.get()
            if sweep_id is None:
                break
            state = self.sweep(sweep_id)
            try:
                self._run_sweep(state)
            except Exception as exc:  # noqa: BLE001 - keep serving
                with state.lock:
                    state.state = "failed"
                    state.error = f"{type(exc).__name__}: {exc}"
                self.sweeps_failed += 1
                self._log(
                    "sweep.failed",
                    level="error",
                    sweep=sweep_id,
                    error=state.error,
                    traceback=traceback.format_exc(),
                )
            state.publish(
                {"event": protocol.EVENT_SWEEP_FINISHED, **state.summary()}
            )

    def _run_sweep(self, state: _SweepState) -> None:
        from repro.obs.ledger import KIND_SWEEP, LedgerEntry, RunLedger
        from repro.obs.live.heartbeat import HEARTBEAT_EVENT
        from repro.sim.runner import ExperimentRunner

        spec = state.spec
        with state.lock:
            state.state = "running"
        state.publish(
            {"event": protocol.EVENT_SWEEP_STARTED, "sweep": state.sweep_id,
             "jobs": len(spec.keys()), "workers": spec.jobs}
        )
        self._log("sweep.started", sweep=state.sweep_id, workers=spec.jobs)
        config = spec.build_config()

        def on_event(name: str, args: dict) -> None:
            if name == HEARTBEAT_EVENT:
                # Heartbeats are aggregated in the runner's FleetStatus
                # (served via the `fleet` op); buffering every beat in
                # the watch history would grow it without bound.
                return
            state.publish({"event": name, "sweep": state.sweep_id, **args})

        entries = []

        def on_cell(workload, scheme, result) -> None:
            entry = LedgerEntry.from_result(result, config, kind=KIND_SWEEP)
            entries.append(entry)
            with state.lock:
                state.completed += 1
            state.publish(
                {"event": protocol.EVENT_LEDGER_ENTRY,
                 "sweep": state.sweep_id, "entry": entry.to_json_dict()}
            )

        runner = ExperimentRunner(
            config,
            workloads=spec.workloads,
            schemes=spec.build_schemes(),
            max_events=spec.max_events,
            n_jobs=spec.jobs,
            journal_path=state.journal_path,
            fault_plan=spec.build_fault_plan(),
            recorder_dir=self.journal_dir / f"{state.sweep_id}.flight",
            on_event=on_event,
        )
        state.runner = runner
        runner.run_all(progress=on_cell)
        with state.lock:
            state.failed = len(runner.failures)
            state.state = "finished"
        # The fabric already merged worker ledger shards when spec.jobs
        # > 1 and a ledger path was given; here the server owns the
        # ledger and appends the entries it streamed, in sweep order.
        ledger = RunLedger(state.ledger_path)
        for entry in sorted(entries, key=lambda e: e.name):
            ledger.append(entry)
        self._gate(state, entries)
        self._log(
            "sweep.finished",
            sweep=state.sweep_id,
            completed=state.completed,
            failed=state.failed,
        )

    def _gate(self, state: _SweepState, entries) -> None:
        """Judge the sweep against the pinned baseline, if one is set."""
        if self.baseline_path is None or not entries:
            return
        from repro.obs.gate import (
            compare_samples,
            load_baseline,
            samples_from_entries,
        )

        try:
            report = compare_samples(
                load_baseline(self.baseline_path),
                samples_from_entries(entries),
            )
        except ReproError as exc:
            state.publish(
                {"event": protocol.EVENT_GATE_VERDICT,
                 "sweep": state.sweep_id, "error": str(exc)}
            )
            return
        state.publish(
            {"event": protocol.EVENT_GATE_VERDICT, "sweep": state.sweep_id,
             "counts": report.counts, "exit_code": report.exit_code(),
             "report": report.to_json_dict()}
        )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by stop()
            conn.settimeout(None)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(protocol.LineChannel(conn),),
                name="fabric-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, channel: protocol.LineChannel) -> None:
        with channel:
            try:
                while not self._stopping.is_set():
                    request = channel.recv()
                    if request is None:
                        return
                    try:
                        if self._handle(channel, request):
                            return
                    except (ProtocolError, ConfigError) as exc:
                        channel.send({"ok": False, "error": str(exc)})
            except ProtocolError:
                return  # client went away or spoke garbage; drop it

    def _handle(self, channel: protocol.LineChannel, request: dict) -> bool:
        """Serve one request; True means the connection is finished."""
        op = request.get("op")
        if op == protocol.OP_PING:
            channel.send(
                {"ok": True, "version": protocol.PROTOCOL_VERSION,
                 "sweeps": len(self._order),
                 "sweeps_failed": self.sweeps_failed}
            )
        elif op == protocol.OP_SUBMIT:
            spec = SweepSpec.from_json_dict(request.get("spec") or {})
            sweep_id = self.submit(spec)
            channel.send({"ok": True, "sweep": sweep_id})
            if request.get("watch"):
                self._stream(channel, sweep_id)
                return True
        elif op == protocol.OP_STATUS:
            channel.send({"ok": True, "sweeps": self.status()})
        elif op == protocol.OP_METRICS:
            channel.send({"ok": True, "text": self.render_metrics()})
        elif op == protocol.OP_FLEET:
            channel.send({"ok": True, "fleet": self.fleet_snapshot()})
        elif op == protocol.OP_PROFILE:
            # Sample this very process (accept/scheduler threads plus
            # whatever the fabric coordinator is doing). profile_self
            # owns the sampler thread — this module only forks workers.
            from repro.profiling import profile_self

            duration = request.get("duration_s", 2.0)
            if not isinstance(duration, (int, float)) or duration != duration:
                raise ProtocolError("profile duration_s must be a number")
            prof = profile_self(float(duration))
            prof.meta["source"] = "serve"
            channel.send({"ok": True, "profile": prof.to_json_dict()})
        elif op == protocol.OP_WATCH:
            sweep_id = request.get("sweep")
            if not sweep_id:
                raise ProtocolError("watch needs a 'sweep' id")
            self.sweep(sweep_id)  # validate before acking
            channel.send({"ok": True, "sweep": sweep_id})
            self._stream(channel, sweep_id)
            return True
        elif op == protocol.OP_SHUTDOWN:
            channel.send({"ok": True})
            self._log("serve.shutdown_requested")
            self.stop()
            return True
        else:
            raise ProtocolError(f"unknown op {op!r}")
        return False

    def _stream(self, channel: protocol.LineChannel, sweep_id: str) -> None:
        """Replay + follow one sweep's events until it finishes."""
        state = self.sweep(sweep_id)
        subscriber = state.subscribe()
        try:
            while not self._stopping.is_set():
                try:
                    event = subscriber.get(timeout=_WATCH_POLL_S)
                except queue_module.Empty:
                    continue
                channel.send(event)
                if event.get("event") in protocol.TERMINAL_EVENTS:
                    return
        finally:
            state.unsubscribe(subscriber)
