"""The checkpoint journal as a shared work queue.

The resilience journal (:mod:`repro.resilience.journal`) already makes
every settled job durable and exactly-once on resume. The fabric spends
that capital on parallelism: N worker processes treat one journal file
as the queue, claiming jobs by appending *lease* records and settling
them by appending the usual result/failure records. All scheduling
state lives in the file, so worker crashes, coordinator crashes, and
``--resume`` all compose for free — whatever survives in the journal
*is* the truth.

Concurrency protocol:

- every read-decide-append critical section runs under an exclusive
  :class:`~repro.fabric.locking.FileLock` on ``<journal>.lock``;
- records are appended with a single ``O_APPEND`` write (POSIX appends
  don't interleave), and the appender repairs a torn tail (a crash mid-
  write) by truncating the fragment before adding its own line — a
  fragment is by definition an incomplete record from a dead writer, so
  dropping it loses nothing and readers never see a corrupt line;
- a *claim* carries a wall-clock lease deadline. A claim whose lease
  expired, or that was explicitly released (worker death, retry,
  timeout), makes the job claimable again with the next attempt number
  — attempt counts are derived from the journal, so deterministic
  fault plans (``crash:0:1``) fire identically under any worker count.

Exactly-once: a job is *done* when a result or failure record exists.
Claims are advisory. In the worst race (a lease expires while its
worker is still running) two workers may run the same job, but the
simulation is deterministic per seed, so both append byte-identical
result records and the merge keyed by (workload, scheme) is unaffected.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.fabric.locking import FileLock
from repro.resilience.journal import JOURNAL_VERSION, JournalContents, ResultJournal
from repro.utils.persist import atomic_write_text

Key = Tuple[str, str]  # (workload, scheme value)


@dataclass(frozen=True)
class Claim:
    """One granted lease: which job, which try, and whether it was stolen."""

    key: Key
    attempt: int  # 1-based, derived from prior claim count
    stolen: bool  # claimed from outside the worker's own shard
    expires_unix_s: float


class SharedJournal:
    """Concurrent, locked access to one sweep journal.

    Unlike :class:`~repro.resilience.journal.ResultJournal` (a single-
    writer that rewrites the file atomically), this accessor only ever
    *appends* — the rewrite pattern would lose records under concurrent
    writers. Both produce/consume the same record schema, so a fabric
    journal loads with ``ResultJournal.load`` and resumes with
    ``resume_from`` like any serial one.
    """

    def __init__(self, path, *, lock_timeout_s: float = 30.0) -> None:
        self.path = Path(path)
        self.lock = FileLock(self.path, timeout_s=lock_timeout_s)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def start(self, meta: dict) -> None:
        """Begin a fresh journal (truncates any existing file)."""
        with self.lock:
            atomic_write_text(
                self.path,
                json.dumps({"type": "meta", "version": JOURNAL_VERSION, **meta})
                + "\n",
            )

    def _append_locked(self, record: dict) -> None:
        """Append one record; caller must hold the lock."""
        line = json.dumps(record).encode("utf-8")
        # Repair a torn tail first: a file not ending in "\n" means a
        # writer died mid-append (single-write appends under the lock
        # can't be observed half-done otherwise). The fragment is an
        # incomplete record, so truncating it back to the last complete
        # line loses nothing — and keeps the strict journal loader, which
        # treats mid-file garbage as corruption, happy.
        if self.path.exists():
            data = self.path.read_bytes()
            if data and not data.endswith(b"\n"):
                keep = data.rfind(b"\n") + 1
                with open(self.path, "r+b") as fh:
                    fh.truncate(keep)
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line + b"\n")
        finally:
            os.close(fd)

    def append(self, record: dict) -> None:
        with self.lock:
            self._append_locked(record)

    def append_result(self, workload: str, scheme: str, result: dict,
                      *, worker: Optional[int] = None) -> None:
        record = {"type": "result", "workload": workload, "scheme": scheme,
                  "result": result}
        if worker is not None:
            record["worker"] = worker
        self.append(record)

    def append_failure(self, workload: str, scheme: str, failure: dict,
                       *, worker: Optional[int] = None) -> None:
        record = {"type": "failure", "workload": workload, "scheme": scheme,
                  "failure": failure}
        if worker is not None:
            record["worker"] = worker
        self.append(record)

    def release(self, key: Key, worker: int, reason: str) -> None:
        """Return *key* to the queue (lease abandoned before settling)."""
        self.append(
            {"type": "release", "workload": key[0], "scheme": key[1],
             "worker": worker, "reason": reason}
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> JournalContents:
        with self.lock:
            return ResultJournal.load(self.path)

    @staticmethod
    def _claimable(contents: JournalContents, key: Key, now: float) -> bool:
        if key in contents.results or key in contents.failures:
            return False
        claims = contents.claims.get(key, ())
        releases = contents.releases.get(key, ())
        if len(claims) > len(releases):
            # Outstanding lease; claimable only once it has expired.
            return claims[-1].get("expires_unix_s", float("inf")) <= now
        return True

    # ------------------------------------------------------------------
    # The queue operation
    # ------------------------------------------------------------------
    def claim_next(
        self,
        worker: int,
        shard: Sequence[Key],
        all_keys: Sequence[Key],
        *,
        lease_s: float,
        clock: Callable[[], float] = time.time,
    ) -> Optional[Claim]:
        """Atomically lease the next runnable job, or ``None``.

        Own-shard jobs are preferred (cache-friendly, steal-free steady
        state); once the shard drains, unclaimed work is stolen from the
        rest of the sweep in sweep order. Returns ``None`` when nothing
        is currently claimable — which means either the sweep is done or
        every remaining job is leased to another live worker.
        """
        with self.lock:
            contents = ResultJournal.load(self.path)
            now = clock()
            chosen: Optional[Key] = None
            stolen = False
            for key in shard:
                if self._claimable(contents, key, now):
                    chosen = key
                    break
            if chosen is None:
                own = set(shard)
                for key in all_keys:
                    if key not in own and self._claimable(contents, key, now):
                        chosen, stolen = key, True
                        break
            if chosen is None:
                return None
            attempt = len(contents.claims.get(chosen, ())) + 1
            expires = now + lease_s
            self._append_locked(
                {"type": "claim", "workload": chosen[0], "scheme": chosen[1],
                 "worker": worker, "attempt": attempt,
                 "expires_unix_s": expires}
            )
            return Claim(
                key=chosen, attempt=attempt, stolen=stolen,
                expires_unix_s=expires,
            )

    # ------------------------------------------------------------------
    def unsettled(self, all_keys: Iterable[Key]) -> List[Key]:
        """Keys still lacking a result/failure record, in sweep order."""
        contents = self.load()
        done = contents.settled()
        return [key for key in all_keys if key not in done]
