"""Client side of the serve protocol (``repro-rrm submit`` / ``status``)."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import ProtocolError
from repro.fabric import protocol
from repro.fabric.spec import SweepSpec


class FabricClient:
    """A thin, connection-per-call client for a running fabric server."""

    def __init__(self, address, *, timeout_s: Optional[float] = None) -> None:
        self.address = address
        self.timeout_s = timeout_s

    def _open(self) -> protocol.LineChannel:
        return protocol.LineChannel(
            protocol.connect(self.address, timeout_s=self.timeout_s)
        )

    @staticmethod
    def _checked(response: Optional[dict]) -> dict:
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if not response.get("ok"):
            raise ProtocolError(
                response.get("error") or "server rejected the request"
            )
        return response

    # ------------------------------------------------------------------
    def ping(self) -> dict:
        with self._open() as channel:
            channel.send({"op": protocol.OP_PING})
            return self._checked(channel.recv())

    def status(self) -> list:
        with self._open() as channel:
            channel.send({"op": protocol.OP_STATUS})
            return self._checked(channel.recv()).get("sweeps", [])

    def metrics(self) -> str:
        """The server's live Prometheus exposition text."""
        with self._open() as channel:
            channel.send({"op": protocol.OP_METRICS})
            return self._checked(channel.recv()).get("text", "")

    def fleet(self) -> dict:
        """The server's aggregated worker-heartbeat view."""
        with self._open() as channel:
            channel.send({"op": protocol.OP_FLEET})
            return self._checked(channel.recv()).get("fleet", {})

    def profile(self, duration_s: float = 2.0) -> dict:
        """Sample the server process for *duration_s* host seconds.

        Returns a :class:`~repro.profiling.Profile` JSON dict. The call
        blocks for the full sampling window, so the client's timeout (if
        any) must exceed it.
        """
        with self._open() as channel:
            channel.send(
                {"op": protocol.OP_PROFILE, "duration_s": duration_s}
            )
            return self._checked(channel.recv()).get("profile", {})

    def shutdown(self) -> None:
        with self._open() as channel:
            channel.send({"op": protocol.OP_SHUTDOWN})
            self._checked(channel.recv())

    # ------------------------------------------------------------------
    def submit(self, spec: SweepSpec) -> str:
        """Queue a sweep and return its id without waiting for it."""
        with self._open() as channel:
            channel.send(
                {"op": protocol.OP_SUBMIT, "spec": spec.to_json_dict()}
            )
            return self._checked(channel.recv())["sweep"]

    def submit_and_watch(self, spec: SweepSpec) -> Iterator[dict]:
        """Queue a sweep and yield its event stream until it finishes.

        The first yielded item is the acknowledgement (``{"ok": true,
        "sweep": ...}``); every later item is an event object. The
        stream ends after ``sweep.finished``.
        """
        channel = self._open()
        try:
            channel.send(
                {"op": protocol.OP_SUBMIT, "spec": spec.to_json_dict(),
                 "watch": True}
            )
            yield from self._follow(channel)
        finally:
            channel.close()

    def watch(self, sweep_id: str) -> Iterator[dict]:
        """Yield a sweep's event history then live events until it ends."""
        channel = self._open()
        try:
            channel.send({"op": protocol.OP_WATCH, "sweep": sweep_id})
            yield from self._follow(channel)
        finally:
            channel.close()

    def _follow(self, channel: protocol.LineChannel) -> Iterator[dict]:
        acknowledgement = self._checked(channel.recv())
        yield acknowledgement
        while True:
            event = channel.recv()
            if event is None:
                return  # server stopped; the journal has the rest
            yield event
            if event.get("event") in protocol.TERMINAL_EVENTS:
                return
