"""Sweep specifications: the unit of work the fabric schedules.

A :class:`SweepSpec` is the JSON-serializable description of one sweep —
stock configuration name, seed, workloads, schemes, worker count — used
both by ``repro-rrm serve`` (clients submit specs over the wire) and by
tests that need a compact way to describe a sweep. It deliberately only
covers the *stock* configurations (``tiny``/``scaled``/``paper`` plus a
duration override): a spec must be reconstructible from its JSON form on
the other side of a socket, which rules out arbitrary config objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.schemes import Scheme, all_schemes, scheme_from_name
from repro.workloads.mixes import all_workload_names

CONFIG_NAMES = ("scaled", "paper", "tiny")


@dataclass(frozen=True)
class SweepSpec:
    """One schedulable sweep, as submitted to the fabric."""

    config_name: str = "tiny"
    seed: int = 1
    duration_s: Optional[float] = None
    workloads: Tuple[str, ...] = ()
    schemes: Tuple[str, ...] = ()  # canonical Scheme values
    max_events: Optional[int] = None
    jobs: int = 1
    #: Fault-injection specs (``KIND:TARGET[:MAX_FIRES]``), validated at
    #: construction so a typo'd drill is rejected at submit time, not
    #: mid-sweep. Empty means no injection.
    faults: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.config_name not in CONFIG_NAMES:
            raise ConfigError(
                f"unknown config {self.config_name!r}; "
                f"expected one of {CONFIG_NAMES}"
            )
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_events is not None and self.max_events < 1:
            raise ConfigError(
                f"max_events must be >= 1, got {self.max_events}"
            )
        from repro.resilience.faultinject import FaultSpec

        for spec in self.faults:
            FaultSpec.parse(spec)

    # ------------------------------------------------------------------
    @classmethod
    def make(
        cls,
        *,
        config_name: str = "tiny",
        seed: int = 1,
        duration_s: Optional[float] = None,
        workloads: Optional[List[str]] = None,
        schemes: Optional[List[str]] = None,
        max_events: Optional[int] = None,
        jobs: int = 1,
        faults: Optional[List[str]] = None,
    ) -> "SweepSpec":
        """Build a spec, defaulting workloads/schemes to the full matrix
        and normalising scheme names to canonical values."""
        return cls(
            config_name=config_name,
            seed=seed,
            duration_s=duration_s,
            workloads=tuple(workloads or all_workload_names()),
            schemes=tuple(
                scheme_from_name(s).value for s in schemes
            )
            if schemes
            else tuple(s.value for s in all_schemes()),
            max_events=max_events,
            jobs=jobs,
            faults=tuple(faults or ()),
        )

    # ------------------------------------------------------------------
    def build_config(self) -> SystemConfig:
        if self.config_name == "paper":
            config = SystemConfig.paper(seed=self.seed)
        elif self.config_name == "tiny":
            config = SystemConfig.tiny(seed=self.seed)
        else:
            config = SystemConfig.scaled(seed=self.seed)
        if self.duration_s is not None:
            config = config.with_duration(self.duration_s)
        return config

    def build_schemes(self) -> List[Scheme]:
        return [Scheme(value) for value in self.schemes]

    def keys(self) -> List[Tuple[str, str]]:
        """The sweep's (workload, scheme value) job keys, sweep order."""
        return [(w, s) for w in self.workloads for s in self.schemes]

    def build_fault_plan(self):
        """The spec's :class:`~repro.resilience.faultinject.FaultPlan`,
        or ``None`` when no faults are requested."""
        if not self.faults:
            return None
        from repro.resilience.faultinject import FaultPlan

        return FaultPlan.parse(self.faults)

    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "config": self.config_name,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "workloads": list(self.workloads),
            "schemes": list(self.schemes),
            "max_events": self.max_events,
            "jobs": self.jobs,
            "faults": list(self.faults),
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "SweepSpec":
        """Parse a wire-format spec, validating names loudly."""
        if not isinstance(d, dict):
            raise ConfigError(f"sweep spec must be an object, got {type(d).__name__}")
        known = {
            "config", "seed", "duration_s", "workloads", "schemes",
            "max_events", "jobs", "faults",
        }
        unknown = sorted(set(d) - known)
        if unknown:
            raise ConfigError(f"unknown sweep spec field(s): {', '.join(unknown)}")
        try:
            return cls.make(
                config_name=d.get("config", "tiny"),
                seed=int(d.get("seed", 1)),
                duration_s=(
                    float(d["duration_s"])
                    if d.get("duration_s") is not None
                    else None
                ),
                workloads=d.get("workloads") or None,
                schemes=d.get("schemes") or None,
                max_events=(
                    int(d["max_events"])
                    if d.get("max_events") is not None
                    else None
                ),
                jobs=int(d.get("jobs", 1)),
                faults=[str(s) for s in d.get("faults") or []],
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"bad sweep spec: {exc}") from None
