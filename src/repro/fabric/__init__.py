"""The sharded sweep fabric: multiprocess execution and batch serving.

Two layers over the same journal:

- :class:`FabricExecutor` fans one sweep out across N worker processes
  that share the checkpoint journal as a work-stealing queue
  (:class:`SharedJournal`), keeping results bit-identical to serial
  execution while crashes, timeouts, fault injection and ``--resume``
  keep composing;
- :class:`FabricServer` / :class:`FabricClient` wrap the executor in a
  thin line-delimited-JSON batch service (``repro-rrm serve`` /
  ``submit`` / ``status``) that streams progress events, ledger entries
  and gate verdicts.
"""

from repro.fabric.client import FabricClient
from repro.fabric.executor import FabricExecutor, FabricOutcome, FabricStats
from repro.fabric.locking import FileLock
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    LineChannel,
    connect,
    listen,
    parse_address,
)
from repro.fabric.server import FabricServer
from repro.fabric.sharedjournal import Claim, SharedJournal
from repro.fabric.spec import SweepSpec

__all__ = [
    "PROTOCOL_VERSION",
    "Claim",
    "FabricClient",
    "FabricExecutor",
    "FabricOutcome",
    "FabricServer",
    "FabricStats",
    "FileLock",
    "LineChannel",
    "SharedJournal",
    "SweepSpec",
    "connect",
    "listen",
    "parse_address",
]
