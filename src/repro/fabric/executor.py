"""The multiprocess work-stealing executor.

:class:`FabricExecutor` shards a sweep's (workload, scheme) jobs across
N worker processes over one shared checkpoint journal
(:class:`~repro.fabric.sharedjournal.SharedJournal`). Each worker owns a
round-robin shard of the matrix and drains it first; when its shard is
empty it *steals* unclaimed jobs from the rest of the sweep, so an
unlucky shard full of slow cells never idles the fleet.

Everything hard rides on the journal:

- **exactly-once** — a job is done when its result/failure record is
  durable; duplicated execution in a lease race merges harmlessly
  because results are deterministic per seed;
- **crash recovery** — the coordinator watches worker processes, turns a
  dead worker's outstanding lease into a retry (or a structured
  ``crash`` failure once retries are exhausted) and respawns the slot;
- **timeouts** — a worker that sits on one claim past ``timeout_s`` is
  killed and its lease settled the same way;
- **resume** — an interrupted fabric sweep resumes through the ordinary
  :meth:`ExperimentRunner.resume` path, because the journal *is* the
  queue.

Results are bit-identical to serial execution for the same seeds: the
fabric only changes *where* each deterministic simulation runs.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.fabric.sharedjournal import Key, SharedJournal
from repro.resilience.faultinject import FaultPlan, corrupt_result, trigger_fault
from repro.resilience.policy import RetryPolicy
from repro.resilience.supervisor import FailedRun
from repro.sim.metrics import SimResult
from repro.sim.runner import _validate_sim_result, run_workload
from repro.sim.schemes import Scheme

#: Coordinator poll period: drain events, check liveness, check the
#: journal for completion.
_POLL_S = 0.05

#: How long an idle worker sleeps before re-polling the queue (another
#: worker holds the remaining leases; they may yet be released).
_WORKER_IDLE_S = 0.05

#: Grace period after SIGTERM before a worker is SIGKILL'd.
_TERM_GRACE_S = 2.0

#: Minimum idle-loop interval between worker heartbeats. Claims and
#: settles always beat immediately; the throttle only bounds the idle
#: chatter on the event queue.
_HEARTBEAT_S = 1.0


@dataclass
class FabricStats:
    """Fleet-level counters, published as ``fabric.*`` telemetry."""

    n_workers: int = 0
    jobs_total: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_stolen: int = 0
    retries: int = 0
    releases: int = 0
    respawns: int = 0
    #: Advisory lifecycle events workers dropped because the event
    #: queue was unusable (dead coordinator); journal records are
    #: unaffected.
    events_dropped: int = 0
    wall_s: float = 0.0
    #: Per-worker wall seconds spent inside simulations.
    worker_busy_s: Dict[int, float] = field(default_factory=dict)

    def reset(self, *, n_workers: int = 0, jobs_total: int = 0) -> None:
        """Zero every counter in place for a new sweep.

        In place rather than rebinding a fresh instance so that holders
        of a live reference (``repro-rrm serve`` scraping mid-sweep, the
        runner's telemetry registration) keep seeing current numbers.
        """
        self.n_workers = n_workers
        self.jobs_total = jobs_total
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_stolen = 0
        self.retries = 0
        self.releases = 0
        self.respawns = 0
        self.events_dropped = 0
        self.wall_s = 0.0
        self.worker_busy_s = {}

    @property
    def queue_depth(self) -> int:
        """Jobs not yet settled."""
        return max(self.jobs_total - self.jobs_completed - self.jobs_failed, 0)

    @property
    def utilization(self) -> float:
        """Mean fraction of fleet wall time spent simulating."""
        if not self.wall_s or not self.n_workers:
            return 0.0
        busy = sum(self.worker_busy_s.values())
        return min(busy / (self.wall_s * self.n_workers), 1.0)

    def register_metrics(self, registry, prefix: str = "fabric") -> None:
        """Publish the fleet counters into a telemetry registry."""
        registry.gauge(f"{prefix}.workers", lambda: self.n_workers)
        registry.gauge(f"{prefix}.jobs_completed", lambda: self.jobs_completed)
        registry.gauge(f"{prefix}.jobs_failed", lambda: self.jobs_failed)
        registry.gauge(f"{prefix}.jobs_stolen", lambda: self.jobs_stolen)
        registry.gauge(f"{prefix}.queue_depth", lambda: self.queue_depth)
        registry.gauge(f"{prefix}.retries", lambda: self.retries)
        registry.gauge(f"{prefix}.respawns", lambda: self.respawns)
        registry.gauge(f"{prefix}.events_dropped", lambda: self.events_dropped)
        registry.gauge(f"{prefix}.utilization", lambda: self.utilization)

    def as_dict(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "jobs_total": self.jobs_total,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_stolen": self.jobs_stolen,
            "retries": self.retries,
            "releases": self.releases,
            "respawns": self.respawns,
            "events_dropped": self.events_dropped,
            "queue_depth": self.queue_depth,
            "utilization": self.utilization,
            "wall_s": self.wall_s,
        }


@dataclass
class FabricOutcome:
    """What one fabric sweep produced (journal-reconciled, exactly-once)."""

    results: Dict[Key, SimResult] = field(default_factory=dict)
    failures: Dict[Key, FailedRun] = field(default_factory=dict)
    stats: FabricStats = field(default_factory=FabricStats)
    journal_path: Optional[Path] = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _fabric_worker_main(
    worker_id: int,
    journal_path,
    config,
    shard: List[Key],
    all_keys: List[Key],
    max_events: Optional[int],
    lease_s: float,
    retry: RetryPolicy,
    seed: int,
    fault_plan: Optional[FaultPlan],
    ledger_part,
    recorder_dir,
    profile_part,
    events,
) -> None:
    """Worker process entry point: claim, simulate, settle, repeat.

    Lives at module level so every multiprocessing start method can
    pickle it. All communication is one-way: durable records go to the
    shared journal, advisory lifecycle events go to the *events* queue.
    """
    from repro.obs.live.heartbeat import HEARTBEAT_EVENT, make_heartbeat
    from repro.obs.live.slog import StructuredLogger

    journal = SharedJournal(journal_path)
    ledger = None
    if ledger_part is not None:
        from repro.obs.ledger import KIND_SWEEP, LedgerEntry, RunLedger

        ledger = RunLedger(ledger_part)

    recorder = None
    if recorder_dir is not None:
        from repro.obs.live.flightrecorder import (
            FlightRecorder,
            recorder_path_for,
        )

        recorder = FlightRecorder(
            recorder_path_for(recorder_dir, worker_id, os.getpid()),
            context={"worker": worker_id, "pid": os.getpid()},
        ).install()
    log = StructuredLogger(
        sys.stderr,
        fields={"worker": worker_id},
        mirror=recorder.mirror if recorder is not None else None,
    )

    events_dropped = 0

    def emit(name: str, args: dict) -> None:
        # A dead coordinator must not crash the worker, but dropped
        # events leave evidence: a counter (reported with worker.done)
        # and one structured log line per outage. Every event also
        # lands in the flight recorder's ring so a post-mortem sees
        # what the worker was doing right before it died.
        nonlocal events_dropped
        if recorder is not None:
            recorder.record(name, dict(args))
        try:
            events.put((worker_id, name, args))
        except Exception as exc:  # noqa: BLE001 - any queue failure
            events_dropped += 1
            if events_dropped == 1:
                log.error(
                    "fabric.event_channel.down",
                    error=f"{type(exc).__name__}: {exc}",
                    detail="dropping lifecycle events; journal records "
                    "remain authoritative",
                )

    profiler = None
    if profile_part is not None:
        from repro.profiling import SamplingProfiler

        # Samples this worker's main thread across every job it runs;
        # the coordinator merges the per-worker parts deterministically.
        profiler = SamplingProfiler().start()

    busy_s = 0.0
    jobs_done = 0
    stolen = 0
    sim_events_total = 0
    beat_stamp = -_HEARTBEAT_S

    def beat(job: Optional[str], attempt: int) -> None:
        nonlocal beat_stamp
        beat_stamp = time.monotonic()
        emit(
            HEARTBEAT_EVENT,
            make_heartbeat(
                worker=worker_id, job=job, attempt=attempt,
                jobs_done=jobs_done, busy_s=busy_s,
                sim_events=sim_events_total,
            ),
        )

    try:
        beat(None, 0)
        while True:
            claim = journal.claim_next(
                worker_id, shard, all_keys, lease_s=lease_s
            )
            if claim is None:
                if not journal.unsettled(all_keys):
                    break
                idle_stamp = time.monotonic()
                if idle_stamp - beat_stamp >= _HEARTBEAT_S:
                    beat(None, 0)
                time.sleep(_WORKER_IDLE_S)
                continue
            workload, scheme_value = claim.key
            if claim.stolen:
                stolen += 1
                emit(
                    "fabric.steal",
                    {"key": list(claim.key), "worker": worker_id},
                )
            emit(
                "job.attempt",
                {"key": list(claim.key), "attempt": claim.attempt,
                 "worker": worker_id},
            )
            beat(f"{workload}/{scheme_value}", claim.attempt)
            fault = (
                fault_plan.fault_for(claim.key, claim.attempt)
                if fault_plan
                else None
            )
            started = time.monotonic()
            try:
                if fault is not None:
                    # A crash fault is os._exit: no excepthook, no
                    # atexit, no SIGTERM handler. Dump the recorder
                    # *before* pulling the trigger so the crash is
                    # explainable from its artifact.
                    if recorder is not None:
                        recorder.record(
                            "fault.trigger",
                            {"kind": fault, "key": list(claim.key),
                             "attempt": claim.attempt},
                        )
                        if fault == "crash":
                            recorder.try_dump("injected-crash")
                    trigger_fault(fault)  # crash/hang never return
                result = run_workload(
                    config, workload, Scheme(scheme_value),
                    max_events=max_events,
                )
                if fault == "corrupt":
                    result = corrupt_result(result)
                problem = _validate_sim_result(claim.key, result)
                if problem is not None:
                    from repro.errors import CorruptResultError

                    raise CorruptResultError(problem)
            except Exception as exc:  # noqa: BLE001 - degrade, don't unwind
                busy_s += time.monotonic() - started
                error_type = type(exc).__name__
                if retry.should_retry(claim.attempt, error_type):
                    delay = retry.delay_s(claim.key, claim.attempt, seed)
                    journal.release(
                        claim.key, worker_id, f"retry:{error_type}"
                    )
                    emit(
                        "job.retry",
                        {"key": list(claim.key), "attempt": claim.attempt,
                         "delay_s": delay, "error": error_type,
                         "worker": worker_id},
                    )
                    beat(None, 0)
                    time.sleep(delay)
                    continue
                from repro.errors import CorruptResultError

                failed = FailedRun(
                    key=claim.key,
                    kind=(
                        "corrupt"
                        if isinstance(exc, CorruptResultError)
                        else "error"
                    ),
                    message=f"{error_type}: {exc}",
                    attempts=claim.attempt,
                    elapsed_s=time.monotonic() - started,
                    recorder_path=(
                        str(recorder.path) if recorder is not None else None
                    ),
                )
                if recorder is not None:
                    recorder.record("job.failed", failed.as_dict())
                    recorder.try_dump("job-failed")
                journal.append_failure(
                    workload, scheme_value, failed.as_dict(), worker=worker_id
                )
                emit("job.failed", failed.as_dict())
                beat(None, 0)
                continue
            busy_s += time.monotonic() - started
            jobs_done += 1
            sim_events_total += result.sim_events
            result_dict = result.to_json_dict()
            journal.append_result(
                workload, scheme_value, result_dict, worker=worker_id
            )
            if ledger is not None:
                ledger.append(
                    LedgerEntry.from_result(result, config, kind=KIND_SWEEP)
                )
            emit(
                "job.result",
                {"key": list(claim.key), "attempts": claim.attempt,
                 "worker": worker_id, "result": result_dict},
            )
            beat(None, 0)
    finally:
        if profiler is not None:
            profiler.stop()
            prof = profiler.build_profile()
            prof.meta["worker"] = worker_id
            prof.save(profile_part)
        beat(None, 0)
        emit(
            "fabric.worker.done",
            {"worker": worker_id, "busy_s": busy_s, "jobs": jobs_done,
             "stolen": stolen, "events_dropped": events_dropped},
        )


@dataclass
class _WorkerSlot:
    """One fleet slot: a shard, its current process, and its active claim."""

    worker_id: int
    shard: List[Key]
    process: Optional[multiprocessing.process.BaseProcess] = None
    #: (key, attempt, monotonic start) of the job the worker last
    #: attempted and has not yet settled; drives the timeout watchdog.
    active: Optional[Tuple[Key, int, float]] = None
    done: bool = False


class FabricExecutor:
    """Runs one sweep across a fleet of worker processes.

    Args:
        n_jobs: worker process count.
        journal_path: the shared queue/checkpoint journal. ``None``
            uses a throwaway journal in a temp directory (parallelism
            without persistence).
        lease_s: claim lease duration; a crashed worker's job becomes
            stealable after this long even if the coordinator also died.
        timeout_s: per-attempt wall-clock limit, enforced by killing the
            worker (its whole process: one claim at a time per worker).
        retry: retry policy for failed/crashed/timed-out attempts.
        fault_plan: optional fault injection (bound to the job keys).
        seed: seeds the retry jitter schedule.
        ledger_path: when set, each worker appends its cells to a
            ``<ledger>.w<N>.part.jsonl`` shard and the coordinator
            merges the shards deterministically on completion
            (:func:`repro.obs.ledger.merge_ledgers`).
        profile_path: when set, each worker samples its own stacks
            (:class:`~repro.profiling.SamplingProfiler`) into a
            ``<profile>.w<N>.part.json`` artifact and the coordinator
            merges the parts (:func:`repro.profiling.merge_profiles`)
            into one profile at this path. Sampling is observational:
            results stay bit-identical.
        on_event: observability hook ``(name, args)`` receiving the
            supervisor-compatible job lifecycle stream (``job.attempt``
            / ``job.result`` / ``job.retry`` / ``job.failed``) plus
            fabric events (``fabric.steal``, ``fabric.respawn``,
            ``fabric.release``, ``fabric.worker.done``). ``job.result``
            args exclude the result payload; payloads are delivered
            through ``on_result``.
        on_result: ``(key, SimResult)`` fired in completion order.
        on_failure: ``(FailedRun)`` fired when a job exhausts retries.
        clock: monotonic clock used for coordinator timeout/grace
            decisions and heartbeat staleness; injectable so expiry
            paths are testable without sleeping (RL011).
        recorder_dir: when set, each worker keeps a crash flight
            recorder whose dump lands here
            (:func:`repro.obs.live.flightrecorder.recorder_path_for`);
            crash/timeout failure records link the dump via
            ``recorder_path``.
    """

    def __init__(
        self,
        n_jobs: int,
        *,
        journal_path=None,
        lease_s: float = 300.0,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        seed: int = 0,
        ledger_path=None,
        profile_path=None,
        on_event: Optional[Callable[[str, dict], None]] = None,
        on_result: Optional[Callable[[Key, SimResult], None]] = None,
        on_failure: Optional[Callable[[FailedRun], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        recorder_dir=None,
    ) -> None:
        if n_jobs < 1:
            raise ConfigError(f"n_jobs must be >= 1, got {n_jobs}")
        if lease_s <= 0:
            raise ConfigError(f"lease_s must be positive, got {lease_s}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {timeout_s}")
        from repro.obs.live.heartbeat import HEARTBEAT_EVENT, FleetStatus

        self._heartbeat_event = HEARTBEAT_EVENT
        self.n_jobs = n_jobs
        self.journal_path = journal_path
        self.lease_s = lease_s
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self.fault_plan = fault_plan
        self.seed = seed
        self.ledger_path = ledger_path
        self.profile_path = profile_path
        self.on_event = on_event
        self.on_result = on_result
        self.on_failure = on_failure
        self._clock = clock
        self.recorder_dir = recorder_dir
        self.stats = FabricStats(n_workers=n_jobs)
        #: Aggregated worker heartbeats; live while a sweep runs.
        self.fleet = FleetStatus(clock=clock)

    def _emit(self, name: str, args: dict) -> None:
        if self.on_event is not None:
            self.on_event(name, args)

    # ------------------------------------------------------------------
    def run(
        self,
        config,
        workloads: Sequence[str],
        schemes: Sequence[Scheme],
        *,
        max_events: Optional[int] = None,
        meta: Optional[dict] = None,
        fresh: bool = True,
    ) -> FabricOutcome:
        """Execute the sweep matrix and return the merged outcome.

        With ``fresh=True`` the journal is (re)started with *meta*; with
        ``fresh=False`` the existing journal is taken as-is — results
        already in it are treated as done (the resume path).
        """
        keys: List[Key] = [
            (w, s.value) for w in workloads for s in schemes
        ]
        if len(set(keys)) != len(keys):
            raise ConfigError("sweep job keys must be unique")
        if self.fault_plan:
            self.fault_plan.bind(keys)

        tmp_dir = None
        journal_path = self.journal_path
        if journal_path is None:
            tmp_dir = tempfile.TemporaryDirectory(prefix="repro-fabric-")
            journal_path = Path(tmp_dir.name) / "journal.jsonl"
            fresh = True
        journal = SharedJournal(journal_path)
        if fresh or not Path(journal_path).exists():
            journal.start(meta or {})

        self.stats.reset(n_workers=self.n_jobs, jobs_total=len(keys))
        self.fleet.clear()
        if self.recorder_dir is not None:
            Path(self.recorder_dir).mkdir(parents=True, exist_ok=True)
        started = time.monotonic()
        try:
            delivered = self._supervise(journal, config, keys, max_events)
            outcome = self._reconcile(journal, keys, delivered)
        finally:
            self.stats.wall_s = time.monotonic() - started
            if tmp_dir is not None:
                outcome_journal = None
                tmp_dir.cleanup()
            else:
                outcome_journal = Path(journal_path)
        outcome.stats = self.stats
        outcome.journal_path = outcome_journal
        if self.ledger_path is not None:
            from repro.obs.ledger import merge_ledgers

            parts = [
                self._ledger_part(slot_id) for slot_id in range(self.n_jobs)
            ]
            merge_ledgers(parts, self.ledger_path)
            for part in parts:
                Path(part).unlink(missing_ok=True)
        if self.profile_path is not None:
            self._merge_profile_parts()
        return outcome

    def _ledger_part(self, worker_id: int):
        base = Path(self.ledger_path)
        return base.with_name(f"{base.name}.w{worker_id}.part.jsonl")

    def _profile_part(self, worker_id: int):
        base = Path(self.profile_path)
        return base.with_name(f"{base.name}.w{worker_id}.part.json")

    def _merge_profile_parts(self) -> None:
        """Merge worker profile parts into one artifact, oldest slot first.

        A worker that crashed (or was killed) never wrote its part;
        merging what exists keeps the surviving coverage rather than
        failing the whole sweep over a missing observability shard.
        """
        from repro.profiling import load_profile, merge_profiles

        parts = [self._profile_part(i) for i in range(self.n_jobs)]
        profiles = [load_profile(p) for p in parts if Path(p).exists()]
        merged = merge_profiles(profiles)
        merged.meta["n_jobs"] = self.n_jobs
        merged.save(self.profile_path)
        for part in parts:
            Path(part).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def _spawn(self, ctx, slot: _WorkerSlot, journal_path, config, keys,
               max_events, events) -> None:
        ledger_part = (
            self._ledger_part(slot.worker_id)
            if self.ledger_path is not None
            else None
        )
        profile_part = (
            self._profile_part(slot.worker_id)
            if self.profile_path is not None
            else None
        )
        slot.process = ctx.Process(
            target=_fabric_worker_main,
            args=(
                slot.worker_id,
                journal_path,
                config,
                slot.shard,
                keys,
                max_events,
                self.lease_s,
                self.retry,
                self.seed,
                self.fault_plan,
                ledger_part,
                self.recorder_dir,
                profile_part,
                events,
            ),
            daemon=True,
        )
        slot.active = None
        slot.done = False
        slot.process.start()

    def _supervise(self, journal, config, keys, max_events) -> Dict[Key, SimResult]:
        """The coordinator loop: spawn, watch, heal, finish."""
        ctx = multiprocessing.get_context()
        events = ctx.Queue()
        slots = [
            _WorkerSlot(worker_id=i, shard=keys[i :: self.n_jobs])
            for i in range(self.n_jobs)
        ]
        delivered: Dict[Key, SimResult] = {}
        for slot in slots:
            self._spawn(ctx, slot, journal.path, config, keys, max_events,
                        events)
        try:
            while True:
                drained = self._drain_events(events, slots, delivered)
                healed = self._heal(ctx, journal, config, slots, keys,
                                    max_events, events)
                if not journal.unsettled(keys):
                    break
                if not drained and not healed:
                    time.sleep(_POLL_S)
            # Give workers a moment to notice completion and exit, then
            # drain their final lifecycle events.
            deadline = self._clock() + _TERM_GRACE_S
            while self._clock() < deadline and any(
                slot.process is not None and slot.process.is_alive()
                for slot in slots
            ):
                self._drain_events(events, slots, delivered)
                time.sleep(_POLL_S)
            self._drain_events(events, slots, delivered)
        finally:
            for slot in slots:
                _kill(slot.process)
        return delivered

    def _drain_events(self, events, slots, delivered) -> bool:
        """Pump the worker event queue; returns True if anything arrived."""
        drained = False
        while True:
            try:
                worker_id, name, args = events.get_nowait()
            except queue_module.Empty:
                return drained
            drained = True
            slot = self._slot(slots, worker_id)
            if name == "job.attempt":
                if slot is not None:
                    slot.active = (
                        tuple(args["key"]), args["attempt"], self._clock()
                    )
                self._emit(name, args)
            elif name == "job.result":
                key = tuple(args["key"])
                if slot is not None:
                    slot.active = None
                self.stats.jobs_completed += 1
                result = SimResult.from_json_dict(args["result"])
                delivered[key] = result
                self._emit(
                    name,
                    {k: v for k, v in args.items() if k != "result"},
                )
                if self.on_result is not None:
                    self.on_result(key, result)
            elif name == "job.failed":
                key = tuple(args["key"])
                if slot is not None:
                    slot.active = None
                self.stats.jobs_failed += 1
                self._emit(name, args)
                if self.on_failure is not None:
                    self.on_failure(FailedRun.from_dict(args))
            elif name == "job.retry":
                if slot is not None:
                    slot.active = None
                self.stats.retries += 1
                self._emit(name, args)
            elif name == "fabric.steal":
                self.stats.jobs_stolen += 1
                self._emit(name, args)
            elif name == "fabric.worker.done":
                if slot is not None:
                    slot.done = True
                self.stats.worker_busy_s[worker_id] = (
                    self.stats.worker_busy_s.get(worker_id, 0.0)
                    + args.get("busy_s", 0.0)
                )
                self.stats.events_dropped += args.get("events_dropped", 0)
                self.fleet.mark_done(worker_id)
                self._emit(name, args)
            elif name == self._heartbeat_event:
                self.fleet.observe(args)
                self._emit(name, args)
            else:
                self._emit(name, args)

    @staticmethod
    def _slot(slots, worker_id) -> Optional[_WorkerSlot]:
        return slots[worker_id] if 0 <= worker_id < len(slots) else None

    # ------------------------------------------------------------------
    def _heal(self, ctx, journal, config, slots, keys, max_events,
              events) -> bool:
        """Detect dead/overdue workers, settle their leases, respawn."""
        healed = False
        now = self._clock()
        for slot in slots:
            process = slot.process
            if process is None:
                continue
            overdue = (
                self.timeout_s is not None
                and slot.active is not None
                and now - slot.active[2] >= self.timeout_s
            )
            if process.is_alive() and not overdue:
                continue
            if process.is_alive():  # overdue: kill the hung worker
                _kill(process)
                kind, error_type = "timeout", "JobTimeoutError"
                message = (
                    f"exceeded {self.timeout_s:.3g}s wall-clock timeout"
                )
            else:
                process.join()
                if slot.done or not journal.unsettled(keys):
                    # Clean exit at end of queue; nothing to heal.
                    slot.process = None
                    continue
                kind, error_type = "crash", "JobCrashedError"
                message = (
                    "worker died without a result "
                    f"(exit code {process.exitcode})"
                )
            healed = True
            self._settle_orphan(
                journal, slot, kind, error_type, message
            )
            if journal.unsettled(keys):
                self.stats.respawns += 1
                self._emit(
                    "fabric.respawn",
                    {"worker": slot.worker_id, "reason": kind},
                )
                self._spawn(ctx, slot, journal.path, config, keys,
                            max_events, events)
        return healed

    def _settle_orphan(self, journal, slot, kind, error_type, message):
        """Turn a dead worker's outstanding lease into a retry or failure."""
        contents = journal.load()
        orphans: List[Tuple[Key, int]] = []
        if slot.active is not None:
            key, attempt, _ = slot.active
            if key not in contents.settled():
                orphans.append((key, attempt))
        else:
            # No attempt event reached us; recover the lease from the
            # journal (the worker may have died right after claiming).
            for key, claims in contents.claims.items():
                if key in contents.settled():
                    continue
                releases = contents.releases.get(key, ())
                if len(claims) > len(releases) and (
                    claims[-1].get("worker") == slot.worker_id
                ):
                    orphans.append((key, claims[-1].get("attempt", 1)))
        slot.active = None
        for key, attempt in orphans:
            if self.retry.should_retry(attempt, error_type):
                self.stats.releases += 1
                journal.release(key, slot.worker_id, kind)
                self._emit(
                    "fabric.release",
                    {"key": list(key), "worker": slot.worker_id,
                     "reason": kind, "attempt": attempt},
                )
                self._emit(
                    "job.retry",
                    {"key": list(key), "attempt": attempt, "delay_s": 0.0,
                     "error": error_type, "worker": slot.worker_id},
                )
                self.stats.retries += 1
            else:
                failed = FailedRun(
                    key=key, kind=kind,
                    message=f"{message} (after {attempt} attempts)",
                    attempts=attempt,
                    recorder_path=self._slot_recorder_path(slot),
                )
                journal.append_failure(
                    key[0], key[1], failed.as_dict(), worker=slot.worker_id
                )
                self.stats.jobs_failed += 1
                self._emit("job.failed", failed.as_dict())
                if self.on_failure is not None:
                    self.on_failure(failed)

    def _slot_recorder_path(self, slot) -> Optional[str]:
        """A dead worker's flight-recorder dump path, if one was written.

        The worker dumped *before* dying (pre-``os._exit`` for injected
        crashes, in the SIGTERM handler for timeout kills), so by
        settle time the file either exists or never will.
        """
        process = slot.process
        if self.recorder_dir is None or process is None or process.pid is None:
            return None
        from repro.obs.live.flightrecorder import recorder_path_for

        path = recorder_path_for(
            self.recorder_dir, slot.worker_id, process.pid
        )
        return str(path) if path.exists() else None

    # ------------------------------------------------------------------
    def _reconcile(self, journal, keys, delivered) -> FabricOutcome:
        """The journal is the truth; events were just the live stream."""
        contents = journal.load()
        outcome = FabricOutcome()
        for key in keys:
            if key in contents.results:
                outcome.results[key] = (
                    delivered.get(key)
                    or SimResult.from_json_dict(contents.results[key])
                )
            elif key in contents.failures:
                outcome.failures[key] = FailedRun.from_dict(
                    contents.failures[key]
                )
        return outcome


def _kill(process) -> None:
    if process is None:
        return
    if not process.is_alive():
        process.join()
        return
    process.terminate()
    process.join(_TERM_GRACE_S)
    if process.is_alive():
        process.kill()
        process.join()
