"""Region write-interval analysis (paper Table III).

The paper characterises write locality by binning 4KB regions by their
*average write interval* over a run, then reporting how many regions and
what share of total writes fall in each bin. The analyzer consumes a
stream of ``(time_ns, block)`` demand-write records — e.g. the
``write_trace_sink`` hook of :class:`repro.sim.system.System` — and
produces the same histogram.

Times are reported on the paper's (virtual) timescale: with drift scaling
active, observed intervals are multiplied by ``drift_scale`` so the bin
edges match the paper's nanosecond/second boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.utils.units import NS_PER_S


@dataclass(frozen=True)
class IntervalBin:
    """One histogram row: regions whose average write interval lies in
    ``[low_ns, high_ns)``."""

    label: str
    low_ns: float
    high_ns: float


#: The paper's Table III bins (average write interval).
PAPER_BINS: Tuple[IntervalBin, ...] = (
    IntervalBin("< 10^6 ns", 0.0, 1e6),
    IntervalBin("10^6 ns to 10^7 ns", 1e6, 1e7),
    IntervalBin("10^7 ns to 10^8 ns", 1e7, 1e8),
    IntervalBin("10^8 ns to 1 s", 1e8, NS_PER_S),
    IntervalBin("1 s to 2 s", NS_PER_S, 2 * NS_PER_S),
)


@dataclass
class RegionRow:
    """Aggregated statistics for one interval bin."""

    label: str
    regions: int = 0
    writes: int = 0
    region_pct: float = 0.0
    write_pct: float = 0.0


class RegionIntervalAnalyzer:
    """Streams write records and bins regions by average write interval."""

    def __init__(
        self,
        region_bytes: int = 4096,
        drift_scale: float = 1.0,
        total_regions: Optional[int] = None,
    ) -> None:
        """
        Args:
            region_bytes: Region granularity (4KB in the paper).
            drift_scale: Converts observed (scaled) times to virtual times.
            total_regions: Total regions in the memory, enabling the
                "never written" row; inferred as max seen if omitted.
        """
        if region_bytes <= 0 or region_bytes % 64:
            raise ConfigError("region_bytes must be a positive multiple of 64")
        if drift_scale <= 0:
            raise ConfigError("drift_scale must be positive")
        self.region_bytes = region_bytes
        self.drift_scale = drift_scale
        self.total_regions = total_regions
        self._blocks_per_region = region_bytes // 64
        #: region -> (first_time, last_time, count)
        self._stats: Dict[int, Tuple[float, float, int]] = {}

    # ------------------------------------------------------------------
    def record(self, time_ns: float, block: int) -> None:
        """Register one demand write to *block* at *time_ns* (scaled)."""
        region = block // self._blocks_per_region
        entry = self._stats.get(region)
        if entry is None:
            self._stats[region] = (time_ns, time_ns, 1)
        else:
            first, _, count = entry
            self._stats[region] = (first, time_ns, count + 1)

    @property
    def regions_written(self) -> int:
        return len(self._stats)

    @property
    def total_writes(self) -> int:
        return sum(count for _, _, count in self._stats.values())

    # ------------------------------------------------------------------
    def average_interval_ns(self, region: int) -> Optional[float]:
        """Average write interval of *region* on the virtual timescale;
        None if unseen, inf if written exactly once."""
        entry = self._stats.get(region)
        if entry is None:
            return None
        first, last, count = entry
        if count < 2:
            return float("inf")
        return (last - first) / (count - 1) * self.drift_scale

    def histogram(self, bins: Tuple[IntervalBin, ...] = PAPER_BINS) -> List[RegionRow]:
        """Bin every written region; appends "written once" and (when
        ``total_regions`` is known) "never written" rows, like Table III."""
        rows = [RegionRow(label=b.label) for b in bins]
        once = RegionRow(label="written once")
        overflow = RegionRow(label=f">= {bins[-1].high_ns / NS_PER_S:g} s")
        total_writes = 0

        for first, last, count in self._stats.values():
            total_writes += count
            if count < 2:
                once.regions += 1
                once.writes += count
                continue
            interval = (last - first) / (count - 1) * self.drift_scale
            for row, spec in zip(rows, bins):
                if spec.low_ns <= interval < spec.high_ns:
                    row.regions += 1
                    row.writes += count
                    break
            else:
                overflow.regions += 1
                overflow.writes += count

        result = rows + [overflow, once]
        if self.total_regions is not None:
            never = RegionRow(label="never written")
            never.regions = max(0, self.total_regions - len(self._stats))
            result.append(never)

        denom_regions = self.total_regions or len(self._stats)
        for row in result:
            row.region_pct = 100.0 * row.regions / denom_regions if denom_regions else 0.0
            row.write_pct = 100.0 * row.writes / total_writes if total_writes else 0.0
        return result

    def hot_write_share(self, interval_cutoff_ns: float = 1e8) -> float:
        """Fraction of writes to regions with average interval below the
        cutoff — the paper's "~2% of regions take ~97% of writes" claim
        uses this with a 10^8 ns cutoff."""
        hot = 0
        total = 0
        for first, last, count in self._stats.values():
            total += count
            if count >= 2:
                interval = (last - first) / (count - 1) * self.drift_scale
                if interval < interval_cutoff_ns:
                    hot += count
        return hot / total if total else 0.0
