"""Aggregation helpers for experiment result series."""

from __future__ import annotations

from typing import List, Sequence

from repro.utils.mathx import geomean


def normalize_to(values: Sequence[float], baseline: Sequence[float]) -> List[float]:
    """Element-wise ``values[i] / baseline[i]`` (the paper normalises IPC
    to a baseline scheme per workload before averaging)."""
    if len(values) != len(baseline):
        raise ValueError("series lengths differ")
    for b in baseline:
        if b == 0:
            raise ValueError("baseline contains zero")
    return [v / b for v, b in zip(values, baseline)]


def series_with_geomean(
    labels: Sequence[str], values: Sequence[float]
) -> "Dict[str, float]":
    """A labelled series with a trailing ``geomean`` entry, as the paper's
    figures present per-workload bars plus a geometric-mean bar."""
    if len(labels) != len(values):
        raise ValueError("labels and values lengths differ")
    out = dict(zip(labels, values))
    out["geomean"] = geomean(values)
    return out
