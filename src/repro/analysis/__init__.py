"""Result analysis: aggregation helpers, region write-interval histograms
(paper Table III) and paper-style textual reports."""

from repro.analysis.aggregate import normalize_to, series_with_geomean
from repro.analysis.distributions import (
    DistributionSummary,
    gini_coefficient,
    lorenz_curve,
    summarize,
    wear_histogram,
)
from repro.analysis.regions import RegionIntervalAnalyzer, IntervalBin
from repro.analysis.report import (
    format_table,
    performance_report,
    lifetime_report,
    wear_report,
    energy_report,
)

__all__ = [
    "normalize_to",
    "series_with_geomean",
    "DistributionSummary",
    "gini_coefficient",
    "lorenz_curve",
    "summarize",
    "wear_histogram",
    "RegionIntervalAnalyzer",
    "IntervalBin",
    "format_table",
    "performance_report",
    "lifetime_report",
    "wear_report",
    "energy_report",
]
