"""Distribution statistics for wear and latency data.

Used by the wear-levelling analyses and by anyone asking "how uneven is
the wear really?" — the lifetime model only needs the max/mean ratio, but
the full distribution (quantiles, Gini coefficient, Lorenz curve) is what
a memory-systems engineer inspects when judging a levelling scheme.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a non-negative sample."""

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    gini: float

    @property
    def max_over_mean(self) -> float:
        """Peak-to-average ratio; its inverse is levelling efficiency."""
        return self.maximum / self.mean if self.mean else 0.0

    @property
    def leveling_efficiency(self) -> float:
        """mean / max — 1.0 means perfectly uniform."""
        return self.mean / self.maximum if self.maximum else 1.0


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an ascending sequence."""
    if not sorted_values:
        raise ConfigError("quantile of empty sample")
    if not 0.0 <= q <= 1.0:
        raise ConfigError(f"quantile {q} out of [0,1]")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    frac = position - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def gini_coefficient(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, ->1 =
    concentrated on one element)."""
    data = sorted(values)
    if not data:
        raise ConfigError("gini of empty sample")
    if any(v < 0 for v in data):
        raise ConfigError("gini requires non-negative values")
    total = sum(data)
    if total == 0:
        return 0.0
    n = len(data)
    # Standard formulation over sorted data.
    weighted = sum((index + 1) * value for index, value in enumerate(data))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def summarize(values: Iterable[float]) -> DistributionSummary:
    """Full summary of a non-negative sample."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ConfigError("summary of empty sample")
    total = sum(data)
    return DistributionSummary(
        count=len(data),
        total=total,
        mean=total / len(data),
        minimum=data[0],
        maximum=data[-1],
        p50=quantile(data, 0.50),
        p90=quantile(data, 0.90),
        p99=quantile(data, 0.99),
        gini=gini_coefficient(data),
    )


def lorenz_curve(values: Iterable[float], points: int = 11) -> List[Tuple[float, float]]:
    """Lorenz curve samples: (population share, cumulative value share).

    The classic inequality visual: for perfectly levelled wear the curve
    is the diagonal; the further it sags, the more a few blocks carry.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ConfigError("lorenz of empty sample")
    if points < 2:
        raise ConfigError("need at least two curve points")
    total = sum(data)
    cumulative: List[float] = []
    running = 0.0
    for value in data:
        running += value
        cumulative.append(running)
    curve = [(0.0, 0.0)]
    n = len(data)
    for i in range(1, points):
        share = i / (points - 1)
        index = max(1, round(share * n))
        value_share = cumulative[index - 1] / total if total else share
        curve.append((index / n, value_share))
    return curve


def wear_histogram(
    per_block_wear: Dict[int, int], bin_edges: Sequence[int]
) -> Dict[str, int]:
    """Bin per-block wear counts for reporting.

    Args:
        per_block_wear: block -> write count (only touched blocks).
        bin_edges: ascending inclusive-lower bin edges, e.g. (1, 10, 100).
    """
    edges = list(bin_edges)
    if edges != sorted(edges) or len(set(edges)) != len(edges):
        raise ConfigError("bin edges must be strictly ascending")
    labels = [
        f"[{low}, {high})" for low, high in zip(edges, edges[1:])
    ] + [f">= {edges[-1]}"]
    counts = {label: 0 for label in labels}
    for wear in per_block_wear.values():
        index = bisect.bisect_right(edges, wear) - 1
        if index < 0:
            continue  # below the first edge: untracked tail
        counts[labels[min(index, len(labels) - 1)]] += 1
    return counts
