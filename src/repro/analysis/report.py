"""Paper-style textual reports.

Each helper renders one of the paper's figures/tables as an aligned text
table from an :class:`~repro.sim.runner.ExperimentRunner`'s results, so a
bench run prints the same rows/series the paper plots.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme
from repro.utils.mathx import geomean


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table (first column left, rest right)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def render(row: List[str]) -> str:
        first = row[0].ljust(widths[0])
        rest = [cell.rjust(width) for cell, width in zip(row[1:], widths[1:])]
        return "  ".join([first] + rest)

    lines = []
    if title:
        lines.append(title)
    lines.append(render(cells[0]))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.extend(render(row) for row in cells[1:])
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        # Absent metrics (e.g. journals predating a field) read as a
        # placeholder, not the word "None".
        return "-"
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def _missing_cell(runner: ExperimentRunner, workload: str, scheme: Scheme) -> str:
    """Annotation for a cell the sweep could not produce.

    Failed runs show their failure kind (``FAIL:timeout``); cells that
    were simply never run show ``n/a``.
    """
    failed = runner.failures.get((workload, scheme))
    if failed is not None:
        return f"FAIL:{failed.kind}"
    return "n/a"


def failure_report(
    runner: ExperimentRunner, title: str = "Failed runs"
) -> str:
    """Structured summary of every job the sweep could not complete."""
    headers = ["workload", "scheme", "kind", "attempts", "message"]
    rows = [
        [workload, scheme.value, failed.kind, failed.attempts, failed.message]
        for (workload, scheme), failed in sorted(
            runner.failures.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        )
    ]
    if not rows:
        rows = [["(none)", "-", "-", "-", "-"]]
    return format_table(headers, rows, title=title)


def performance_report(
    runner: ExperimentRunner,
    schemes: Optional[List[Scheme]] = None,
    baseline: Scheme = Scheme.STATIC_7,
    title: str = "IPC normalised to Static-7-SETs",
) -> str:
    """Figures 2 / 7: per-workload normalised IPC plus geomean.

    Missing or failed cells are annotated instead of raising; the geomean
    row covers only workloads that completed under both the scheme and
    the baseline.
    """
    schemes = schemes or runner.schemes
    headers = ["workload"] + [s.value for s in schemes]
    rows = []
    for workload in runner.workloads:
        row: List[object] = [workload]
        for scheme in schemes:
            if runner.has_result(workload, scheme) and runner.has_result(
                workload, baseline
            ):
                base = runner.result(workload, baseline).ipc
                row.append(runner.result(workload, scheme).ipc / base)
            else:
                row.append(_missing_cell(runner, workload, scheme))
        rows.append(row)
    rows.append(
        ["geomean"] + [runner.geomean_speedup(s, baseline) for s in schemes]
    )
    return format_table(headers, rows, title=title)


def lifetime_report(
    runner: ExperimentRunner,
    schemes: Optional[List[Scheme]] = None,
    title: str = "Memory lifetime (years)",
) -> str:
    """Figures 3 / 8: per-workload lifetime in years plus geomean.

    Missing or failed cells are annotated instead of raising.
    """
    schemes = schemes or runner.schemes
    headers = ["workload"] + [s.value for s in schemes]
    rows = []
    for workload in runner.workloads:
        rows.append(
            [workload]
            + [
                runner.result(workload, s).lifetime_years
                if runner.has_result(workload, s)
                else _missing_cell(runner, workload, s)
                for s in schemes
            ]
        )
    rows.append(["geomean"] + [runner.geomean_lifetime(s) for s in schemes])
    return format_table(headers, rows, title=title)


def wear_report(
    runner: ExperimentRunner,
    schemes: Optional[List[Scheme]] = None,
    window_s: float = 5.0,
    normalize_to: Optional[Scheme] = Scheme.STATIC_7,
    title: str = "Wear per 5s window (block writes), split by source",
) -> str:
    """Figures 4 / 9: wear split into demand writes and refreshes.

    Wear is averaged (geomean of totals) across workloads per scheme and
    optionally normalised to a baseline scheme's total.
    """
    schemes = schemes or runner.schemes
    headers = ["scheme", "write", "rrm_refresh", "global_refresh", "total"]
    per_scheme = {}
    for scheme in schemes:
        writes, rrm, glob = [], [], []
        completed = runner.completed_workloads(scheme)
        for workload in completed:
            wear = runner.result(workload, scheme).wear
            writes.append(wear.demand_rate * window_s)
            rrm.append(wear.rrm_refresh_rate * window_s)
            glob.append(wear.global_refresh_rate * window_s)
        n = len(completed)
        if n == 0:
            continue
        per_scheme[scheme] = (
            sum(writes) / n,
            sum(rrm) / n,
            sum(glob) / n,
        )
    baseline_total = None
    if normalize_to is not None and normalize_to in per_scheme:
        baseline_total = sum(per_scheme[normalize_to])
    rows = []
    for scheme in schemes:
        if scheme not in per_scheme:
            rows.append([scheme.value] + ["n/a"] * 4)
            continue
        w, r, g = per_scheme[scheme]
        total = w + r + g
        if baseline_total:
            rows.append(
                [scheme.value, w / baseline_total, r / baseline_total,
                 g / baseline_total, total / baseline_total]
            )
        else:
            rows.append([scheme.value, w, r, g, total])
    return format_table(headers, rows, title=title)


def energy_report(
    runner: ExperimentRunner,
    schemes: Optional[List[Scheme]] = None,
    window_s: float = 5.0,
    normalize_to: Optional[Scheme] = Scheme.STATIC_7,
    title: str = "Memory energy per 5s window (normalised units)",
) -> str:
    """Figure 10: energy split into write / read / refresh components."""
    schemes = schemes or runner.schemes
    headers = ["scheme", "write", "read", "rrm_refresh", "global_refresh", "total"]
    per_scheme = {}
    for scheme in schemes:
        sums = [0.0, 0.0, 0.0, 0.0]
        completed = runner.completed_workloads(scheme)
        for workload in completed:
            energy = runner.result(workload, scheme).energy
            sums[0] += energy.write_rate * window_s
            sums[1] += energy.read_rate * window_s
            sums[2] += energy.rrm_refresh_rate * window_s
            sums[3] += energy.global_refresh_rate * window_s
        n = len(completed)
        if n == 0:
            continue
        per_scheme[scheme] = [x / n for x in sums]
    baseline_total = None
    if normalize_to is not None and normalize_to in per_scheme:
        baseline_total = sum(per_scheme[normalize_to])
    rows = []
    for scheme in schemes:
        if scheme not in per_scheme:
            rows.append([scheme.value] + ["n/a"] * 5)
            continue
        parts = per_scheme[scheme]
        total = sum(parts)
        if baseline_total:
            rows.append([scheme.value] + [p / baseline_total for p in parts]
                        + [total / baseline_total])
        else:
            rows.append([scheme.value] + parts + [total])
    return format_table(headers, rows, title=title)
