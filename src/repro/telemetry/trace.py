"""Event tracing keyed on simulation time, with Chrome-trace export.

The tracer records three event shapes, mirroring the Trace Event Format
understood by ``chrome://tracing`` and Perfetto:

- **instant** (``ph="i"``) — something happened at one sim instant
  (a promotion, a retention violation, a retry);
- **complete** (``ph="X"``) — a span with a start time and duration on
  the simulation clock (one memory request's service on its bank);
- **counter** (``ph="C"``) — a named set of numeric series sampled at
  one instant (the profiler's periodic metric snapshots).

Timestamps come from an injected ``clock`` returning nanoseconds — the
simulator's ``now`` for in-run tracing, or a wall-clock for sweep
orchestration — never from the wall clock implicitly, so traced runs
stay deterministic.

Memory is bounded by the recording mode: ``full`` keeps everything,
``ring`` keeps the newest *ring_size* events, and ``sample`` keeps every
*sample_every*-th event. Disabled tracing uses the shared
:data:`NULL_TRACER`, whose methods are no-ops and whose ``enabled`` flag
lets hot paths skip argument construction entirely.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError

TRACE_MODES = ("full", "ring", "sample")

#: Phase codes of the Chrome Trace Event Format we emit.
PH_INSTANT = "i"
PH_COMPLETE = "X"
PH_COUNTER = "C"
PH_METADATA = "M"


@dataclass
class TraceEvent:
    """One recorded event (times in nanoseconds on the tracer's clock)."""

    ts_ns: float
    ph: str
    name: str
    cat: str
    dur_ns: Optional[float] = None
    args: Optional[dict] = None
    tid: int = 0

    def to_chrome(self) -> dict:
        """The Trace Event Format dict (timestamps in microseconds)."""
        event: dict = {
            "name": self.name,
            "cat": self.cat or "default",
            "ph": self.ph,
            "ts": self.ts_ns / 1000.0,
            "pid": 1,
            "tid": self.tid,
        }
        if self.ph == PH_COMPLETE:
            event["dur"] = (self.dur_ns or 0.0) / 1000.0
        if self.ph == PH_INSTANT:
            event["s"] = "t"  # thread-scoped instant
        if self.args is not None:
            event["args"] = self.args
        return event

    def to_jsonl(self) -> dict:
        """Lossless JSONL record (timestamps kept in nanoseconds)."""
        record: dict = {
            "ts_ns": self.ts_ns,
            "ph": self.ph,
            "name": self.name,
            "cat": self.cat,
            "tid": self.tid,
        }
        if self.dur_ns is not None:
            record["dur_ns"] = self.dur_ns
        if self.args is not None:
            record["args"] = self.args
        return record


class NullTracer:
    """The disabled recorder: every operation is a no-op.

    Hot paths check :attr:`enabled` before building event arguments, so
    an untraced run pays one attribute load and a branch per potential
    event — near-zero overhead, and no recorded state at all.
    """

    enabled = False

    def instant(self, name, cat="run", args=None, tid=0) -> None:
        pass

    def complete(self, name, cat, start_ns, dur_ns, args=None, tid=0) -> None:
        pass

    def counter(self, name, values, cat="", tid=0) -> None:
        pass

    @contextmanager
    def span(self, name, cat="run", args=None, tid=0):
        yield

    def set_thread_name(self, tid, name) -> None:
        pass

    def events(self) -> List[TraceEvent]:
        return []


#: Shared disabled recorder; components default to this.
NULL_TRACER = NullTracer()


class Tracer:
    """The enabled recorder: collects :class:`TraceEvent`s in order.

    Args:
        clock: Zero-argument callable returning the current time in
            nanoseconds (``lambda: sim.now`` for simulation traces).
        mode: ``full`` | ``ring`` | ``sample`` (see module docs).
        ring_size: Event capacity in ``ring`` mode.
        sample_every: Keep every Nth event in ``sample`` mode.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        mode: str = "full",
        ring_size: int = 100_000,
        sample_every: int = 1,
    ) -> None:
        if mode not in TRACE_MODES:
            raise ConfigError(
                f"trace mode must be one of {TRACE_MODES}, got {mode!r}"
            )
        if ring_size <= 0:
            raise ConfigError(f"ring_size must be positive, got {ring_size}")
        if sample_every <= 0:
            raise ConfigError(
                f"sample_every must be positive, got {sample_every}"
            )
        self._clock = clock or (lambda: 0.0)
        self.mode = mode
        self.sample_every = sample_every
        self._events: "deque[TraceEvent]" = deque(
            maxlen=ring_size if mode == "ring" else None
        )
        self._seen = 0
        #: Events discarded by the ring/sampling bound.
        self.dropped = 0
        self._thread_names: Dict[int, str] = {}

    @classmethod
    def wallclock(cls, **kwargs) -> "Tracer":
        """A tracer on the wall clock (ns since creation) — for sweep
        orchestration timelines, where there is no simulation clock."""
        t0 = time.perf_counter()
        return cls(clock=lambda: (time.perf_counter() - t0) * 1e9, **kwargs)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        self._seen += 1
        if self.mode == "sample" and (self._seen - 1) % self.sample_every:
            self.dropped += 1
            return
        if self._events.maxlen is not None and len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(event)

    def instant(
        self,
        name: str,
        cat: str = "run",
        args: Optional[dict] = None,
        tid: int = 0,
    ) -> None:
        """Record a zero-duration event at the current clock time."""
        self._record(
            TraceEvent(self._clock(), PH_INSTANT, name, cat, args=args, tid=tid)
        )

    def complete(
        self,
        name: str,
        cat: str,
        start_ns: float,
        dur_ns: float,
        args: Optional[dict] = None,
        tid: int = 0,
    ) -> None:
        """Record a span with explicit start and duration (sim ns)."""
        self._record(
            TraceEvent(start_ns, PH_COMPLETE, name, cat, dur_ns, args, tid)
        )

    def counter(
        self, name: str, values: dict, cat: str = "", tid: int = 0
    ) -> None:
        """Record a set of numeric series values at the current time."""
        self._record(
            TraceEvent(
                self._clock(), PH_COUNTER, name, cat or name,
                args=dict(values), tid=tid,
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "run",
        args: Optional[dict] = None,
        tid: int = 0,
    ):
        """Measure a block on the tracer's clock as a complete event."""
        start = self._clock()
        try:
            yield
        finally:
            self.complete(name, cat, start, self._clock() - start, args, tid)

    def set_thread_name(self, tid: int, name: str) -> None:
        """Label a tid lane (exported as Chrome ``thread_name`` metadata)."""
        self._thread_names[tid] = name

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def categories(self) -> List[str]:
        return sorted({e.cat for e in self._events})

    def chrome_trace(self) -> dict:
        """The full Chrome-trace / Perfetto JSON object."""
        trace_events = [
            {
                "name": "thread_name",
                "ph": PH_METADATA,
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            }
            for tid, label in sorted(self._thread_names.items())
        ]
        trace_events.extend(e.to_chrome() for e in self._events)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulation-ns/1000",
                "mode": self.mode,
                "dropped_events": self.dropped,
            },
        }

    def export_chrome(self, path) -> Path:
        """Write the Chrome-trace JSON; open in Perfetto/chrome://tracing."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace()), encoding="utf-8")
        return path

    def export_jsonl(self, path) -> Path:
        """Write one JSON record per event (nanosecond timestamps)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(json.dumps(event.to_jsonl()) + "\n")
        return path

    def export(self, path) -> Path:
        """Export by extension: ``.jsonl`` → JSONL, anything else → Chrome."""
        path = Path(path)
        if path.suffix == ".jsonl":
            return self.export_jsonl(path)
        return self.export_chrome(path)
