"""Hierarchical metric registry: the simulator's single source of stats.

Every subsystem registers its counters into one :class:`MetricRegistry`
under a dot-separated path (``memctrl.reads_completed``,
``pcm.wear.demand_writes``), and consumers read the whole system through
a uniform :meth:`~MetricRegistry.snapshot` / :meth:`~MetricRegistry.diff`
API instead of reaching into per-component stats structs.

Metric kinds:

- **counter** — a monotonically increasing count owned by the registry
  (components ``inc()`` it);
- **gauge** — a pull-based value read at snapshot time, either a stored
  value (``set()``) or a zero-argument callable, which is how existing
  stats dataclasses register without being rewritten;
- **derived** — a gauge computed from other state (rates, ratios),
  distinguished only by kind so reports can tell raw counts from
  derivations;
- **histogram** — bucketed counts over explicit bounds; bucket ``i``
  holds values ``bounds[i-1] <= v < bounds[i]`` (first bucket is
  ``(-inf, bounds[0])``, last is ``[bounds[-1], inf)``).

Registration is one-time wiring; snapshots are pure reads, so a registry
can be rebuilt and snapshotted without perturbing a deterministic run.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.errors import ConfigError

SnapshotValue = Union[int, float, dict]
Snapshot = Dict[str, SnapshotValue]


class Metric:
    """Base class: a named, snapshotable value."""

    kind = "metric"

    def __init__(self, name: str) -> None:
        self.name = name

    def value(self) -> SnapshotValue:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count owned by its registrant."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._count = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"{self.name}: counters only increase, got {n}")
        self._count += n

    def value(self) -> int:
        return self._count


class Gauge(Metric):
    """A point-in-time value: stored (``set``) or pulled (callable)."""

    kind = "gauge"

    def __init__(
        self, name: str, fn: Optional[Callable[[], float]] = None
    ) -> None:
        super().__init__(name)
        self._fn = fn
        self._value: float = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ConfigError(f"{self.name}: pull gauges cannot be set")
        self._value = value

    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Derived(Gauge):
    """A gauge computed from other state (a rate, ratio, or average)."""

    kind = "derived"

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        super().__init__(name, fn)


class Histogram(Metric):
    """Bucketed value counts over explicit, strictly increasing bounds."""

    kind = "histogram"

    def __init__(self, name: str, bounds: Iterable[float]) -> None:
        super().__init__(name)
        self.bounds: List[float] = list(bounds)
        if not self.bounds:
            raise ConfigError(f"{name}: histogram needs at least one bound")
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:])):
            raise ConfigError(
                f"{name}: bounds must be strictly increasing: {self.bounds}"
            )
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0

    def record(self, value: float) -> None:
        """Count *value* into its bucket (``bisect_right`` semantics, so a
        value equal to a bound lands in the bucket above it)."""
        self.counts[bisect_right(self.bounds, value)] += 1
        self._count += 1
        self._sum += value

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def value(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self._count,
            "sum": self._sum,
        }


class MetricRegistry:
    """The hierarchical registry all subsystems publish into.

    Names are dot-separated paths; the segment before the first dot is
    the *group* (subsystem) used by the profiler and the tree renderer.
    Registering a duplicate name raises :class:`ConfigError` — two
    components publishing to one path is always a wiring bug.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._add(Counter(name))

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        return self._add(Gauge(name, fn))

    def derived(self, name: str, fn: Callable[[], float]) -> Derived:
        return self._add(Derived(name, fn))

    def histogram(self, name: str, bounds: Iterable[float]) -> Histogram:
        return self._add(Histogram(name, bounds))

    def _add(self, metric: Metric) -> Metric:
        if not metric.name or metric.name != metric.name.strip():
            raise ConfigError(f"bad metric name: {metric.name!r}")
        if metric.name in self._metrics:
            raise ConfigError(f"metric already registered: {metric.name}")
        self._metrics[metric.name] = metric
        return metric

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ConfigError(f"unknown metric: {name}") from None

    def names(self, prefix: str = "") -> List[str]:
        """All registered names (optionally under *prefix*), sorted."""
        return sorted(
            n for n in self._metrics
            if not prefix or n == prefix or n.startswith(prefix + ".")
        )

    def groups(self) -> List[str]:
        """Distinct top-level groups (the segment before the first dot)."""
        return sorted({name.split(".", 1)[0] for name in self._metrics})

    def snapshot(self, prefix: str = "") -> Snapshot:
        """Read every metric (optionally under *prefix*) into a flat dict.

        Pure read: gauges are pulled, nothing is mutated, so snapshots
        may be taken mid-run (the profiler does, every tick).
        """
        return {
            name: self._metrics[name].value() for name in self.names(prefix)
        }

    @staticmethod
    def diff(new: Snapshot, old: Snapshot) -> Snapshot:
        """Per-metric change from *old* to *new* (``new - old``).

        Metrics only present in *new* diff against zero; histogram values
        diff bucket-wise. Metrics that vanished are dropped.
        """
        out: Snapshot = {}
        for name, value in new.items():
            base = old.get(name)
            if isinstance(value, dict):
                base = base or {"counts": [0] * len(value["counts"]),
                                "count": 0, "sum": 0.0}
                out[name] = {
                    "bounds": list(value["bounds"]),
                    "counts": [
                        n - o for n, o in zip(value["counts"], base["counts"])
                    ],
                    "count": value["count"] - base["count"],
                    "sum": value["sum"] - base["sum"],
                }
            else:
                out[name] = value - (base or 0)
        return out

    @staticmethod
    def as_tree(snapshot: Snapshot) -> dict:
        """Nest a flat snapshot by its dot-separated path segments."""
        tree: dict = {}
        for name, value in snapshot.items():
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
                if not isinstance(node, dict):  # pragma: no cover - guard
                    raise ConfigError(f"metric path collides with leaf: {name}")
            node[parts[-1]] = value
        return tree

    @classmethod
    def render_tree(cls, snapshot: Snapshot, indent: int = 2) -> str:
        """Human-readable indented metric tree (``repro-rrm run`` output)."""
        lines: List[str] = []

        def walk(node: dict, depth: int) -> None:
            for key in sorted(node):
                value = node[key]
                pad = " " * (indent * depth)
                if isinstance(value, dict) and "counts" not in value:
                    lines.append(f"{pad}{key}:")
                    walk(value, depth + 1)
                elif isinstance(value, dict):
                    lines.append(
                        f"{pad}{key}: count={value['count']} sum={value['sum']:g}"
                    )
                elif isinstance(value, float):
                    lines.append(f"{pad}{key}: {value:g}")
                else:
                    lines.append(f"{pad}{key}: {value}")

        walk(cls.as_tree(snapshot), 0)
        return "\n".join(lines)
