"""Unified observability: metrics registry, event tracing, profiling.

Three pillars (DESIGN.md, "Observability"):

- :class:`~repro.telemetry.registry.MetricRegistry` — every subsystem's
  counters behind one hierarchical ``snapshot()``/``diff()`` API;
- :class:`~repro.telemetry.trace.Tracer` — simulation-time spans,
  instants and counter tracks, exportable to Chrome-trace/Perfetto JSON
  and JSONL;
- :class:`~repro.telemetry.profiler.Profiler` — periodic snapshot events
  on the engine emitting per-subsystem time-series.

Telemetry is opt-in: without a :class:`TelemetryConfig`, components see
the no-op :data:`~repro.telemetry.trace.NULL_TRACER` and a run is
byte-identical to an uninstrumented one.

Usage::

    from repro import System, SystemConfig, Scheme, TelemetryConfig

    tcfg = TelemetryConfig(metrics_interval_s=0.001)
    system = System(SystemConfig.tiny(), "hmmer", Scheme.RRM, telemetry=tcfg)
    result = system.run()
    system.telemetry.tracer.export_chrome("run-trace.json")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.telemetry.profiler import Profiler
from repro.telemetry.registry import (
    Counter,
    Derived,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    Snapshot,
)
from repro.telemetry.summary import (
    TraceSummary,
    flatten_args,
    format_summary,
    load_trace,
    summarize_trace,
    validate_chrome_trace,
)
from repro.telemetry.trace import (
    NULL_TRACER,
    TRACE_MODES,
    NullTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "Derived",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Profiler",
    "Snapshot",
    "Telemetry",
    "TelemetryConfig",
    "TraceEvent",
    "TraceSummary",
    "Tracer",
    "TRACE_MODES",
    "flatten_args",
    "format_summary",
    "load_trace",
    "summarize_trace",
    "validate_chrome_trace",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Switches for one run's observability.

    Attributes:
        mode: Tracer memory bound — ``full`` | ``ring`` | ``sample``.
        ring_size: Event capacity in ``ring`` mode.
        sample_every: Keep every Nth event in ``sample`` mode.
        metrics_interval_s: Period (virtual seconds) of the profiler's
            snapshot events; ``None`` disables periodic sampling.
        detailed_metrics: Also register latency histograms (small
            per-completion recording cost; off leaves only pull gauges).
        trace: Record trace events. Off keeps the no-op tracer, so a
            config can enable attribution (or detail metrics) without
            paying for event recording.
        attribution: Build per-request latency anatomies
            (:mod:`repro.attribution`). Observational only — simulation
            statistics are bit-identical either way.
        profile: Host-side profiling (:mod:`repro.profiling`): sampling
            CPU profiler around the run, deterministic event-cost
            accounting on the engine, and a post-run memory census.
            Observational only — the profiled run's ``as_dict()`` is
            bit-identical to an unprofiled one.
        profile_interval_s: Host-time sampling period of the profiler.
    """

    mode: str = "full"
    ring_size: int = 100_000
    sample_every: int = 1
    metrics_interval_s: Optional[float] = None
    detailed_metrics: bool = True
    trace: bool = True
    attribution: bool = False
    profile: bool = False
    profile_interval_s: float = 0.005

    def __post_init__(self) -> None:
        if self.mode not in TRACE_MODES:
            raise ConfigError(
                f"telemetry mode must be one of {TRACE_MODES}, got {self.mode!r}"
            )
        if self.ring_size <= 0:
            raise ConfigError("ring_size must be positive")
        if self.sample_every <= 0:
            raise ConfigError("sample_every must be positive")
        if self.metrics_interval_s is not None and self.metrics_interval_s <= 0:
            raise ConfigError("metrics_interval_s must be positive")
        if self.profile_interval_s <= 0:
            raise ConfigError("profile_interval_s must be positive")


class Telemetry:
    """One run's observability bundle: registry + tracer (+ profiler).

    The registry always exists — metric registration is one-time wiring
    and snapshots are how results are harvested — but the tracer is the
    shared no-op unless a :class:`TelemetryConfig` enables recording.
    """

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config
        self.registry = MetricRegistry()
        if config is None or not config.trace:
            self.tracer: "Tracer | NullTracer" = NULL_TRACER
        else:
            self.tracer = Tracer(
                clock,
                mode=config.mode,
                ring_size=config.ring_size,
                sample_every=config.sample_every,
            )
        self.profiler: Optional[Profiler] = None

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @property
    def detailed(self) -> bool:
        """Whether components should register detail metrics (histograms)."""
        return self.config is not None and self.config.detailed_metrics

    def make_profiler(self, sim, interval_ns: float) -> Profiler:
        """Build (and remember) the profiler; the caller starts it."""
        self.profiler = Profiler(
            sim, self.registry, self.tracer, interval_ns=interval_ns
        )
        return self.profiler
