"""Periodic profiling hooks: metric snapshots on the simulation clock.

The profiler arms one periodic engine event that, every *interval_ns* of
virtual time, snapshots the registry and emits one counter event per
metric group (``engine``, ``memctrl``, ``cpu``, ``rrm``, ``pcm``, …) into
the tracer. A traced run therefore carries time-series of the write-mode
mix, queue depths and refresh counts alongside its spans, and Perfetto
renders them as stacked counter tracks.

The tick callback is a pure read — it snapshots gauges and appends trace
events, never touching simulation state — so arming the profiler cannot
change a run's :class:`~repro.sim.metrics.SimResult` (the determinism
the telemetry test suite pins down). The only caveat is ``max_events``
budgets: profiler ticks are engine events and count against them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.telemetry.registry import MetricRegistry, Snapshot
from repro.telemetry.trace import NULL_TRACER


class Profiler:
    """Samples a registry into a tracer every *interval_ns* of sim time.

    Args:
        sim: The discrete-event engine (anything with
            ``schedule_periodic``/``now``).
        registry: The registry to snapshot.
        tracer: Destination for the counter events.
        interval_ns: Virtual time between samples.
        keep_samples: Also retain ``(time_ns, snapshot)`` tuples on
            :attr:`samples` — handy in tests and notebooks, off by
            default to bound memory on long runs.
    """

    def __init__(
        self,
        sim,
        registry: MetricRegistry,
        tracer=NULL_TRACER,
        *,
        interval_ns: float,
        keep_samples: bool = False,
    ) -> None:
        if interval_ns <= 0:
            raise ConfigError(
                f"profiler interval must be positive, got {interval_ns}"
            )
        self.sim = sim
        self.registry = registry
        self.tracer = tracer
        self.interval_ns = interval_ns
        self.keep_samples = keep_samples
        self.samples: List[Tuple[float, Snapshot]] = []
        self.ticks = 0
        self._started = False

    def start(self) -> None:
        """Arm the periodic sampling event (first sample one interval in)."""
        if self._started:
            raise ConfigError("profiler already started")
        self._started = True
        self.sim.schedule_periodic(self.interval_ns, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        snapshot = self.registry.snapshot()
        for group, values in self._grouped_numeric(snapshot).items():
            self.tracer.counter(group, values, cat=group)
        if self.keep_samples:
            self.samples.append((self.sim.now, snapshot))

    @staticmethod
    def _grouped_numeric(snapshot: Snapshot) -> Dict[str, Dict[str, float]]:
        """Numeric metrics bucketed by top-level group; histograms are
        skipped (counter tracks need scalar series)."""
        groups: Dict[str, Dict[str, float]] = {}
        for name, value in snapshot.items():
            if isinstance(value, dict):
                continue
            group, _, leaf = name.partition(".")
            groups.setdefault(group, {})[leaf or group] = value
        return groups
