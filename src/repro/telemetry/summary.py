"""Trace-file loading, validation and summarisation.

Backs the ``repro-rrm trace`` subcommand and the CI smoke job: load a
trace produced by :class:`~repro.telemetry.trace.Tracer` (Chrome JSON or
JSONL), check it against the subset of the Chrome Trace Event Format we
emit, and print a human-readable digest (event counts per category,
time range, longest spans, counter series).
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import TraceFormatError
from repro.telemetry.trace import (
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    PH_METADATA,
)

_KNOWN_PHASES = {PH_COMPLETE, PH_COUNTER, PH_INSTANT, PH_METADATA}


def flatten_args(args: dict, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a (possibly nested) span ``args`` dict.

    Nested dicts flatten with dotted keys, so an attribution anatomy
    attached as ``args={"anatomy": {"wait_read": 12.5}}`` aggregates
    under ``anatomy.wait_read``. Non-numeric leaves are skipped.
    """
    flat: Dict[str, float] = {}
    for key, value in args.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_args(value, prefix=f"{name}."))
        elif isinstance(value, bool):
            flat[name] = float(value)
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
    return flat


def load_trace(path) -> List[dict]:
    """Load trace events from a Chrome JSON or JSONL file.

    Chrome files yield events with microsecond ``ts``; JSONL files carry
    nanosecond ``ts_ns`` records, which are converted to the same shape
    so summaries work on either. Raises :class:`TraceFormatError` on
    unparseable input.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".jsonl":
        events = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}: bad JSONL line {lineno}: {exc}"
                ) from None
            event = {
                "name": record.get("name"),
                "cat": record.get("cat", ""),
                "ph": record.get("ph"),
                "ts": record.get("ts_ns", 0.0) / 1000.0,
                "pid": 1,
                "tid": record.get("tid", 0),
            }
            if "dur_ns" in record:
                event["dur"] = record["dur_ns"] / 1000.0
            if "args" in record:
                event["args"] = record["args"]
            events.append(event)
        return events
    try:
        obj = json.loads(text)
    except ValueError as exc:
        raise TraceFormatError(f"{path}: not valid JSON: {exc}") from None
    if isinstance(obj, list):  # bare traceEvents array form
        return obj
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise TraceFormatError(f"{path}: no traceEvents array")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise TraceFormatError(
            f"{path}: traceEvents is {type(events).__name__}, not a list"
        )
    return events


def validate_chrome_trace(events: List[dict]) -> List[str]:
    """Check *events* against the Chrome Trace Event Format subset we
    emit; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    if not events:
        problems.append("trace contains no events")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"event {i}: missing name")
        if ph == PH_METADATA:
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {i}: missing numeric ts")
        if ph == PH_COMPLETE:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: complete event needs dur >= 0")
        if ph == PH_COUNTER and not isinstance(event.get("args"), dict):
            problems.append(f"event {i}: counter event needs args")
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    return problems


@dataclass
class TraceSummary:
    """Digest of one trace file."""

    n_events: int = 0
    t_min_us: float = 0.0
    t_max_us: float = 0.0
    by_phase: Dict[str, int] = field(default_factory=dict)
    by_category: Dict[str, int] = field(default_factory=dict)
    #: (dur_us, name, cat, ts_us) of the longest complete events.
    longest_spans: List[Tuple[float, str, str, float]] = field(
        default_factory=list
    )
    counter_series: Dict[str, List[str]] = field(default_factory=dict)
    #: span name -> flattened arg key -> [occurrences, numeric total].
    #: This is the aggregate the old summary silently dropped: span args
    #: (e.g. per-request latency anatomies) were loaded but never
    #: tallied, so annotated traces summarised no richer than bare ones.
    span_args: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    dropped_events: Optional[int] = None

    @property
    def duration_us(self) -> float:
        return max(0.0, self.t_max_us - self.t_min_us)

    def to_json_dict(self) -> dict:
        """JSON-able digest, used by ``repro-rrm trace --json``."""
        return {
            "n_events": self.n_events,
            "t_min_us": self.t_min_us,
            "t_max_us": self.t_max_us,
            "duration_us": self.duration_us,
            "by_phase": dict(self.by_phase),
            "by_category": dict(self.by_category),
            "longest_spans": [
                {"dur_us": dur, "name": name, "cat": cat, "ts_us": ts}
                for dur, name, cat, ts in self.longest_spans
            ],
            "counter_series": {
                name: list(keys) for name, keys in self.counter_series.items()
            },
            "span_args": {
                name: {
                    key: {"count": int(count), "total": total}
                    for key, (count, total) in sorted(keys.items())
                }
                for name, keys in sorted(self.span_args.items())
            },
        }


def summarize_trace(events: List[dict], top_spans: int = 10) -> TraceSummary:
    """Aggregate a loaded trace into a :class:`TraceSummary`."""
    summary = TraceSummary()
    phases: TallyCounter = TallyCounter()
    cats: TallyCounter = TallyCounter()
    spans: List[Tuple[float, str, str, float]] = []
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for event in events:
        if not isinstance(event, dict):
            # Garbage rows still count (so the digest reflects the file)
            # but are bucketed under "?" rather than crashing the tally.
            summary.n_events += 1
            phases["?"] += 1
            cats["?"] += 1
            continue
        ph = event.get("ph")
        if ph == PH_METADATA:
            continue
        if not isinstance(ph, str):
            ph = "?"
        summary.n_events += 1
        phases[ph] += 1
        cats[str(event.get("cat") or "default")] += 1
        ts = event.get("ts", 0.0)
        if not isinstance(ts, (int, float)):
            ts = 0.0
        end = ts
        if ph == PH_COMPLETE:
            dur = event.get("dur", 0.0)
            if not isinstance(dur, (int, float)):
                dur = 0.0
            end = ts + dur
            spans.append(
                (float(dur), str(event.get("name") or "?"),
                 str(event.get("cat") or "default"), float(ts))
            )
            args = event.get("args")
            if isinstance(args, dict) and args:
                tally = summary.span_args.setdefault(
                    str(event.get("name") or "?"), {}
                )
                for key, value in flatten_args(args).items():
                    cell = tally.setdefault(key, [0, 0.0])
                    cell[0] += 1
                    cell[1] += value
        elif ph == PH_COUNTER:
            series = summary.counter_series.setdefault(
                str(event.get("name") or "?"), []
            )
            for key in (event.get("args") or {}):
                if key not in series:
                    series.append(key)
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = end if t_max is None else max(t_max, end)
    if t_min is not None:
        summary.t_min_us = t_min
        summary.t_max_us = t_max
    summary.by_phase = dict(phases)
    summary.by_category = dict(cats)
    summary.longest_spans = sorted(spans, reverse=True)[:top_spans]
    return summary


def format_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as the ``trace`` subcommand output."""
    lines = [
        f"events          {summary.n_events}",
        f"time range      {summary.t_min_us:.3f} .. {summary.t_max_us:.3f} us "
        f"({summary.duration_us / 1000.0:.3f} ms)",
        "phases          "
        + ", ".join(
            f"{ph}={n}" for ph, n in sorted(summary.by_phase.items())
        ),
        "categories:",
    ]
    for cat, n in sorted(summary.by_category.items()):
        lines.append(f"  {cat:<14} {n}")
    if summary.counter_series:
        lines.append("counter tracks:")
        for name, series in sorted(summary.counter_series.items()):
            shown = ", ".join(series[:6]) + (", ..." if len(series) > 6 else "")
            lines.append(f"  {name:<14} [{shown}]")
    if summary.span_args:
        lines.append("span args (count / total / mean):")
        for name, keys in sorted(summary.span_args.items()):
            lines.append(f"  {name}:")
            for key, (count, total) in sorted(keys.items()):
                mean = total / count if count else 0.0
                lines.append(
                    f"    {key:<32} {int(count):>8}  "
                    f"{total:>14.1f}  {mean:>10.3f}"
                )
    if summary.longest_spans:
        lines.append("longest spans:")
        for dur, name, cat, ts in summary.longest_spans:
            lines.append(
                f"  {dur:10.3f} us  {name:<18} cat={cat:<10} at {ts:.3f} us"
            )
    return "\n".join(lines)
