"""Deterministic fault injection for the job supervisor.

A :class:`FaultPlan` decides, per (job, attempt), whether the worker
should misbehave and how. Faults fire inside the worker process, so from
the supervisor's point of view they are indistinguishable from real
infrastructure failures — which is exactly what makes them useful both in
tests and in operational drills (``repro-rrm sweep --inject-faults ...``).

Spec grammar (one spec per fault)::

    KIND:TARGET[:MAX_FIRES]

    KIND       crash | hang | error | corrupt
    TARGET     job index into the sweep's job list (``1``), or
               ``workload/scheme`` (``GemsFDTD/RRM``, scheme name in any
               form ``scheme_from_name`` accepts)
    MAX_FIRES  fire only on the first N attempts (default: every attempt)

``crash:1`` makes job #1 die on every attempt (the job fails permanently
after retries are exhausted); ``crash:1:1`` kills only the first attempt,
so the retry succeeds.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

FAULT_KINDS = ("crash", "hang", "error", "corrupt")

#: How long an injected hang sleeps; effectively forever next to any
#: realistic job timeout, but bounded so an unsupervised worker still ends.
HANG_SLEEP_S = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens, to which job, on which attempts."""

    kind: str
    #: Raw target string: an index (``"1"``) or ``"workload/scheme"``.
    target: str
    #: Fire on attempts 1..max_fires only; ``None`` means every attempt.
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigError("fault max_fires must be >= 1")

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"bad fault spec {spec!r}; expected KIND:TARGET[:MAX_FIRES]"
            )
        max_fires = None
        if len(parts) == 3:
            try:
                max_fires = int(parts[2])
            except ValueError:
                raise ConfigError(
                    f"bad fault spec {spec!r}: MAX_FIRES must be an integer"
                ) from None
        return cls(kind=parts[0].strip().lower(), target=parts[1].strip(),
                   max_fires=max_fires)


class FaultPlan:
    """A set of fault specs bound to a concrete job list.

    Index targets are resolved against the job-key order passed to
    :meth:`bind` (the supervisor binds the sweep's job list before
    launching), so ``crash:1`` always hits the same (workload, scheme)
    pair for a given sweep definition.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._by_key: "dict[Tuple, List[FaultSpec]]" = {}
        self._bound = False

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "FaultPlan":
        return cls(FaultSpec.parse(s) for s in specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------
    def bind(self, keys: Sequence[Tuple]) -> "FaultPlan":
        """Resolve every spec target against *keys* (ordered job keys).

        Keys are ``(workload, scheme_name)`` tuples. Raises
        :class:`ConfigError` for a target that matches no job, so a typo'd
        drill fails loudly instead of silently injecting nothing.
        """
        self._by_key = {}
        for spec in self.specs:
            key = self._resolve(spec.target, keys)
            self._by_key.setdefault(key, []).append(spec)
        self._bound = True
        return self

    @staticmethod
    def _resolve(target: str, keys: Sequence[Tuple]) -> Tuple:
        if "/" in target:
            workload, _, scheme_name = target.partition("/")
            from repro.sim.schemes import scheme_from_name

            scheme = scheme_from_name(scheme_name).value
            for key in keys:
                if key == (workload, scheme):
                    return key
            raise ConfigError(
                f"fault target {target!r} matches no job in this sweep"
            )
        try:
            index = int(target)
        except ValueError:
            raise ConfigError(
                f"bad fault target {target!r}; expected an index or "
                "workload/scheme"
            ) from None
        if not 0 <= index < len(keys):
            raise ConfigError(
                f"fault target index {index} out of range (jobs: {len(keys)})"
            )
        return keys[index]

    def fault_for(self, key: Tuple, attempt: int) -> Optional[str]:
        """The fault kind to inject for attempt *attempt* (1-based) of job
        *key*, or ``None``."""
        if not self._bound:
            raise ConfigError("FaultPlan.bind() must run before fault_for()")
        for spec in self._by_key.get(key, ()):
            if spec.max_fires is None or attempt <= spec.max_fires:
                return spec.kind
        return None


class InjectedFaultError(RuntimeError):
    """Raised inside a worker by an ``error`` fault."""


def trigger_fault(kind: str) -> None:
    """Misbehave, worker-side, *before* the job runs.

    ``corrupt`` is handled after the job by :func:`corrupt_result`.
    """
    if kind == "crash":
        # A hard exit, like a SIGKILL'd / OOM-killed worker: no exception,
        # no result, just a dead process and a closed pipe.
        os._exit(41)
    if kind == "hang":
        time.sleep(HANG_SLEEP_S)
    if kind == "error":
        raise InjectedFaultError("injected worker error")


def corrupt_result(value):
    """Mangle a job's return value the way a torn write / bad DMA would.

    A :class:`~repro.sim.metrics.SimResult` keeps its shape but gets an
    impossible IPC, which result validation must catch; any other payload
    is replaced outright.
    """
    if hasattr(value, "ipc"):
        value.ipc = float("nan")
        return value
    return "__corrupted-payload__"
