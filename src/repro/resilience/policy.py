"""Retry policy: bounded retries with exponential backoff and seeded jitter.

Backoff delays are a pure function of ``(seed, job key, attempt)`` so a
sweep replayed with the same seed produces an identical retry schedule —
the same determinism contract the simulator itself offers. Jitter exists
to de-synchronise retries of jobs that failed together (e.g. all workers
OOM-killed at once), and hashing rather than a shared RNG keeps it
independent of completion order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

#: Exception type names that indicate a deterministic input problem; the
#: job would fail identically on every attempt, so retrying is wasted work.
NON_RETRYABLE_ERRORS = frozenset({"ConfigError", "TraceFormatError"})


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run a failed job, and how long to wait."""

    #: Re-tries after the first attempt (total attempts = 1 + max_retries).
    max_retries: int = 2
    #: Delay before the first retry, in seconds.
    base_delay_s: float = 0.1
    #: Multiplier applied per additional retry.
    backoff_factor: float = 2.0
    #: Cap on any single delay.
    max_delay_s: float = 5.0
    #: Delays are perturbed by up to +/- this fraction.
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter_fraction <= 1:
            raise ValueError("jitter_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    def should_retry(self, attempt: int, error_type: str) -> bool:
        """Whether a job that has run *attempt* times (>= 1) and last
        failed with exception type *error_type* deserves another try."""
        if error_type in NON_RETRYABLE_ERRORS:
            return False
        return attempt <= self.max_retries

    def delay_s(self, key: Tuple, attempt: int, seed: int = 0) -> float:
        """Backoff before retry number *attempt* (1-based) of job *key*.

        Deterministic: same (seed, key, attempt) -> same delay, across
        processes and runs (uses SHA-256, not ``hash()``, so it is immune
        to ``PYTHONHASHSEED``).
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
            self.max_delay_s,
        )
        if base == 0 or self.jitter_fraction == 0:
            return base
        digest = hashlib.sha256(
            f"{seed}|{key!r}|{attempt}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))

    def schedule(self, key: Tuple, seed: int = 0) -> "list[float]":
        """The full delay schedule a job would follow if it kept failing."""
        return [
            self.delay_s(key, attempt, seed)
            for attempt in range(1, self.max_retries + 1)
        ]
