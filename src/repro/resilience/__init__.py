"""Resilient experiment orchestration.

The pieces a long sweep needs to survive real infrastructure: supervised
execution (per-job timeouts, bounded deterministic retries, worker-crash
isolation), crash-safe JSONL checkpointing with resume, and a
deterministic fault-injection harness used by tests and operational
drills alike. See DESIGN.md, "Resilient sweeps".
"""

from repro.resilience.faultinject import FaultPlan, FaultSpec
from repro.resilience.journal import JournalContents, ResultJournal
from repro.resilience.policy import RetryPolicy
from repro.resilience.supervisor import (
    FailedRun,
    Job,
    JobSupervisor,
    run_with_retry,
)

__all__ = [
    "FailedRun",
    "FaultPlan",
    "FaultSpec",
    "Job",
    "JobSupervisor",
    "JournalContents",
    "ResultJournal",
    "RetryPolicy",
    "run_with_retry",
]
