"""Crash-safe result journaling: append-only JSONL with atomic writes.

One line per settled job (result or failure), preceded by a metadata
line, so an interrupted sweep can resume from everything that completed.
Durability model:

- every append rewrites the journal to ``<path>.tmp`` and ``os.replace``s
  it over the real file, so readers never observe a half-written journal
  and a crash mid-append leaves the previous complete journal intact;
- the loader still tolerates a truncated *final* line (e.g. a journal
  written by a plain appender, or a torn filesystem) by dropping it,
  because that line's job simply re-runs on resume;
- an unreadable line anywhere *before* the end means real corruption and
  raises :class:`~repro.errors.CheckpointCorruptError`.

Record shapes::

    {"type": "meta", "version": 1, "seed": ..., "workloads": [...], "schemes": [...]}
    {"type": "result", "workload": w, "scheme": s, "result": {...}}
    {"type": "failure", "workload": w, "scheme": s, "failure": {...}}

The sharded sweep fabric (:mod:`repro.fabric`) additionally uses the
journal as a shared work queue, interleaving lease records between the
settled ones::

    {"type": "claim", "workload": w, "scheme": s, "worker": id,
     "attempt": n, "expires_unix_s": t}
    {"type": "release", "workload": w, "scheme": s, "worker": id,
     "reason": "retry:<ErrorType>" | "crash" | "timeout"}

``reason`` is free-form evidence for post-mortems (retry releases carry
the exception type that caused them); nothing dispatches on it.

Claims and releases are advisory scheduling state, not results: the
loader collects them (so the fabric can reconstruct the queue) and
:meth:`ResultJournal.resume_from` drops them along with failures.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CheckpointCorruptError
from repro.telemetry.trace import NULL_TRACER
from repro.utils.persist import atomic_write_text

JOURNAL_VERSION = 1


def sweep_fingerprint(
    config,
    workloads: Iterable[str],
    schemes: Iterable[str],
    max_events: Optional[int] = None,
) -> Dict[str, str]:
    """The identity stamp a journal carries so ``--resume`` can refuse a
    mismatched sweep instead of silently mixing results.

    Two sha256 digests: ``config_sha256`` over the configuration's full
    field tree (dataclasses serialise their ``asdict``; anything else
    hashes its ``repr``) and ``spec_sha256`` over the sweep definition
    (workloads, schemes, max_events). Equal stamps mean the journal's
    results are drop-in valid for the resuming sweep.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config_payload = json.dumps(
            dataclasses.asdict(config), sort_keys=True, default=repr
        )
    else:
        config_payload = repr(config)
    spec_payload = json.dumps(
        {
            "workloads": list(workloads),
            "schemes": list(schemes),
            "max_events": max_events,
        },
        sort_keys=True,
    )
    return {
        "config_sha256": hashlib.sha256(
            config_payload.encode("utf-8")
        ).hexdigest(),
        "spec_sha256": hashlib.sha256(
            spec_payload.encode("utf-8")
        ).hexdigest(),
    }


@dataclass
class JournalContents:
    """Everything a journal load yields."""

    meta: Optional[dict] = None
    results: Dict[Tuple[str, str], dict] = field(default_factory=dict)
    failures: Dict[Tuple[str, str], dict] = field(default_factory=dict)
    #: Fabric lease records, in append order, keyed like results.
    claims: Dict[Tuple[str, str], List[dict]] = field(default_factory=dict)
    releases: Dict[Tuple[str, str], List[dict]] = field(default_factory=dict)
    #: True when a truncated final line was dropped.
    truncated: bool = False

    def settled(self) -> set:
        """Keys with a durable outcome (result or failure)."""
        return set(self.results) | set(self.failures)


class ResultJournal:
    """An append-only JSONL journal of settled sweep jobs.

    When a *tracer* is supplied, every append emits a ``journal.append``
    instant event (category ``journal``) so sweep traces show exactly
    when each record became durable.
    """

    def __init__(self, path, tracer=NULL_TRACER) -> None:
        self.path = Path(path)
        self.tracer = tracer
        self._lines: List[str] = []

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def start(self, meta: dict) -> None:
        """Begin a fresh journal (truncates any existing file)."""
        self._lines = [
            json.dumps({"type": "meta", "version": JOURNAL_VERSION, **meta})
        ]
        self._flush()

    def append_result(self, workload: str, scheme: str, result: dict) -> None:
        self._append(
            {"type": "result", "workload": workload, "scheme": scheme,
             "result": result}
        )

    def append_failure(self, workload: str, scheme: str, failure: dict) -> None:
        self._append(
            {"type": "failure", "workload": workload, "scheme": scheme,
             "failure": failure}
        )

    def _append(self, record: dict) -> None:
        self._lines.append(json.dumps(record))
        self._flush()
        if self.tracer.enabled:
            self.tracer.instant(
                "journal.append",
                "journal",
                args={
                    "type": record["type"],
                    "workload": record.get("workload"),
                    "scheme": record.get("scheme"),
                    "records": len(self._lines),
                },
            )

    def _flush(self) -> None:
        """Atomically persist the whole journal (tmp file + ``os.replace``)."""
        atomic_write_text(self.path, "\n".join(self._lines) + "\n")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> JournalContents:
        """Parse a journal, tolerating a truncated final line.

        Raises :class:`CheckpointCorruptError` for corruption anywhere
        else, and ``FileNotFoundError`` if the journal does not exist.
        """
        text = Path(path).read_text(encoding="utf-8")
        contents = JournalContents()
        raw_lines = text.split("\n")
        # A well-formed journal ends with a newline, so the final split
        # element is empty; anything else is a torn trailing write.
        if raw_lines and raw_lines[-1] == "":
            raw_lines.pop()
        for lineno, line in enumerate(raw_lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "type" not in record:
                    raise ValueError("not a journal record")
            except ValueError as exc:
                if lineno == len(raw_lines) - 1:
                    contents.truncated = True
                    continue
                raise CheckpointCorruptError(
                    f"{path}: unreadable journal line {lineno + 1}: {exc}"
                ) from None
            kind = record["type"]
            if kind == "meta":
                contents.meta = record
            elif kind == "result":
                contents.results[(record["workload"], record["scheme"])] = (
                    record["result"]
                )
            elif kind == "failure":
                contents.failures[(record["workload"], record["scheme"])] = (
                    record["failure"]
                )
            elif kind == "claim":
                contents.claims.setdefault(
                    (record["workload"], record["scheme"]), []
                ).append(record)
            elif kind == "release":
                contents.releases.setdefault(
                    (record["workload"], record["scheme"]), []
                ).append(record)
            else:
                raise CheckpointCorruptError(
                    f"{path}: unknown journal record type {kind!r} "
                    f"on line {lineno + 1}"
                )
        return contents

    # ------------------------------------------------------------------
    def resume_from(self, contents: JournalContents, meta: dict) -> None:
        """Seed this journal with the surviving records of *contents*.

        Failure records are dropped (their jobs re-run and re-journal),
        as are fabric claim/release leases (scheduling state from a dead
        fleet); result records are kept verbatim, and the file is
        rewritten atomically so the on-disk journal matches the resumed
        sweep.
        """
        self._lines = [
            json.dumps({"type": "meta", "version": JOURNAL_VERSION, **meta})
        ]
        for (workload, scheme), result in contents.results.items():
            self._lines.append(
                json.dumps(
                    {"type": "result", "workload": workload, "scheme": scheme,
                     "result": result}
                )
            )
        self._flush()
