"""Supervised job execution: timeouts, retries, and crash isolation.

The supervisor replaces the bare ``ProcessPoolExecutor.map`` pattern,
where one crashed or hung worker aborts the whole sweep and discards all
completed work. Jobs are submitted individually to dedicated worker
processes; each attempt gets a wall-clock deadline, each failure gets a
bounded, deterministically-jittered retry (see
:class:`~repro.resilience.policy.RetryPolicy`), and a job that exhausts
its retries degrades to a structured :class:`FailedRun` record instead of
an exception that unwinds the sweep.

Execution modes:

- **inline** — ``n_workers == 1`` with no timeout and no fault plan runs
  jobs in-process (no fork overhead, same behaviour as the historical
  serial path) while still converting exceptions into retries/failures;
- **subprocess** — otherwise each attempt runs in its own
  ``multiprocessing.Process`` with a result pipe, so the supervisor can
  kill a hung attempt and observe a crashed one (non-zero exit) without
  losing the pool.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CorruptResultError,
    JobCrashedError,
    JobTimeoutError,
)
from repro.resilience.faultinject import FaultPlan, corrupt_result, trigger_fault
from repro.resilience.policy import RetryPolicy

#: Seconds between supervisor poll sweeps; small enough that short test
#: timeouts are honoured promptly, large enough not to spin.
_POLL_INTERVAL_S = 0.01

#: Grace period after SIGTERM before a hung worker is SIGKILL'd.
_TERM_GRACE_S = 2.0


@dataclass(frozen=True)
class Job:
    """One supervised unit of work.

    ``fn`` must be a module-level callable (it is pickled to workers) and
    ``key`` identifies the job in results, failures, journals and fault
    plans — for sweeps it is ``(workload, scheme_name)``.
    """

    key: Tuple
    fn: Callable
    args: Tuple = ()


@dataclass
class FailedRun:
    """A job that exhausted its retries; the degraded stand-in for a result."""

    key: Tuple
    kind: str  # "timeout" | "crash" | "error" | "corrupt"
    message: str
    attempts: int
    elapsed_s: float = 0.0
    #: Path of the worker's flight-recorder dump, when one was written
    #: (fabric workers with a recorder dir); the post-mortem pointer
    #: that makes a ``crash`` failure explainable.
    recorder_path: Optional[str] = None

    _ERROR_TYPES = {
        "timeout": JobTimeoutError,
        "crash": JobCrashedError,
        "corrupt": CorruptResultError,
    }

    def to_error(self) -> Exception:
        """The matching exception, for callers that want to raise."""
        return self._ERROR_TYPES.get(self.kind, JobCrashedError)(
            f"{self.key}: {self.message} (after {self.attempts} attempts)"
        )

    def as_dict(self) -> dict:
        d = {
            "key": list(self.key),
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }
        if self.recorder_path is not None:
            d["recorder_path"] = self.recorder_path
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FailedRun":
        return cls(
            key=tuple(d["key"]),
            kind=d["kind"],
            message=d["message"],
            attempts=d["attempts"],
            elapsed_s=d.get("elapsed_s", 0.0),
            recorder_path=d.get("recorder_path"),
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(conn, fn, args, fault: Optional[str]) -> None:
    """Subprocess entry point: run the job, send ("ok"|"error", payload)."""
    try:
        if fault is not None:
            trigger_fault(fault)  # crash/hang never return; error raises
        value = fn(*args)
        if fault == "corrupt":
            value = corrupt_result(value)
        conn.send(("ok", value))
    except BaseException as exc:  # noqa: BLE001 - must not escape the worker
        try:
            conn.send(
                ("error", (type(exc).__name__, f"{exc}", traceback.format_exc()))
            )
        except Exception as send_exc:  # noqa: BLE001 - pipe already broken
            # The supervisor will settle this attempt as a crash; leave
            # the real error on stderr so the post-mortem has it.
            from repro.obs.live.slog import StructuredLogger

            StructuredLogger(sys.stderr).error(
                "resilience.result_pipe.broken",
                pipe_error=type(send_exc).__name__,
                failure=f"{type(exc).__name__}: {exc}",
            )
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Attempt:
    """A queued (or running) try of one job."""

    job: Job
    attempt: int  # 1-based
    not_before: float  # monotonic time gating backoff
    first_started: Optional[float] = None


@dataclass
class _Running:
    entry: _Attempt
    process: multiprocessing.process.BaseProcess
    conn: object
    started: float
    deadline: Optional[float]


class JobSupervisor:
    """Runs jobs to completion-or-structured-failure.

    Args:
        n_workers: concurrent worker slots (subprocess mode) or 1.
        timeout_s: per-attempt wall-clock limit; ``None`` disables.
        retry: the :class:`RetryPolicy`; ``None`` uses defaults.
        fault_plan: optional :class:`FaultPlan` (forces subprocess mode so
            injected crashes kill a worker, not the orchestrator).
        seed: seeds the retry jitter schedule.
        validate: optional ``(key, value) -> Optional[str]``; a returned
            message marks the result corrupt (runs supervisor-side).
        sleep: injection point for tests; must accept seconds.
        clock: monotonic clock used for backoff gates, deadlines, and
            elapsed-time accounting; injectable so timeout/retry paths
            are testable without sleeping (RL011).
        on_event: optional ``(name, args) -> None`` observability hook
            fired on every lifecycle transition — ``job.attempt``,
            ``job.result``, ``job.retry``, ``job.failed`` — with a dict
            of the transition's details. Exceptions in the hook
            propagate; keep it cheap and non-throwing (the sweep runner
            forwards these to a wall-clock tracer).
    """

    def __init__(
        self,
        n_workers: int = 1,
        *,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        seed: int = 0,
        validate: Optional[Callable[[Tuple, object], Optional[str]]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_event: Optional[Callable[[str, dict], None]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.n_workers = n_workers
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self.fault_plan = fault_plan
        self.seed = seed
        self.validate = validate
        self._sleep = sleep
        self._clock = clock
        self.on_event = on_event
        self.retries_scheduled: List[Tuple[Tuple, int, float]] = []

    def _emit(self, name: str, **args) -> None:
        if self.on_event is not None:
            self.on_event(name, args)

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[Job],
        on_result: Optional[Callable[[Tuple, object], None]] = None,
        on_failure: Optional[Callable[[FailedRun], None]] = None,
    ) -> Tuple[Dict[Tuple, object], Dict[Tuple, FailedRun]]:
        """Run every job; returns ``(results, failures)`` keyed by job key.

        Callbacks fire in completion order, as each job settles — so even
        if the sweep is interrupted later, everything reported so far has
        already been delivered (and journaled, if the caller journals).
        """
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            raise ValueError("job keys must be unique")
        if self.fault_plan:
            self.fault_plan.bind(keys)
        self.retries_scheduled = []
        if self._inline_mode():
            return self._run_inline(jobs, on_result, on_failure)
        return self._run_subprocess(jobs, on_result, on_failure)

    def _inline_mode(self) -> bool:
        return (
            self.n_workers == 1
            and self.timeout_s is None
            and not self.fault_plan
        )

    # ------------------------------------------------------------------
    # Inline mode
    # ------------------------------------------------------------------
    def _run_inline(self, jobs, on_result, on_failure):
        results: Dict[Tuple, object] = {}
        failures: Dict[Tuple, FailedRun] = {}
        for job in jobs:
            started = self._clock()
            attempt = 0
            while True:
                attempt += 1
                self._emit("job.attempt", key=list(job.key), attempt=attempt)
                try:
                    value = job.fn(*job.args)
                    problem = self.validate(job.key, value) if self.validate else None
                    if problem is not None:
                        raise CorruptResultError(problem)
                    results[job.key] = value
                    self._emit(
                        "job.result", key=list(job.key), attempts=attempt
                    )
                    if on_result:
                        on_result(job.key, value)
                    break
                except Exception as exc:  # noqa: BLE001 - degrade, don't unwind
                    error_type = type(exc).__name__
                    if self.retry.should_retry(attempt, error_type):
                        delay = self.retry.delay_s(job.key, attempt, self.seed)
                        self.retries_scheduled.append((job.key, attempt, delay))
                        self._emit(
                            "job.retry",
                            key=list(job.key),
                            attempt=attempt,
                            delay_s=delay,
                            error=error_type,
                        )
                        self._sleep(delay)
                        continue
                    kind = (
                        "corrupt" if isinstance(exc, CorruptResultError) else "error"
                    )
                    failed = FailedRun(
                        key=job.key,
                        kind=kind,
                        message=f"{error_type}: {exc}",
                        attempts=attempt,
                        elapsed_s=self._clock() - started,
                    )
                    failures[job.key] = failed
                    self._emit("job.failed", **failed.as_dict())
                    if on_failure:
                        on_failure(failed)
                    break
        return results, failures

    # ------------------------------------------------------------------
    # Subprocess mode
    # ------------------------------------------------------------------
    def _run_subprocess(self, jobs, on_result, on_failure):
        ctx = multiprocessing.get_context()
        results: Dict[Tuple, object] = {}
        failures: Dict[Tuple, FailedRun] = {}
        pending: "deque[_Attempt]" = deque(
            _Attempt(job=job, attempt=1, not_before=0.0) for job in jobs
        )
        running: List[_Running] = []

        def settle(entry: _Attempt, kind: str, error_type: str, message: str):
            """Route one failed attempt to a retry or a FailedRun."""
            if self.retry.should_retry(entry.attempt, error_type):
                delay = self.retry.delay_s(entry.job.key, entry.attempt, self.seed)
                self.retries_scheduled.append(
                    (entry.job.key, entry.attempt, delay)
                )
                self._emit(
                    "job.retry",
                    key=list(entry.job.key),
                    attempt=entry.attempt,
                    delay_s=delay,
                    error=error_type,
                )
                pending.append(
                    _Attempt(
                        job=entry.job,
                        attempt=entry.attempt + 1,
                        not_before=self._clock() + delay,
                        first_started=entry.first_started,
                    )
                )
                return
            failed = FailedRun(
                key=entry.job.key,
                kind=kind,
                message=message,
                attempts=entry.attempt,
                elapsed_s=self._clock() - (entry.first_started or 0.0),
            )
            failures[entry.job.key] = failed
            self._emit("job.failed", **failed.as_dict())
            if on_failure:
                on_failure(failed)

        try:
            while pending or running:
                now = self._clock()
                # Launch into free slots, honouring backoff gates.
                launched = True
                while launched and len(running) < self.n_workers and pending:
                    launched = False
                    for _ in range(len(pending)):
                        entry = pending.popleft()
                        if entry.not_before <= now:
                            running.append(self._launch(ctx, entry, now))
                            launched = True
                            break
                        pending.append(entry)
                # Harvest finished / dead / overdue workers.
                progressed = False
                for run in list(running):
                    entry = run.entry
                    if run.conn.poll(0):
                        progressed = True
                        running.remove(run)
                        self._harvest(run, results, failures, settle, on_result)
                    elif not run.process.is_alive():
                        progressed = True
                        running.remove(run)
                        run.process.join()
                        run.conn.close()
                        settle(
                            entry,
                            "crash",
                            "JobCrashedError",
                            "worker died without a result "
                            f"(exit code {run.process.exitcode})",
                        )
                    elif run.deadline is not None and now >= run.deadline:
                        progressed = True
                        running.remove(run)
                        self._kill(run.process)
                        run.conn.close()
                        settle(
                            entry,
                            "timeout",
                            "JobTimeoutError",
                            f"exceeded {self.timeout_s:.3g}s wall-clock timeout",
                        )
                if not progressed:
                    self._sleep(_POLL_INTERVAL_S)
        finally:
            for run in running:
                self._kill(run.process)
        return results, failures

    def _launch(self, ctx, entry: _Attempt, now: float) -> _Running:
        fault = (
            self.fault_plan.fault_for(entry.job.key, entry.attempt)
            if self.fault_plan
            else None
        )
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, entry.job.fn, entry.job.args, fault),
            daemon=True,
        )
        if entry.first_started is None:
            entry.first_started = now
        self._emit("job.attempt", key=list(entry.job.key), attempt=entry.attempt)
        process.start()
        child_conn.close()
        deadline = None if self.timeout_s is None else now + self.timeout_s
        return _Running(
            entry=entry,
            process=process,
            conn=parent_conn,
            started=now,
            deadline=deadline,
        )

    def _harvest(self, run: _Running, results, failures, settle, on_result):
        entry = run.entry
        try:
            status, payload = run.conn.recv()
        except (EOFError, OSError):
            # The pipe hit EOF: the worker died before sending anything.
            status, payload = None, None
        run.process.join()
        run.conn.close()
        if status == "ok":
            problem = (
                self.validate(entry.job.key, payload) if self.validate else None
            )
            if problem is not None:
                settle(entry, "corrupt", "CorruptResultError", problem)
                return
            results[entry.job.key] = payload
            self._emit(
                "job.result", key=list(entry.job.key), attempts=entry.attempt
            )
            if on_result:
                on_result(entry.job.key, payload)
        elif status == "error":
            error_type, message, _tb = payload
            settle(entry, "error", error_type, f"{error_type}: {message}")
        else:
            settle(
                entry,
                "crash",
                "JobCrashedError",
                "worker died without a result "
                f"(exit code {run.process.exitcode})",
            )

    @staticmethod
    def _kill(process) -> None:
        if not process.is_alive():
            process.join()
            return
        process.terminate()
        process.join(_TERM_GRACE_S)
        if process.is_alive():
            process.kill()
            process.join()


# ----------------------------------------------------------------------
def run_with_retry(
    fn: Callable,
    args: Tuple = (),
    *,
    key: Tuple = ("job",),
    retry: Optional[RetryPolicy] = None,
    seed: int = 0,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run one in-process call under the retry policy; raise on final failure.

    The single-job convenience wrapper for callers (benchmarks, examples)
    that want bounded retries without the full supervisor loop.
    """
    supervisor = JobSupervisor(retry=retry, seed=seed, sleep=sleep)
    results, failures = supervisor.run([Job(key=key, fn=fn, args=args)])
    if key in failures:
        raise failures[key].to_error()
    return results[key]
