"""Tests for cache replacement policies."""

import pytest

from repro.cache.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.errors import ConfigError


class TestLRU:
    def test_untouched_way_is_victim(self):
        policy = LRUPolicy(4)
        for way in (1, 2, 3):
            policy.touch(way)
        assert policy.victim([True] * 4) == 0

    def test_oldest_touch_is_victim(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3, 1, 0):
            policy.touch(way)
        assert policy.victim([True] * 4) == 2

    def test_reset_makes_way_oldest(self):
        policy = LRUPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.reset(1)
        assert policy.victim([True, True]) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(8, seed=42)
        b = RandomPolicy(8, seed=42)
        assert [a.victim([True] * 8) for _ in range(20)] == [
            b.victim([True] * 8) for _ in range(20)
        ]

    def test_victims_in_range(self):
        policy = RandomPolicy(4, seed=1)
        assert all(0 <= policy.victim([True] * 4) < 4 for _ in range(50))


class TestTreePLRU:
    def test_victim_avoids_recent_touch(self):
        policy = TreePLRUPolicy(4)
        policy.touch(0)
        assert policy.victim([True] * 4) != 0

    def test_round_robin_like_coverage(self):
        """Touching the victim each time must cycle through all ways."""
        policy = TreePLRUPolicy(8)
        seen = set()
        for _ in range(16):
            victim = policy.victim([True] * 8)
            seen.add(victim)
            policy.touch(victim)
        assert seen == set(range(8))

    def test_non_power_of_two_ways(self):
        policy = TreePLRUPolicy(6)
        for _ in range(12):
            victim = policy.victim([True] * 6)
            assert 0 <= victim < 6
            policy.touch(victim)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUPolicy), ("random", RandomPolicy), ("plru", TreePLRUPolicy)],
    )
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 4), LRUPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("fifo", 4)

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigError):
            LRUPolicy(0)
