"""Tests for the SPEC2006 benchmark profiles."""

import pytest

from repro.errors import ConfigError
from repro.workloads.spec2006 import (
    BENCHMARKS,
    benchmark_names,
    get_benchmark,
)

#: Paper Table VII MPKIs.
PAPER_MPKI = {
    "bwaves": 11.69,
    "GemsFDTD": 26.56,
    "hmmer": 2.84,
    "lbm": 55.15,
    "leslie3d": 10.46,
    "libquantum": 52.07,
    "mcf": 73.42,
    "milc": 34.40,
    "zeusmp": 7.64,
}


class TestCatalogue:
    def test_all_nine_benchmarks_present(self):
        assert set(BENCHMARKS) == set(PAPER_MPKI)

    @pytest.mark.parametrize("name,mpki", sorted(PAPER_MPKI.items()))
    def test_paper_mpki_values(self, name, mpki):
        profile = get_benchmark(name)
        assert profile.paper_mpki == mpki
        assert profile.traffic.mpki == mpki

    def test_bwave_alias(self):
        assert get_benchmark("bwave").name == "bwaves"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_benchmark("gcc")

    def test_names_sorted_case_insensitively(self):
        names = benchmark_names()
        assert names == sorted(names, key=str.lower)


class TestQualitativeShapes:
    def test_libquantum_is_streaming_heavy(self):
        lib = get_benchmark("libquantum").traffic
        others = [get_benchmark(n).traffic for n in PAPER_MPKI if n != "libquantum"]
        assert all(lib.streaming_fraction >= o.streaming_fraction for o in others)

    def test_hmmer_has_smallest_footprint(self):
        hmmer = get_benchmark("hmmer").traffic
        others = [get_benchmark(n).traffic for n in PAPER_MPKI if n != "hmmer"]
        assert all(hmmer.footprint_regions <= o.footprint_regions for o in others)

    def test_mcf_is_read_dominated(self):
        mcf = get_benchmark("mcf").traffic
        assert mcf.writeback_per_miss <= min(
            get_benchmark(n).traffic.writeback_per_miss for n in PAPER_MPKI
        )

    def test_gems_hot_share_matches_table3(self):
        """Table III: ~77% of GemsFDTD writes land in the shortest-interval
        tier and ~93% under the 10^8 ns cutoff; our hot tier plus part of
        the warm tier covers that range."""
        gems = get_benchmark("GemsFDTD").traffic
        assert 0.74 <= gems.hot_write_share <= 0.82
        assert gems.hot_write_share + gems.warm_write_share >= 0.90

    def test_lbm_write_heavy(self):
        assert get_benchmark("lbm").traffic.writeback_per_miss >= max(
            get_benchmark(n).traffic.writeback_per_miss
            for n in PAPER_MPKI if n != "lbm"
        )


class TestFootprintScaling:
    def test_scale_preserves_tier_proportions(self):
        gems = get_benchmark("GemsFDTD")
        scaled = gems.scaled_footprint(0.25)
        ratio = scaled.traffic.footprint_regions / gems.traffic.footprint_regions
        assert ratio == pytest.approx(0.25, rel=0.05)
        hot_ratio = scaled.traffic.hot_regions / gems.traffic.hot_regions
        assert hot_ratio == pytest.approx(0.25, rel=0.1)

    def test_scale_has_floor(self):
        tiny = get_benchmark("hmmer").scaled_footprint(0.0001)
        assert tiny.traffic.hot_regions >= 4
        assert tiny.traffic.footprint_regions >= 64

    def test_scale_one_is_identity_shape(self):
        gems = get_benchmark("GemsFDTD")
        assert gems.scaled_footprint(1.0).traffic.footprint_regions == (
            gems.traffic.footprint_regions
        )

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            get_benchmark("milc").scaled_footprint(0.0)

    def test_scaled_profile_still_valid(self):
        # The RegionProfile invariants must hold after extreme scaling.
        for name in PAPER_MPKI:
            get_benchmark(name).scaled_footprint(1 / 64)
