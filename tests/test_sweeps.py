"""Tests for the parameter-sweep API."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.sweeps import (
    coverage_sweep,
    entry_size_sweep,
    hot_threshold_sweep,
    sweep_table,
)


@pytest.fixture(scope="module")
def threshold_points():
    return hot_threshold_sweep(
        SystemConfig.tiny(), ["hmmer"], thresholds=(8, 32)
    )


class TestThresholdSweep:
    def test_one_point_per_threshold(self, threshold_points):
        assert [p.label for p in threshold_points] == [
            "hot_threshold=8", "hot_threshold=32",
        ]

    def test_configs_carry_threshold(self, threshold_points):
        assert threshold_points[0].config.rrm.hot_threshold == 8
        assert threshold_points[1].config.rrm.hot_threshold == 32

    def test_metrics_populated(self, threshold_points):
        for point in threshold_points:
            assert point.speedup > 0
            assert point.lifetime_years > 0
            assert 0 <= point.fast_write_fraction <= 1

    def test_shared_baseline(self, threshold_points):
        a, b = threshold_points
        assert a.baselines["hmmer"] is b.baselines["hmmer"]

    def test_table_rows(self, threshold_points):
        rows = sweep_table(threshold_points)
        assert len(rows) == 2
        assert rows[0][0] == "hot_threshold=8"


class TestOtherSweeps:
    def test_coverage_sweep_varies_sets(self):
        base = SystemConfig.tiny()
        points = coverage_sweep(base, ["hmmer"], rates=(2, 4))
        sets = [p.config.rrm.n_sets for p in points]
        assert sets[1] == 2 * sets[0]

    def test_entry_size_sweep_preserves_coverage(self):
        base = SystemConfig.tiny()
        points = entry_size_sweep(base, ["hmmer"], region_sizes=(2048, 4096))
        coverages = {p.config.rrm.coverage_bytes for p in points}
        assert len(coverages) == 1

    def test_empty_workloads_rejected(self):
        with pytest.raises(ConfigError):
            hot_threshold_sweep(SystemConfig.tiny(), [], thresholds=(8,))

    def test_progress_callback(self):
        calls = []
        hot_threshold_sweep(
            SystemConfig.tiny(), ["hmmer"], thresholds=(8,),
            progress=lambda label, workload: calls.append((label, workload)),
        )
        assert calls == [("hot_threshold=8", "hmmer")]
