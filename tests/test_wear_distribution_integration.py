"""Integration: per-block wear tracking + distribution statistics.

Runs a system with per-block wear tracking enabled and checks that the
measured wear distribution shows the paper's skew (a small set of blocks
carries most of the demand wear) and that the distribution utilities
compose with the tracker's output.
"""

import pytest

from repro.analysis.distributions import (
    gini_coefficient,
    summarize,
    wear_histogram,
)
from repro.sim.config import SystemConfig
from repro.sim.schemes import Scheme
from repro.sim.system import System


@pytest.fixture(scope="module")
def tracked_system():
    system = System(
        SystemConfig.tiny(), "GemsFDTD", Scheme.STATIC_7,
        track_wear_per_block=True,
    )
    system.run()
    return system


class TestWearDistribution:
    def test_per_block_counts_match_total(self, tracked_system):
        tracker = tracked_system.wear
        assert sum(tracker.per_block.values()) == (
            tracker.breakdown.demand_writes + tracker.breakdown.rrm_refresh_writes
        )

    def test_demand_wear_is_skewed(self, tracked_system):
        """The write skew that motivates the RRM shows up as a high Gini
        coefficient over touched blocks."""
        wear = list(tracked_system.wear.per_block.values())
        assert len(wear) > 100
        assert gini_coefficient(wear) > 0.4

    def test_summary_statistics_consistent(self, tracked_system):
        summary = summarize(tracked_system.wear.per_block.values())
        assert summary.minimum >= 1
        assert summary.maximum >= summary.p99 >= summary.p50
        assert summary.leveling_efficiency < 0.5  # unlevelled: hot-spot bound

    def test_histogram_covers_all_blocks(self, tracked_system):
        per_block = tracked_system.wear.per_block
        hist = wear_histogram(per_block, (1, 10, 100, 1000))
        assert sum(hist.values()) == len(per_block)

    def test_max_block_wear_accessor(self, tracked_system):
        tracker = tracked_system.wear
        assert tracker.max_block_wear() == max(tracker.per_block.values())
