"""Tests for the three-level cache hierarchy wiring."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.errors import ConfigError


@pytest.fixture
def tiny_hierarchy():
    """2 cores; 4-set caches so evictions happen quickly."""
    return CacheHierarchy(
        HierarchyConfig(
            n_cores=2,
            l1=CacheConfig(size_bytes=64 * 8, n_ways=2, hit_latency_cycles=2, name="L1D"),
            l2=CacheConfig(size_bytes=64 * 16, n_ways=4, hit_latency_cycles=12, name="L2"),
            llc=CacheConfig(size_bytes=64 * 32, n_ways=4, hit_latency_cycles=35, name="LLC"),
        )
    )


class TestLookupPath:
    def test_cold_miss_reaches_memory(self, tiny_hierarchy):
        traffic = tiny_hierarchy.access(0, block=100, is_write=False)
        assert traffic.memory_read_block == 100
        assert traffic.latency_cycles == 2 + 12 + 35

    def test_l1_hit_costs_l1_only(self, tiny_hierarchy):
        tiny_hierarchy.access(0, 100, is_write=False)
        traffic = tiny_hierarchy.access(0, 100, is_write=False)
        assert traffic.memory_read_block is None
        assert traffic.latency_cycles == 2

    def test_llc_hit_after_other_core_fetch(self, tiny_hierarchy):
        tiny_hierarchy.access(0, 100, is_write=False)
        traffic = tiny_hierarchy.access(1, 100, is_write=False)
        assert traffic.memory_read_block is None
        assert traffic.latency_cycles == 2 + 12 + 35

    def test_invalid_core_rejected(self, tiny_hierarchy):
        with pytest.raises(ConfigError):
            tiny_hierarchy.access(5, 0, is_write=False)


class TestWritebackChain:
    def _thrash_core(self, hierarchy, core, blocks, write=True):
        for block in blocks:
            hierarchy.access(core, block, is_write=write)

    def test_dirty_l1_victims_reach_l2(self, tiny_hierarchy):
        l1 = tiny_hierarchy.l1[0]
        set_stride = l1.config.n_sets
        blocks = [i * set_stride for i in range(l1.config.n_ways + 1)]
        self._thrash_core(tiny_hierarchy, 0, blocks)
        # The evicted dirty line now lives dirty in L2.
        assert tiny_hierarchy.l2[0].is_dirty(blocks[0])

    def test_llc_write_registration_emitted(self, tiny_hierarchy):
        """Thrash enough dirty lines through L1 and L2 that the LLC sees
        writes — each must carry a registration tuple."""
        l2 = tiny_hierarchy.l2[0]
        stride = l2.config.n_sets
        blocks = [i * stride for i in range(64)]
        registrations = []
        for block in blocks:
            traffic = tiny_hierarchy.access(0, block, is_write=True)
            registrations.extend(traffic.llc_writes)
        assert registrations, "no LLC writes observed"
        for block, was_dirty in registrations:
            assert isinstance(was_dirty, bool)

    def test_memory_writes_eventually_emitted(self, tiny_hierarchy):
        llc_blocks = tiny_hierarchy.llc.config.n_sets * tiny_hierarchy.llc.config.n_ways
        writes = []
        for block in range(llc_blocks * 4):
            traffic = tiny_hierarchy.access(0, block, is_write=True)
            writes.extend(traffic.memory_write_blocks)
        assert writes, "dirty LLC victims never reached memory"


class TestDrain:
    def test_drain_flushes_all_dirty_state(self, tiny_hierarchy):
        for block in (1, 2, 3):
            tiny_hierarchy.access(0, block, is_write=True)
        written = tiny_hierarchy.drain_dirty()
        assert sorted(written) == [1, 2, 3]
        assert tiny_hierarchy.drain_dirty() == []

    def test_clean_data_not_written(self, tiny_hierarchy):
        tiny_hierarchy.access(0, 9, is_write=False)
        assert tiny_hierarchy.drain_dirty() == []


class TestMPKI:
    def test_mpki_counts_llc_misses(self, tiny_hierarchy):
        for block in range(10):
            tiny_hierarchy.access(0, block, is_write=False)
        assert tiny_hierarchy.mpki([1000, 0]) == pytest.approx(10.0)

    def test_zero_instructions(self, tiny_hierarchy):
        assert tiny_hierarchy.mpki([0, 0]) == 0.0


class TestScaledConfig:
    def test_scaled_shrinks_caches(self):
        cfg = HierarchyConfig.scaled(64)
        assert cfg.l1.size_bytes < 32 * 1024
        assert cfg.llc.size_bytes < 6 << 20

    def test_paper_defaults(self):
        cfg = HierarchyConfig()
        assert cfg.l1.n_sets == 128
        assert cfg.l2.n_sets == 512
        assert cfg.llc.n_sets == 4096

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            HierarchyConfig.scaled(0)
