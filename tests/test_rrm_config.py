"""Tests for RRM configuration and the hardware-overhead model."""

import pytest

from repro.core.config import RRMConfig
from repro.errors import ConfigError
from repro.utils.units import parse_size


class TestDefaults:
    def test_paper_geometry(self):
        cfg = RRMConfig()
        assert cfg.n_sets == 256
        assert cfg.n_ways == 24
        assert cfg.region_bytes == 4096
        assert cfg.hot_threshold == 16
        assert cfg.n_entries == 6144

    def test_paper_coverage_is_24mb(self):
        assert RRMConfig().coverage_bytes == parse_size("24MB")

    def test_paper_storage_is_96kb(self):
        """Table IV: 96KB of storage, 1.56% of the 6MB LLC."""
        cfg = RRMConfig()
        assert cfg.storage_bytes == parse_size("96KB")
        pct = 100 * cfg.storage_bytes / parse_size("6MB")
        assert pct == pytest.approx(1.56, abs=0.01)

    def test_entry_format_bits(self):
        """Section IV-C: 1 valid + 52 addr + 1 hot + 6 counter + 64 vector
        + 4 decay = 128 bits."""
        cfg = RRMConfig()
        assert cfg.tag_bits == 52
        assert cfg.counter_bits == 6
        assert cfg.decay_counter_bits == 4
        assert cfg.blocks_per_region == 64
        assert cfg.entry_bits == 128


class TestGeometryHelpers:
    def test_region_of_block(self):
        cfg = RRMConfig()
        assert cfg.region_of_block(0) == 0
        assert cfg.region_of_block(63) == 0
        assert cfg.region_of_block(64) == 1

    def test_block_offset(self):
        cfg = RRMConfig()
        assert cfg.block_offset(64 * 5 + 17) == 17

    def test_set_index_wraps(self):
        cfg = RRMConfig(n_sets=4, n_ways=2)
        assert cfg.set_index(0) == 0
        assert cfg.set_index(5) == 1
        assert cfg.set_index(4 * 7) == 0


class TestCoverageVariants:
    """Paper Table VIII."""

    @pytest.mark.parametrize(
        "rate,sets,storage",
        [(2, 128, "48KB"), (4, 256, "96KB"), (8, 512, "192KB"), (16, 1024, "384KB")],
    )
    def test_table8_rows(self, rate, sets, storage):
        cfg = RRMConfig().with_coverage_rate(parse_size("6MB"), rate)
        assert cfg.n_sets == sets
        assert cfg.storage_bytes == parse_size(storage)

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ConfigError):
            RRMConfig().with_coverage_rate(parse_size("6MB"), 3)


class TestRegionSizeVariants:
    """Paper Section VI-F: vary entry coverage size at constant coverage."""

    @pytest.mark.parametrize("region,sets", [(2048, 512), (4096, 256), (8192, 128), (16384, 64)])
    def test_constant_total_coverage(self, region, sets):
        cfg = RRMConfig().with_region_bytes(region)
        assert cfg.n_sets == sets
        assert cfg.coverage_bytes == RRMConfig().coverage_bytes

    def test_vector_width_follows_region(self):
        assert RRMConfig().with_region_bytes(2048).blocks_per_region == 32
        assert RRMConfig().with_region_bytes(16384).blocks_per_region == 256

    def test_same_region_returns_self(self):
        cfg = RRMConfig()
        assert cfg.with_region_bytes(4096) is cfg


class TestThresholdVariants:
    @pytest.mark.parametrize("threshold", [8, 16, 32, 64])
    def test_paper_sweep_values(self, threshold):
        cfg = RRMConfig().with_hot_threshold(threshold)
        assert cfg.hot_threshold == threshold
        # 6-bit counter covers every paper threshold value.
        assert cfg.counter_bits == 6 or threshold > 63

    def test_counter_widens_for_large_threshold(self):
        assert RRMConfig(hot_threshold=100).counter_bits == 7


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sets": 3},
            {"n_ways": 0},
            {"region_bytes": 100},
            {"region_bytes": 3000},
            {"hot_threshold": 0},
            {"decay_ticks_per_interval": 0},
            {"fast_n_sets": 7, "slow_n_sets": 3},
            {"refresh_slack_fraction": 0.0},
            {"refresh_slack_fraction": 1.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            RRMConfig(**kwargs)

    def test_storage_summary_mentions_percentage(self):
        text = RRMConfig().storage_summary(parse_size("6MB"))
        assert "96KB" in text and "1.56%" in text
