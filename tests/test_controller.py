"""Tests for the memory controller scheduler."""

import pytest

from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, RequestType


def read(block, **kw):
    return MemRequest(rtype=RequestType.READ, block=block, **kw)


def write(block, n_sets=7, **kw):
    return MemRequest(rtype=RequestType.WRITE, block=block, n_sets=n_sets, **kw)


def refresh(block, n_sets=3, **kw):
    return MemRequest(rtype=RequestType.RRM_REFRESH, block=block, n_sets=n_sets, **kw)


class TestBasicService:
    def test_single_read_completes(self, sim, controller):
        done = []
        r = read(0)
        r.on_complete = done.append
        controller.enqueue(r)
        sim.run()
        assert len(done) == 1
        assert controller.stats.reads_completed == 1
        assert r.finish_time_ns == pytest.approx(done[0])

    def test_single_write_uses_mode_latency(self, sim, controller):
        w = write(0, n_sets=7)
        controller.enqueue(w)
        sim.run()
        assert w.finish_time_ns - w.start_time_ns == pytest.approx(1150.0)
        assert controller.stats.writes_completed == 1
        assert controller.stats.slow_writes == 1

    def test_fast_write_counted(self, sim, controller):
        controller.enqueue(write(0, n_sets=3))
        sim.run()
        assert controller.stats.fast_writes == 1

    def test_reads_to_different_banks_overlap(self, sim, controller):
        # Blocks 0 and 2 are on channel 0, different... same bank? Use the
        # address map to find two blocks on different banks of channel 0.
        amap = controller.address_map
        blocks_per_row = amap.blocks_per_row
        b0 = 0
        b1 = blocks_per_row * amap.n_channels  # bank 1, channel 0
        assert amap.decode_block(b0).bank != amap.decode_block(b1).bank
        r0, r1 = read(b0), read(b1)
        controller.enqueue(r0)
        controller.enqueue(r1)
        sim.run()
        assert r0.start_time_ns == r1.start_time_ns == 0.0

    def test_same_bank_reads_serialize(self, sim, controller):
        r0, r1 = read(0), read(0)
        controller.enqueue(r0)
        controller.enqueue(r1)
        sim.run()
        assert r1.start_time_ns >= r0.finish_time_ns

    def test_row_hit_tracked(self, sim, controller):
        controller.enqueue(read(0))
        controller.enqueue(read(0))
        sim.run()
        assert controller.stats.row_hits == 1
        assert controller.stats.row_misses == 1
        assert controller.stats.row_hit_rate == pytest.approx(0.5)


class TestPriorities:
    def test_refresh_beats_queued_read(self, sim, controller):
        """With the bank busy, a refresh and a read queued: the refresh
        (higher priority) must issue first once the bank frees."""
        blocker = read(0)
        controller.enqueue(blocker)
        r = read(0)
        f = refresh(0)
        controller.enqueue(r)
        controller.enqueue(f)
        sim.run()
        assert f.start_time_ns < r.start_time_ns

    def test_write_waits_for_reads_below_watermark(self, sim, controller):
        blocker = read(0)
        controller.enqueue(blocker)
        w = write(0)
        r = read(0)
        controller.enqueue(w)
        controller.enqueue(r)
        sim.run()
        assert r.start_time_ns < w.start_time_ns

    def test_write_drain_at_high_watermark(self, sim, small_device):
        controller = MemoryController(
            sim, small_device,
            read_queue_capacity=8, write_queue_capacity=4,
            write_drain_high=2, write_drain_low=0,
        )
        # Two writes reach the high watermark -> drain even while a read
        # stream is arriving afterwards.
        w1, w2 = write(0), write(0)
        controller.enqueue(w1)
        controller.enqueue(w2)
        sim.run()
        assert controller.stats.writes_completed == 2


class TestWritePausingIntegration:
    def test_read_cuts_into_inflight_write(self, sim, controller):
        w = write(0, n_sets=7)
        controller.enqueue(w)
        r = read(0)
        sim.schedule_at(40.0, lambda: controller.enqueue(r))
        sim.run()
        # Read starts at the first SET boundary (100ns), not the write end.
        assert r.start_time_ns == pytest.approx(100.0)
        assert w.finish_time_ns > 1150.0  # write pushed back


class TestBackpressure:
    @staticmethod
    def _fill_read_queue(controller, block):
        """Enqueue reads to *block* until its read queue refuses more.

        Returns how many were accepted (issued + queued)."""
        accepted = 0
        while controller.can_accept(RequestType.READ, block):
            controller.enqueue(read(block))
            accepted += 1
        return accepted

    def test_can_accept_reflects_capacity(self, sim, small_device):
        controller = MemoryController(
            sim, small_device, read_queue_capacity=1, write_queue_capacity=1,
        )
        self._fill_read_queue(controller, 0)
        assert not controller.can_accept(RequestType.READ, 0)

    def test_notify_space_fires_after_issue(self, sim, small_device):
        controller = MemoryController(
            sim, small_device, read_queue_capacity=1, write_queue_capacity=1,
        )
        self._fill_read_queue(controller, 0)
        woken = []
        controller.notify_space(RequestType.READ, 0, lambda: woken.append(sim.now))
        sim.run()
        assert woken, "waiter was never woken"

    def test_queues_separate_per_channel(self, sim, small_device):
        controller = MemoryController(
            sim, small_device, read_queue_capacity=1, write_queue_capacity=1,
        )
        self._fill_read_queue(controller, 0)  # channel 0 read queue full
        assert controller.can_accept(RequestType.READ, 1)  # channel 1 free


class TestDeadlines:
    def test_met_deadline_not_counted(self, sim, controller):
        f = refresh(0)
        f.deadline_ns = 1e9
        controller.enqueue(f)
        sim.run()
        assert controller.stats.retention_violations == 0

    def test_missed_deadline_counted(self, sim, controller):
        blocker = write(0, n_sets=7)
        controller.enqueue(blocker)
        f = refresh(0)
        f.deadline_ns = 10.0  # impossible
        controller.enqueue(f)
        sim.run()
        assert controller.stats.retention_violations == 1


class TestIdleness:
    def test_idle_after_drain(self, sim, controller):
        controller.enqueue(read(0))
        controller.enqueue(write(0))
        assert not controller.idle()
        sim.run()
        assert controller.idle()

    def test_latency_accounting(self, sim, controller):
        controller.enqueue(read(0))
        sim.run()
        assert controller.stats.avg_read_latency_ns > 0
