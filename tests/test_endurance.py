"""Tests for wear tracking and the lifetime model."""

import pytest

from repro.errors import ConfigError
from repro.pcm.endurance import EnduranceModel, WearTracker
from repro.utils.units import S_PER_YEAR


class TestWearTracker:
    def test_demand_writes_counted(self):
        tracker = WearTracker()
        for block in (1, 2, 1):
            tracker.record_demand_write(block)
        assert tracker.breakdown.demand_writes == 3
        assert tracker.per_block[1] == 2

    def test_rrm_refresh_counted_separately(self):
        tracker = WearTracker()
        tracker.record_rrm_refresh(5)
        assert tracker.breakdown.rrm_refresh_writes == 1
        assert tracker.breakdown.demand_writes == 0

    def test_global_refresh_rounds(self):
        tracker = WearTracker()
        tracker.record_global_refresh_round(n_blocks=1000, rounds=2.5)
        assert tracker.breakdown.global_refresh_writes == 2500
        assert tracker.uniform_wear == 2.5

    def test_total_combines_sources(self):
        tracker = WearTracker()
        tracker.record_demand_write(0)
        tracker.record_rrm_refresh(0)
        tracker.record_global_refresh_round(10, 1.0)
        assert tracker.breakdown.total == 12
        assert tracker.breakdown.refresh_writes == 11

    def test_max_block_wear_includes_uniform(self):
        tracker = WearTracker()
        tracker.record_demand_write(7)
        tracker.record_demand_write(7)
        tracker.record_global_refresh_round(100, 3.0)
        assert tracker.max_block_wear() == pytest.approx(5.0)

    def test_per_block_tracking_can_be_disabled(self):
        tracker = WearTracker(track_per_block=False)
        tracker.record_demand_write(1)
        assert tracker.breakdown.demand_writes == 1
        assert not tracker.per_block

    def test_invalid_global_refresh(self):
        tracker = WearTracker()
        with pytest.raises(ConfigError):
            tracker.record_global_refresh_round(0, 1.0)
        with pytest.raises(ValueError):
            tracker.record_global_refresh_round(10, -1.0)


class TestLifetime:
    def test_paper_static3_lifetime(self):
        """The paper's headline: global refresh every 2s on 8GB at 5e6
        endurance with 95% levelling gives ~0.3 years."""
        model = EnduranceModel()
        n_blocks = (8 << 30) // 64
        refresh_rate = n_blocks / 2.0  # block writes per second
        years = model.lifetime_years(
            total_block_writes=refresh_rate * 5.0, window_seconds=5.0, n_blocks=n_blocks
        )
        assert years == pytest.approx(5e6 * 0.95 * 2.0 / S_PER_YEAR, rel=1e-6)
        assert years == pytest.approx(0.301, abs=0.005)

    def test_lifetime_inverse_in_write_rate(self):
        model = EnduranceModel()
        slow = model.lifetime_years(1000, 1.0, 10_000)
        fast = model.lifetime_years(2000, 1.0, 10_000)
        assert slow == pytest.approx(2 * fast)

    def test_zero_writes_is_infinite(self):
        model = EnduranceModel()
        assert model.lifetime_years(0, 1.0, 100) == float("inf")

    def test_levelling_efficiency_scales_lifetime(self):
        ideal = EnduranceModel(wear_leveling_efficiency=1.0)
        real = EnduranceModel(wear_leveling_efficiency=0.95)
        assert real.lifetime_years(100, 1.0, 100) == pytest.approx(
            0.95 * ideal.lifetime_years(100, 1.0, 100)
        )

    def test_lifetime_from_wear_breakdown(self):
        model = EnduranceModel()
        tracker = WearTracker()
        for _ in range(100):
            tracker.record_demand_write(0)
        direct = model.lifetime_years(100, 1.0, 1000)
        via_wear = model.lifetime_years_from_wear(tracker.breakdown, 1.0, 1000)
        assert via_wear == pytest.approx(direct)

    def test_extra_writes_added(self):
        model = EnduranceModel()
        tracker = WearTracker()
        tracker.record_demand_write(0)
        with_extra = model.lifetime_years_from_wear(
            tracker.breakdown, 1.0, 1000, extra_writes=1.0
        )
        without = model.lifetime_years_from_wear(tracker.breakdown, 1.0, 1000)
        assert with_extra == pytest.approx(without / 2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"endurance_writes": 0},
            {"wear_leveling_efficiency": 0.0},
            {"wear_leveling_efficiency": 1.5},
        ],
    )
    def test_invalid_model_params(self, kwargs):
        with pytest.raises(ConfigError):
            EnduranceModel(**kwargs)

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            EnduranceModel().lifetime_years(10, 0.0, 100)
