"""Tests for repro.utils.units."""

import pytest

from repro.errors import ConfigError
from repro.utils.units import (
    NS_PER_S,
    S_PER_YEAR,
    format_bytes,
    format_seconds,
    ns_to_s,
    parse_size,
    s_to_ns,
)


class TestParseSize:
    def test_plain_integer_passthrough(self):
        assert parse_size(512) == 512

    def test_bare_number_string(self):
        assert parse_size("64") == 64

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4KB", 4096),
            ("1MB", 1 << 20),
            ("8GB", 8 << 30),
            ("2TB", 2 << 40),
            ("96KB", 96 * 1024),
            ("6MB", 6 << 20),
        ],
    )
    def test_binary_suffixes(self, text, expected):
        assert parse_size(text) == expected

    def test_case_and_whitespace_insensitive(self):
        assert parse_size(" 4 kb ") == 4096

    def test_fractional_sizes_resolve_to_bytes(self):
        assert parse_size("0.5KB") == 512

    def test_non_integral_byte_count_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("0.3B")

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_plain_b_suffix(self):
        assert parse_size("128B") == 128


class TestFormatBytes:
    def test_exact_suffix_chosen(self):
        assert format_bytes(98304) == "96KB"
        assert format_bytes(6 << 20) == "6MB"
        assert format_bytes(8 << 30) == "8GB"

    def test_small_value(self):
        assert format_bytes(37) == "37B"

    def test_inexact_value_uses_decimal(self):
        assert format_bytes((1 << 20) + 1).endswith("MB")

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            format_bytes(-1)

    def test_roundtrip_with_parse(self):
        for size in ("4KB", "96KB", "6MB", "8GB"):
            assert format_bytes(parse_size(size)) == size


class TestTimeConversions:
    def test_ns_to_s(self):
        assert ns_to_s(1_000_000_000.0) == 1.0

    def test_s_to_ns(self):
        assert s_to_ns(2.0) == 2 * NS_PER_S

    def test_roundtrip(self):
        assert ns_to_s(s_to_ns(0.125)) == pytest.approx(0.125)

    def test_year_constant(self):
        # Julian year.
        assert S_PER_YEAR == pytest.approx(31_557_600)


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (2.0, "2s"),
            (0.002, "2ms"),
            (2e-6, "2us"),
            (5e-9, "5ns"),
        ],
    )
    def test_unit_selection(self, seconds, expected):
        assert format_seconds(seconds) == expected

    def test_negative(self):
        assert format_seconds(-2.0) == "-2s"
