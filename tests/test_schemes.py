"""Tests for scheme definitions (paper Table VI)."""

import pytest

from repro.errors import ConfigError
from repro.sim.schemes import Scheme, all_schemes, scheme_from_name, static_schemes


class TestSchemeProperties:
    def test_six_schemes(self):
        assert len(all_schemes()) == 6

    def test_static_order_slow_to_fast(self):
        statics = static_schemes()
        assert [s.static_n_sets for s in statics] == [7, 6, 5, 4, 3]

    def test_rrm_last(self):
        assert all_schemes()[-1] is Scheme.RRM

    def test_rrm_has_no_static_mode(self):
        with pytest.raises(ConfigError):
            Scheme.RRM.static_n_sets

    def test_global_refresh_modes(self):
        """Table VI: statics refresh with their own mode; RRM refreshes
        globally with 7-SETs."""
        assert Scheme.STATIC_3.global_refresh_n_sets == 3
        assert Scheme.STATIC_7.global_refresh_n_sets == 7
        assert Scheme.RRM.global_refresh_n_sets == 7

    def test_str_is_paper_name(self):
        assert str(Scheme.STATIC_5) == "Static-5-SETs"
        assert str(Scheme.RRM) == "RRM"


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("rrm", Scheme.RRM),
            ("RRM", Scheme.RRM),
            ("Static-3-SETs", Scheme.STATIC_3),
            ("static-7", Scheme.STATIC_7),
            ("static4", Scheme.STATIC_4),
            ("s5", Scheme.STATIC_5),
        ],
    )
    def test_accepted_spellings(self, text, expected):
        assert scheme_from_name(text) is expected

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            scheme_from_name("static-8")
