"""Tests for the RRM entry state machine."""

import pytest

from repro.core.entry import RRMEntry
from repro.errors import SimulationError


@pytest.fixture
def entry():
    return RRMEntry(region=7, blocks_per_region=64)


class TestVector:
    def test_starts_empty(self, entry):
        assert entry.short_retention_vector == 0
        assert entry.short_retention_count == 0

    def test_set_and_query_bits(self, entry):
        entry.set_vector_bit(0)
        entry.set_vector_bit(63)
        assert entry.vector_bit(0) and entry.vector_bit(63)
        assert not entry.vector_bit(32)
        assert entry.short_retention_count == 2

    def test_set_is_idempotent(self, entry):
        entry.set_vector_bit(5)
        entry.set_vector_bit(5)
        assert entry.short_retention_count == 1

    def test_offsets_iterate_ascending(self, entry):
        for offset in (40, 3, 17):
            entry.set_vector_bit(offset)
        assert list(entry.short_retention_offsets()) == [3, 17, 40]

    def test_clear_vector(self, entry):
        entry.set_vector_bit(9)
        entry.clear_vector()
        assert entry.short_retention_count == 0

    def test_out_of_range_offset_rejected(self, entry):
        with pytest.raises(SimulationError):
            entry.set_vector_bit(64)
        with pytest.raises(SimulationError):
            entry.vector_bit(-1)


class TestHotPromotion:
    def test_promotes_exactly_at_threshold(self, entry):
        for i in range(15):
            assert entry.record_dirty_write(16) is False
        assert not entry.hot
        assert entry.record_dirty_write(16) is True
        assert entry.hot
        assert entry.dirty_write_counter == 16

    def test_counter_saturates_at_threshold(self, entry):
        for _ in range(40):
            entry.record_dirty_write(16)
        assert entry.dirty_write_counter == 16

    def test_no_double_promotion(self, entry):
        for _ in range(16):
            entry.record_dirty_write(16)
        assert entry.record_dirty_write(16) is False


class TestDecayCounter:
    def test_wraps_after_full_cycle(self, entry):
        wraps = [entry.tick_decay(16) for _ in range(16)]
        assert wraps == [False] * 15 + [True]
        assert entry.decay_counter == 0

    def test_shorter_cycle(self, entry):
        assert entry.tick_decay(2) is False
        assert entry.tick_decay(2) is True


class TestHotnessReevaluation:
    def test_saturated_counter_stays_hot_and_halves(self, entry):
        for _ in range(16):
            entry.record_dirty_write(16)
        assert entry.reevaluate_hotness(16) is True
        assert entry.dirty_write_counter == 8
        assert entry.hot

    def test_unsaturated_counter_demotes(self, entry):
        for _ in range(16):
            entry.record_dirty_write(16)
        entry.reevaluate_hotness(16)  # halve to 8
        assert entry.reevaluate_hotness(16) is False

    def test_reevaluate_cold_entry_is_error(self, entry):
        with pytest.raises(SimulationError):
            entry.reevaluate_hotness(16)

    def test_renewal_cycle_with_continued_traffic(self, entry):
        """A region that keeps writing stays hot across decay intervals."""
        for _ in range(16):
            entry.record_dirty_write(16)
        for _ in range(5):
            assert entry.reevaluate_hotness(16) is True
            for _ in range(8):  # enough traffic to refill from 8 to 16
                entry.record_dirty_write(16)


class TestDemotion:
    def test_demote_returns_vector_and_clears(self, entry):
        for _ in range(16):
            entry.record_dirty_write(16)
        entry.set_vector_bit(4)
        entry.set_vector_bit(9)
        vector = entry.demote()
        assert vector == (1 << 4) | (1 << 9)
        assert not entry.hot
        assert entry.short_retention_vector == 0

    def test_demote_keeps_counter_value(self, entry):
        """Paper Section IV-G resets hot and the vector but not the
        dirty_write_counter."""
        for _ in range(16):
            entry.record_dirty_write(16)
        entry.reevaluate_hotness(16)
        counter = entry.dirty_write_counter
        entry.demote()
        assert entry.dirty_write_counter == counter
