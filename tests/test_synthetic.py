"""Tests for the region-tier synthetic traffic generator."""

import itertools
from collections import Counter

import pytest

from repro.errors import ConfigError
from repro.workloads.events import EV_READ, EV_REGISTER, EV_WRITE
from repro.workloads.synthetic import (
    BLOCKS_PER_REGION,
    RegionProfile,
    RegionTrafficGenerator,
)


@pytest.fixture
def profile():
    return RegionProfile(
        mpki=25.0,
        writeback_per_miss=0.5,
        footprint_regions=512,
        hot_regions=16,
        warm_regions=64,
    )


def take(generator, n):
    return list(itertools.islice(iter(generator), n))


class TestDeterminism:
    def test_same_seed_same_stream(self, profile):
        a = take(RegionTrafficGenerator(profile, seed=7), 5000)
        b = take(RegionTrafficGenerator(profile, seed=7), 5000)
        assert a == b

    def test_different_seed_different_stream(self, profile):
        a = take(RegionTrafficGenerator(profile, seed=7), 5000)
        b = take(RegionTrafficGenerator(profile, seed=8), 5000)
        assert a != b

    def test_different_base_block_offsets_addresses(self, profile):
        a = take(RegionTrafficGenerator(profile, base_block=0, seed=7), 100)
        b = take(RegionTrafficGenerator(profile, base_block=1 << 20, seed=7), 100)
        for (_, _, block_a, _), (_, _, block_b, _) in zip(a, b):
            assert block_b >= 1 << 20
            assert block_a < 1 << 20


class TestStreamStructure:
    def test_every_write_preceded_by_registration(self, profile):
        events = take(RegionTrafficGenerator(profile, seed=1), 20000)
        for i, (kind, _, block, _) in enumerate(events):
            if kind == EV_WRITE:
                prev_kind, _, prev_block, _ = events[i - 1]
                assert prev_kind == EV_REGISTER
                assert prev_block == block

    def test_gap_only_on_reads(self, profile):
        events = take(RegionTrafficGenerator(profile, seed=1), 20000)
        for kind, gap, _, _ in events:
            if kind != EV_READ:
                assert gap == 0
            else:
                assert gap >= 1

    def test_mean_gap_tracks_mpki(self):
        profile = RegionProfile(mpki=50.0, footprint_regions=512,
                                hot_regions=16, warm_regions=64)
        events = take(RegionTrafficGenerator(profile, seed=3), 60000)
        gaps = [gap for kind, gap, _, _ in events if kind == EV_READ]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1000.0 / 50.0, rel=0.1)

    def test_writeback_ratio_approximate(self, profile):
        events = take(RegionTrafficGenerator(profile, seed=2), 50000)
        counts = Counter(kind for kind, _, _, _ in events)
        ratio = counts[EV_WRITE] / counts[EV_READ]
        assert ratio == pytest.approx(profile.writeback_per_miss, rel=0.1)

    def test_blocks_within_footprint(self, profile):
        generator = RegionTrafficGenerator(profile, base_block=4096, seed=5)
        for _, _, block, _ in take(generator, 30000):
            assert 4096 <= block < 4096 + profile.footprint_regions * BLOCKS_PER_REGION


class TestLocalityShape:
    """The write skew that motivates the RRM (paper Section III-C)."""

    def test_hot_tier_dominates_writes(self, profile):
        generator = RegionTrafficGenerator(profile, seed=11)
        writes = Counter()
        for kind, _, block, _ in take(generator, 100000):
            if kind == EV_WRITE:
                writes[block // BLOCKS_PER_REGION] += 1
        total = sum(writes.values())
        top_regions = writes.most_common(profile.hot_regions)
        top_share = sum(count for _, count in top_regions) / total
        assert top_share > 0.55

    def test_most_regions_rarely_written(self, profile):
        generator = RegionTrafficGenerator(profile, seed=11)
        written = set()
        for kind, _, block, _ in take(generator, 100000):
            if kind == EV_WRITE:
                written.add(block // BLOCKS_PER_REGION)
        # The cold tail means many footprint regions stay unwritten.
        assert len(written) < profile.footprint_regions

    def test_streaming_registrations_are_clean(self):
        profile = RegionProfile(
            mpki=25.0, writeback_per_miss=0.5, footprint_regions=512,
            hot_regions=8, warm_regions=16,
            hot_write_share=0.0, warm_write_share=0.0, streaming_fraction=1.0,
        )
        generator = RegionTrafficGenerator(profile, seed=4)
        registrations = [
            dirty for kind, _, _, dirty in take(generator, 20000)
            if kind == EV_REGISTER
        ]
        assert registrations and not any(registrations)

    def test_hot_registrations_are_dirty(self):
        profile = RegionProfile(
            mpki=25.0, writeback_per_miss=0.5, footprint_regions=512,
            hot_regions=8, warm_regions=16,
            hot_write_share=1.0, warm_write_share=0.0, streaming_fraction=0.0,
        )
        generator = RegionTrafficGenerator(profile, seed=4)
        registrations = [
            dirty for kind, _, _, dirty in take(generator, 20000)
            if kind == EV_REGISTER
        ]
        assert registrations and all(registrations)

    def test_hot_blocks_rewritten(self):
        """Hot-region blocks must receive repeated writes (temporal
        locality) — that is what makes short retention safe."""
        profile = RegionProfile(
            mpki=25.0, writeback_per_miss=0.5, footprint_regions=512,
            hot_regions=4, warm_regions=8, hot_write_share=0.9,
            warm_write_share=0.05, streaming_fraction=0.0,
            hot_working_blocks=8,
        )
        generator = RegionTrafficGenerator(profile, seed=4)
        writes = Counter(
            block for kind, _, block, _ in take(generator, 30000)
            if kind == EV_WRITE
        )
        assert writes.most_common(1)[0][1] > 10


class TestPhaseRotation:
    def test_hot_set_changes_after_rotation(self):
        profile = RegionProfile(
            mpki=25.0, writeback_per_miss=0.5, footprint_regions=512,
            hot_regions=16, warm_regions=64,
            phase_interval_writes=500, phase_rotation_fraction=0.5,
        )
        generator = RegionTrafficGenerator(profile, seed=9)
        before = set(generator._hot)
        stream = iter(generator)
        while generator.phase_changes == 0:
            next(stream)
        after = set(generator._hot)
        assert after != before
        assert len(after) == len(before)

    def test_rotation_disabled_with_zero_interval(self):
        profile = RegionProfile(
            mpki=25.0, writeback_per_miss=0.5, footprint_regions=512,
            hot_regions=16, warm_regions=64, phase_interval_writes=0,
        )
        generator = RegionTrafficGenerator(profile, seed=9)
        list(itertools.islice(iter(generator), 50000))
        assert generator.phase_changes == 0

    def test_rotated_regions_stay_in_footprint(self):
        profile = RegionProfile(
            mpki=25.0, writeback_per_miss=0.5, footprint_regions=256,
            hot_regions=8, warm_regions=16,
            phase_interval_writes=300, phase_rotation_fraction=0.5,
        )
        generator = RegionTrafficGenerator(profile, base_block=1024, seed=9)
        for _, _, block, _ in itertools.islice(iter(generator), 40000):
            assert 1024 <= block < 1024 + 256 * BLOCKS_PER_REGION
        assert generator.phase_changes > 1

    def test_decay_demotions_happen_under_rotation(self):
        """End-to-end: phase rotation makes the RRM's decay machinery
        demote obsolete hot regions."""
        import dataclasses

        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_workload
        from repro.sim.schemes import Scheme
        from repro.workloads.spec2006 import BENCHMARKS, BenchmarkProfile

        # A rapidly phase-changing workload at tiny-run traffic volumes.
        # The footprint is kept small enough that RRM entries survive to
        # their decay wrap instead of being evicted first (the tiny RRM
        # has only n_sets*n_ways entries).
        churner = BenchmarkProfile(
            name="churner",
            paper_mpki=26.0,
            traffic=RegionProfile(
                mpki=26.0, writeback_per_miss=0.55, footprint_regions=1024,
                hot_regions=128, warm_regions=256,
                hot_write_share=0.9, warm_write_share=0.06,
                streaming_fraction=0.0, cold_dirty_fraction=0.0,
                phase_interval_writes=8000, phase_rotation_fraction=0.25,
            ),
        )
        BENCHMARKS["churner"] = churner
        try:
            config = SystemConfig.tiny()
            config = dataclasses.replace(config, duration_s=config.duration_s * 3)
            result = run_workload(config, "churner", Scheme.RRM)
        finally:
            del BENCHMARKS["churner"]
        assert result.rrm_stats["demotions"] > 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mpki": 0.0},
            {"mpki": 10, "writeback_per_miss": -0.1},
            {"mpki": 10, "registrations_per_write": 0.5},
            {"mpki": 10, "footprint_regions": 10, "hot_regions": 8, "warm_regions": 8},
            {"mpki": 10, "hot_write_share": 0.9, "warm_write_share": 0.2},
            {"mpki": 10, "hot_working_blocks": 0},
            {"mpki": 10, "hot_working_blocks": 65},
            {"mpki": 10, "cold_dirty_fraction": 1.5},
        ],
    )
    def test_invalid_profiles(self, kwargs):
        with pytest.raises(ConfigError):
            RegionProfile(**kwargs)

    def test_negative_base_block_rejected(self, profile):
        with pytest.raises(ConfigError):
            RegionTrafficGenerator(profile, base_block=-1)

    def test_cold_write_share_derived(self, profile):
        expected = 1.0 - (
            profile.hot_write_share + profile.warm_write_share
            + profile.streaming_fraction
        )
        assert profile.cold_write_share == pytest.approx(expected)
