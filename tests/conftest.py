"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import RRMConfig
from repro.engine import Simulator
from repro.memctrl.controller import MemoryController
from repro.pcm.device import PCMDevice
from repro.pcm.write_modes import WriteModeTable
from repro.sim.config import SystemConfig
from repro.utils.units import parse_size


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def modes() -> WriteModeTable:
    return WriteModeTable()


@pytest.fixture
def small_device() -> PCMDevice:
    """A 16MB device with 2 channels x 2 banks — enough structure to
    exercise the address map and scheduler without bulk."""
    return PCMDevice(
        size_bytes=parse_size("16MB"), n_channels=2, banks_per_channel=2
    )


@pytest.fixture
def controller(sim, small_device) -> MemoryController:
    return MemoryController(
        sim,
        small_device,
        refresh_queue_capacity=8,
        read_queue_capacity=8,
        write_queue_capacity=8,
    )


@pytest.fixture
def rrm_config() -> RRMConfig:
    """A small RRM: 4 sets x 4 ways of 4KB regions."""
    return RRMConfig(n_sets=4, n_ways=4)


@pytest.fixture
def tiny_config() -> SystemConfig:
    return SystemConfig.tiny()
