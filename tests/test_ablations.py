"""Tests for the ablation knobs on the RRM and the device.

These validate the mechanisms that the ablation benchmarks exercise at
scale: the streaming-write filter, the decay machinery, and write
pausing.
"""


from repro.core.config import RRMConfig
from repro.core.monitor import RegionRetentionMonitor
from repro.memctrl.request import RequestType


class StubController:
    def __init__(self):
        self.requests = []

    def can_accept(self, rtype, block):
        return True

    def enqueue(self, request):
        self.requests.append(request)

    def notify_space(self, rtype, block, callback):  # pragma: no cover
        raise AssertionError("unexpected backpressure in stub")


class TestStreamingFilterAblation:
    def test_clean_writes_register_when_filter_off(self, modes):
        config = RRMConfig(n_sets=4, n_ways=4, streaming_filter=False)
        monitor = RegionRetentionMonitor(config, modes)
        for _ in range(config.hot_threshold):
            monitor.register_llc_write(0, was_dirty=False)
        entry = monitor.tags.lookup(0, touch=False)
        assert entry is not None and entry.hot
        assert monitor.stats.clean_writes_filtered == 0

    def test_filter_on_keeps_streaming_cold(self, modes):
        config = RRMConfig(n_sets=4, n_ways=4)
        monitor = RegionRetentionMonitor(config, modes)
        for _ in range(config.hot_threshold):
            monitor.register_llc_write(0, was_dirty=False)
        assert monitor.tags.lookup(0, touch=False) is None

    def test_filter_off_increases_fast_coverage_of_streams(self, modes):
        """A streaming pattern (each block written once, clean) becomes
        short-retention only without the filter — exactly the pollution
        the paper's filter prevents."""
        on = RegionRetentionMonitor(RRMConfig(n_sets=4, n_ways=4), modes)
        off = RegionRetentionMonitor(
            RRMConfig(n_sets=4, n_ways=4, streaming_filter=False), modes
        )
        for monitor in (on, off):
            for block in range(32):  # one sweep over half a region
                monitor.register_llc_write(block, was_dirty=False)
        assert on.decide_write_mode(31) == 7
        assert off.decide_write_mode(31) == 3


class TestDecayAblation:
    def _promote(self, monitor, block=0):
        for _ in range(monitor.config.hot_threshold):
            monitor.register_llc_write(block, was_dirty=True)

    def test_no_decay_keeps_entries_hot_forever(self, modes):
        config = RRMConfig(n_sets=4, n_ways=4, decay_enabled=False)
        controller = StubController()
        monitor = RegionRetentionMonitor(config, modes, controller=controller)
        self._promote(monitor)
        for _ in range(10 * config.decay_ticks_per_interval):
            monitor.on_decay_tick()
        assert monitor.stats.demotions == 0
        assert monitor.tags.lookup(0, touch=False).hot

    def test_no_decay_means_unbounded_refresh(self, modes):
        """Without decay an obsolete hot block is fast-refreshed at every
        interrupt — the wear the decay mechanism exists to avoid."""
        config = RRMConfig(n_sets=4, n_ways=4, decay_enabled=False)
        controller = StubController()
        monitor = RegionRetentionMonitor(config, modes, controller=controller)
        self._promote(monitor)
        for _ in range(5):
            monitor.on_refresh_interrupt()
        fast = [r for r in controller.requests if r.rtype is RequestType.RRM_REFRESH]
        assert len(fast) == 5

    def test_decay_bounds_refresh_of_idle_entries(self, modes):
        config = RRMConfig(n_sets=4, n_ways=4)
        controller = StubController()
        monitor = RegionRetentionMonitor(config, modes, controller=controller)
        self._promote(monitor)
        interrupts_with_refresh = 0
        for _ in range(5):
            before = monitor.stats.fast_refreshes_issued
            monitor.on_refresh_interrupt()
            if monitor.stats.fast_refreshes_issued > before:
                interrupts_with_refresh += 1
            for _ in range(config.decay_ticks_per_interval):
                monitor.on_decay_tick()
        # The entry decays after two intervals, so later interrupts are free.
        assert interrupts_with_refresh <= 2
