"""Tests for the generic set-associative cache."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.errors import ConfigError


@pytest.fixture
def cache():
    # 8 sets x 2 ways of 64B blocks = 1KB.
    return Cache(CacheConfig(size_bytes=1024, n_ways=2, hit_latency_cycles=3))


def same_set_blocks(cache, count, set_index=0):
    n_sets = cache.config.n_sets
    return [set_index + i * n_sets for i in range(count)]


class TestConfig:
    def test_set_count(self):
        cfg = CacheConfig(size_bytes=1024, n_ways=2)
        assert cfg.n_sets == 8

    def test_parse_constructor(self):
        cfg = CacheConfig.parse("6MB", 24, name="LLC")
        assert cfg.n_sets == 4096

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_bytes": 0, "n_ways": 2},
            {"size_bytes": 100, "n_ways": 2},
            {"size_bytes": 1024, "n_ways": 0},
            {"size_bytes": 64 * 24, "n_ways": 16},  # 1.5 sets
            {"size_bytes": 64 * 2 * 3, "n_ways": 2},  # 3 sets: not 2^k
            {"size_bytes": 1024, "n_ways": 2, "hit_latency_cycles": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)


class TestReadsAndWrites:
    def test_cold_miss_then_hit(self, cache):
        miss = cache.access(0, is_write=False)
        assert not miss.hit
        hit = cache.access(0, is_write=False)
        assert hit.hit
        assert hit.latency_cycles == 3

    def test_write_allocates_dirty(self, cache):
        cache.access(0, is_write=True)
        assert cache.is_dirty(0)

    def test_read_allocates_clean(self, cache):
        cache.access(0, is_write=False)
        assert cache.contains(0)
        assert not cache.is_dirty(0)

    def test_write_hit_reports_prior_dirtiness(self, cache):
        cache.access(0, is_write=True)
        second = cache.access(0, is_write=True)
        assert second.hit and second.was_dirty
        assert cache.stats.dirty_write_hits == 1

    def test_first_write_hit_on_clean_line(self, cache):
        cache.access(0, is_write=False)
        result = cache.access(0, is_write=True)
        assert result.hit and not result.was_dirty


class TestEviction:
    def test_clean_victim_no_writeback(self, cache):
        a, b, c = same_set_blocks(cache, 3)
        cache.access(a, is_write=False)
        cache.access(b, is_write=False)
        result = cache.access(c, is_write=False)
        assert result.writeback_block is None

    def test_dirty_victim_surfaces_writeback(self, cache):
        a, b, c = same_set_blocks(cache, 3)
        cache.access(a, is_write=True)
        cache.access(b, is_write=False)
        result = cache.access(c, is_write=False)
        assert result.writeback_block == a
        assert cache.stats.writebacks == 1

    def test_lru_protects_recently_used(self, cache):
        a, b, c = same_set_blocks(cache, 3)
        cache.access(a, is_write=False)
        cache.access(b, is_write=False)
        cache.access(a, is_write=False)  # refresh a
        cache.access(c, is_write=False)  # evicts b
        assert cache.contains(a) and not cache.contains(b)


class TestFillAndWriteInto:
    def test_fill_inserts_clean(self, cache):
        assert cache.fill(5) is None
        assert cache.contains(5) and not cache.is_dirty(5)

    def test_fill_merges_dirty_sticky(self, cache):
        cache.fill(5, dirty=True)
        cache.fill(5, dirty=False)
        assert cache.is_dirty(5)

    def test_write_into_marks_dirty(self, cache):
        result = cache.write_into(7)
        assert not result.hit
        assert cache.is_dirty(7)

    def test_write_into_existing_reports_was_dirty(self, cache):
        cache.write_into(7)
        result = cache.write_into(7)
        assert result.hit and result.was_dirty

    def test_write_into_eviction_cascades(self, cache):
        a, b, c = same_set_blocks(cache, 3)
        cache.write_into(a)
        cache.write_into(b)
        result = cache.write_into(c)
        assert result.writeback_block == a


class TestInvalidateAndDrain:
    def test_invalidate_returns_dirtiness(self, cache):
        cache.access(0, is_write=True)
        assert cache.invalidate(0) is True
        assert not cache.contains(0)

    def test_invalidate_clean(self, cache):
        cache.access(0, is_write=False)
        assert cache.invalidate(0) is False

    def test_invalidate_missing(self, cache):
        assert cache.invalidate(99) is False

    def test_dirty_blocks_enumeration(self, cache):
        cache.access(0, is_write=True)
        cache.access(1, is_write=False)
        cache.access(2, is_write=True)
        assert sorted(cache.dirty_blocks()) == [0, 2]

    def test_occupancy(self, cache):
        for block in range(5):
            cache.access(block, is_write=False)
        assert cache.occupancy == 5


class TestStats:
    def test_miss_rate(self, cache):
        cache.access(0, is_write=False)  # miss
        cache.access(0, is_write=False)  # hit
        cache.access(1, is_write=True)   # miss
        assert cache.stats.accesses == 3
        assert cache.stats.miss_rate == pytest.approx(2 / 3)
