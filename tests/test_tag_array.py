"""Tests for the RRM set-associative tag array."""

import pytest

from repro.core.config import RRMConfig
from repro.core.tag_array import RRMTagArray
from repro.errors import SimulationError


@pytest.fixture
def tags(rrm_config):
    return RRMTagArray(rrm_config)


def regions_in_set(config: RRMConfig, set_index: int, count: int):
    """Distinct regions that all map to *set_index*."""
    return [set_index + i * config.n_sets for i in range(count)]


class TestLookupAllocate:
    def test_miss_returns_none(self, tags):
        assert tags.lookup(5) is None
        assert tags.hit_rate == 0.0

    def test_allocate_then_hit(self, tags):
        entry, victim = tags.allocate(5)
        assert victim is None
        assert tags.lookup(5) is entry
        assert tags.hits == 1

    def test_double_allocate_is_error(self, tags):
        tags.allocate(5)
        with pytest.raises(SimulationError):
            tags.allocate(5)

    def test_occupancy(self, tags):
        for region in (1, 2, 3):
            tags.allocate(region)
        assert tags.occupancy == 3

    def test_set_isolation(self, tags, rrm_config):
        """Filling one set never evicts entries of another."""
        set0 = regions_in_set(rrm_config, 0, rrm_config.n_ways + 2)
        other, _ = tags.allocate(1)  # set 1
        for region in set0:
            tags.allocate(region)
        assert tags.lookup(1) is other


class TestLRUEviction:
    def test_lru_entry_evicted(self, tags, rrm_config):
        regions = regions_in_set(rrm_config, 0, rrm_config.n_ways)
        for region in regions:
            tags.allocate(region)
        # Touch everything except the first: it becomes the LRU.
        for region in regions[1:]:
            tags.lookup(region)
        _, victim = tags.allocate(regions[-1] + rrm_config.n_sets)
        assert victim is not None
        assert victim.region == regions[0]
        assert not victim.valid

    def test_lookup_refreshes_recency(self, tags, rrm_config):
        regions = regions_in_set(rrm_config, 0, rrm_config.n_ways)
        for region in regions:
            tags.allocate(region)
        tags.lookup(regions[0])  # protect the oldest
        _, victim = tags.allocate(regions[-1] + rrm_config.n_sets)
        assert victim.region == regions[1]

    def test_untouched_lookup_does_not_refresh(self, tags, rrm_config):
        regions = regions_in_set(rrm_config, 0, rrm_config.n_ways)
        for region in regions:
            tags.allocate(region)
        tags.lookup(regions[0], touch=False)
        _, victim = tags.allocate(regions[-1] + rrm_config.n_sets)
        assert victim.region == regions[0]

    def test_eviction_counter(self, tags, rrm_config):
        for region in regions_in_set(rrm_config, 0, rrm_config.n_ways + 3):
            tags.allocate(region)
        assert tags.evictions == 3


class TestIteration:
    def test_entries_yields_all_valid(self, tags):
        for region in (1, 2, 9):
            tags.allocate(region)
        assert {e.region for e in tags.entries()} == {1, 2, 9}

    def test_hot_entries_filtered(self, tags, rrm_config):
        a, _ = tags.allocate(1)
        b, _ = tags.allocate(2)
        for _ in range(rrm_config.hot_threshold):
            b.record_dirty_write(rrm_config.hot_threshold)
        assert [e.region for e in tags.hot_entries()] == [2]


class TestInvalidate:
    def test_invalidate_removes(self, tags):
        entry, _ = tags.allocate(5)
        assert tags.invalidate(5) is entry
        assert not entry.valid
        assert tags.lookup(5) is None

    def test_invalidate_missing_returns_none(self, tags):
        assert tags.invalidate(42) is None

    def test_set_occupancy(self, tags, rrm_config):
        tags.allocate(0)
        tags.allocate(rrm_config.n_sets)  # same set
        tags.allocate(1)  # different set
        assert tags.set_occupancy(0) == 2
        assert tags.set_occupancy(1) == 1
