"""Tests for aggregation helpers."""

import pytest

from repro.analysis.aggregate import normalize_to, series_with_geomean


class TestNormalize:
    def test_elementwise_division(self):
        assert normalize_to([2.0, 9.0], [1.0, 3.0]) == [2.0, 3.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            normalize_to([1.0], [1.0, 2.0])

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize_to([1.0], [0.0])


class TestSeriesWithGeomean:
    def test_labels_preserved_plus_geomean(self):
        out = series_with_geomean(["a", "b"], [1.0, 4.0])
        assert out["a"] == 1.0
        assert out["b"] == 4.0
        assert out["geomean"] == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series_with_geomean(["a"], [1.0, 2.0])
