"""Smoke tests: every example script runs to completion.

Examples are executed in-process (runpy) with ``--tiny``/reduced
arguments so they finish in seconds while still exercising the real
public API end to end.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list, monkeypatch, capsys) -> str:
    monkeypatch.setattr(sys, "argv", [name] + argv)
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(
            "quickstart.py", ["--tiny", "--workload", "hmmer"],
            monkeypatch, capsys,
        )
        assert "speedup" in out
        assert "lifetimes" in out

    def test_hot_threshold_tuning(self, monkeypatch, capsys):
        out = run_example(
            "hot_threshold_tuning.py",
            ["--tiny", "--workload", "hmmer", "--thresholds", "8", "16"],
            monkeypatch, capsys,
        )
        assert "RRM t=8" in out
        assert "Static-3-SETs" in out

    def test_region_analysis(self, monkeypatch, capsys):
        out = run_example(
            "region_analysis.py", ["--tiny", "--workload", "GemsFDTD"],
            monkeypatch, capsys,
        )
        assert "never written" in out
        assert "Region Retention Monitor" in out

    def test_custom_workload(self, monkeypatch, capsys):
        from repro.workloads.spec2006 import BENCHMARKS

        try:
            out = run_example(
                "custom_workload.py", ["--tiny"], monkeypatch, capsys,
            )
        finally:
            # The example registers its profile in the global catalogue;
            # drop it so other tests see the stock nine benchmarks.
            BENCHMARKS.pop("kvstore", None)
        assert "kvstore" in out
        assert "trace replay" in out

    def test_full_hierarchy(self, monkeypatch, capsys):
        out = run_example(
            "full_hierarchy.py", ["--accesses", "30000"], monkeypatch, capsys,
        )
        assert "RRM registrations" in out
        assert "MPKI" in out

    def test_sensitivity_frontier(self, monkeypatch, capsys):
        out = run_example(
            "sensitivity_frontier.py", ["--tiny", "--workloads", "hmmer"],
            monkeypatch, capsys,
        )
        assert "hot_threshold=16" in out
        assert "coverage=4x" in out
        assert "frontier" in out or "dominates" in out

    def test_retention_integrity(self, monkeypatch, capsys):
        out = run_example(
            "retention_integrity.py", ["--workload", "GemsFDTD"],
            monkeypatch, capsys,
        )
        assert "expired-data events  : 0" in out
        assert "fault injection" in out

    def test_latency_anatomy(self, monkeypatch, capsys):
        out = run_example(
            "latency_anatomy.py", ["--tiny", "--workload", "hmmer"],
            monkeypatch, capsys,
        )
        assert "refreshes 0.0 us (0.00%" in out  # Static-7: no refresh tax
        assert "the tradeoff, causally attributed" in out
        assert "refresh tax on reads" in out
