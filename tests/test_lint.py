"""Tests for the simulator-invariant static analyzer (repro.lint).

Every rule id is exercised both positively (a fixture snippet that must
trigger it) and negatively (a clean snippet that must not), plus the
pragma and baseline suppression round-trips and the JSON report schema.
"""

import json
import textwrap

import pytest

from repro.errors import ConfigError
from repro.lint import (
    Baseline,
    BaselineEntry,
    all_checkers,
    checker_classes,
    lint_source,
    run_lint,
)
from repro.lint.api import (
    LintReport,
    iter_python_files,
    parse_rule_selection,
    select_checkers,
)
from repro.lint.callgraph import ModuleCallGraph, is_lock_expr
from repro.lint.context import (
    ORCH_PATH_PACKAGES,
    SIM_PATH_PACKAGES,
    LintModule,
    parse_pragmas,
)
from repro.lint.finding import Finding
from repro.lint.reporters import render_json, render_text
from repro.lint.resolve import ImportMap

#: A path inside a sim-path package: every rule is active there.
SIM_PATH = "src/repro/engine/example.py"
#: A path outside the sim path: only the package-agnostic rules apply.
NON_SIM_PATH = "src/repro/analysis/example.py"
#: A path inside an orchestration package: RL007-RL012 are active there.
ORCH_PATH = "src/repro/fabric/example.py"


def lint(source, relpath=SIM_PATH):
    return lint_source(textwrap.dedent(source), relpath)


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Registry / plumbing
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_twelve_rules_registered(self):
        ids = [c.rule_id for c in all_checkers()]
        assert ids == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
        ]

    def test_rule_ids_unique(self):
        ids = [c.rule_id for c in checker_classes()]
        assert len(ids) == len(set(ids))

    def test_package_detection(self):
        module = LintModule("x = 1\n", "src/repro/pcm/device.py")
        assert module.package == "pcm"
        assert module.in_sim_path
        top = LintModule("x = 1\n", "src/repro/cli.py")
        assert top.package == ""
        assert not top.in_sim_path

    def test_sim_path_packages_match_issue_contract(self):
        assert SIM_PATH_PACKAGES == {
            "engine", "pcm", "memctrl", "cache", "core", "cpu", "sim",
            "attribution",
        }

    def test_orch_path_packages_match_issue_contract(self):
        assert ORCH_PATH_PACKAGES == {
            "resilience", "fabric", "obs", "profiling",
        }
        assert not (ORCH_PATH_PACKAGES & SIM_PATH_PACKAGES)

    def test_orch_path_detection(self):
        module = LintModule("x = 1\n", ORCH_PATH)
        assert module.package == "fabric"
        assert module.in_orch_path and not module.in_sim_path


# ----------------------------------------------------------------------
# RL001 no-wallclock
# ----------------------------------------------------------------------
class TestRL001:
    def test_flags_time_time(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert "RL001" in rules_of(findings)

    def test_flags_aliased_monotonic(self):
        findings = lint(
            """
            import time as t

            def stamp():
                return t.monotonic()
            """
        )
        assert "RL001" in rules_of(findings)

    def test_flags_from_import_and_datetime(self):
        findings = lint(
            """
            from time import perf_counter
            from datetime import datetime

            def stamp():
                return perf_counter(), datetime.now()
            """
        )
        assert sum(1 for f in findings if f.rule == "RL001") == 2

    def test_clean_simulated_time(self):
        findings = lint(
            """
            def handler(sim):
                return sim.now + 5.0
            """
        )
        assert "RL001" not in rules_of(findings)

    def test_inactive_outside_sim_path(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            relpath=NON_SIM_PATH,
        )
        assert "RL001" not in rules_of(findings)

    def test_local_method_named_time_is_clean(self):
        findings = lint(
            """
            class Clock:
                def time(self):
                    return 0.0

            def use(clock):
                return clock.time()
            """
        )
        assert "RL001" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL002 seeded-rng
# ----------------------------------------------------------------------
class TestRL002:
    def test_flags_module_level_random(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert "RL002" in rules_of(findings)

    def test_flags_from_import_shuffle(self):
        findings = lint(
            """
            from random import shuffle as mix

            def scramble(items):
                mix(items)
            """
        )
        assert "RL002" in rules_of(findings)

    def test_flags_global_seed_call(self):
        findings = lint(
            """
            import random

            random.seed(0)
            """
        )
        assert "RL002" in rules_of(findings)

    def test_flags_numpy_global_rng(self):
        findings = lint(
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """
        )
        assert "RL002" in rules_of(findings)

    def test_flags_unseeded_default_rng(self):
        findings = lint(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """
        )
        assert "RL002" in rules_of(findings)

    def test_clean_injected_instance(self):
        findings = lint(
            """
            import random

            class Component:
                def __init__(self, seed=0):
                    self._rng = random.Random(seed)

                def draw(self):
                    return self._rng.random()
            """
        )
        assert "RL002" not in rules_of(findings)

    def test_clean_seeded_default_rng(self):
        findings = lint(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """
        )
        assert "RL002" not in rules_of(findings)

    def test_active_outside_sim_path(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.random()
            """,
            relpath=NON_SIM_PATH,
        )
        assert "RL002" in rules_of(findings)


# ----------------------------------------------------------------------
# RL003 unit-mixing
# ----------------------------------------------------------------------
class TestRL003:
    def test_flags_ns_plus_s(self):
        findings = lint(
            """
            def total(latency_ns, retention_s):
                return latency_ns + retention_s
            """
        )
        assert "RL003" in rules_of(findings)
        finding = next(f for f in findings if f.rule == "RL003")
        assert "ns" in finding.message and "[s]" in finding.message
        assert finding.severity == "error"

    def test_flags_cross_dimension_comparison(self):
        findings = lint(
            """
            def check(size_bytes, window_ns):
                return size_bytes < window_ns
            """
        )
        assert "RL003" in rules_of(findings)

    def test_flags_attribute_operands(self):
        findings = lint(
            """
            def slack(cfg):
                return cfg.deadline_s - cfg.latency_ns
            """
        )
        assert "RL003" in rules_of(findings)

    def test_clean_same_unit(self):
        findings = lint(
            """
            def total(a_ns, b_ns):
                return a_ns + b_ns
            """
        )
        assert "RL003" not in rules_of(findings)

    def test_clean_multiplicative_conversion(self):
        findings = lint(
            """
            def convert(duration_s, freq_ghz):
                return duration_s * freq_ghz
            """
        )
        assert "RL003" not in rules_of(findings)

    def test_flags_literal_ns_kwarg_as_warning(self):
        findings = lint(
            """
            def run(make):
                return make(duration_ns=25000000.0)
            """
        )
        hits = [f for f in findings if f.rule == "RL003"]
        assert len(hits) == 1
        assert hits[0].severity == "warning"

    def test_clean_units_helper_kwarg(self):
        findings = lint(
            """
            from repro.utils.units import s_to_ns

            def run(make):
                return make(duration_ns=s_to_ns(0.025))
            """
        )
        assert "RL003" not in rules_of(findings)

    def test_clean_zero_literal_kwarg(self):
        findings = lint(
            """
            def run(make):
                return make(start_ns=0)
            """
        )
        assert "RL003" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL004 float-time-equality
# ----------------------------------------------------------------------
class TestRL004:
    def test_flags_equality_on_time_suffix(self):
        findings = lint(
            """
            def due(deadline_ns, t_ns):
                return deadline_ns == t_ns
            """
        )
        hits = [f for f in findings if f.rule == "RL004"]
        assert len(hits) == 1
        assert hits[0].severity == "warning"

    def test_flags_inequality_on_now(self):
        findings = lint(
            """
            def moved(sim, start):
                return sim.now != start
            """
        )
        assert "RL004" in rules_of(findings)

    def test_clean_order_comparison(self):
        findings = lint(
            """
            def due(deadline_ns, t_ns):
                return t_ns >= deadline_ns
            """
        )
        assert "RL004" not in rules_of(findings)

    def test_clean_none_check(self):
        findings = lint(
            """
            def unset(deadline_ns):
                return deadline_ns == None
            """
        )
        assert "RL004" not in rules_of(findings)

    def test_clean_tolerance_comparison(self):
        findings = lint(
            """
            import pytest

            def close(measured_ns, expected):
                assert measured_ns == pytest.approx(expected)
            """
        )
        assert "RL004" not in rules_of(findings)

    def test_clean_non_time_identifiers(self):
        findings = lint(
            """
            def same(count, other_count):
                return count == other_count
            """
        )
        assert "RL004" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL005 metrics-coverage
# ----------------------------------------------------------------------
class TestRL005:
    def test_flags_counter_class_without_registration(self):
        findings = lint(
            """
            class Widget:
                def __init__(self):
                    self.hits = 0

                def touch(self):
                    self.hits += 1
            """
        )
        hits = [f for f in findings if f.rule == "RL005"]
        assert len(hits) == 1
        assert "hits" in hits[0].message
        assert "Widget" in hits[0].message

    def test_clean_with_register_metrics(self):
        findings = lint(
            """
            class Widget:
                def __init__(self):
                    self.hits = 0

                def touch(self):
                    self.hits += 1

                def register_metrics(self, registry, prefix):
                    registry.gauge(f"{prefix}.hits", lambda: self.hits)
            """
        )
        assert "RL005" not in rules_of(findings)

    def test_clean_private_and_non_counter_attrs(self):
        findings = lint(
            """
            class Cursor:
                def __init__(self):
                    self._clock = 0
                    self.position = 0

                def advance(self):
                    self._clock += 1
                    self.position += 3
            """
        )
        assert "RL005" not in rules_of(findings)

    def test_clean_owner_incrementing_stats_struct(self):
        findings = lint(
            """
            class Owner:
                def __init__(self, stats):
                    self.stats = stats

                def work(self):
                    self.stats.reads += 1
            """
        )
        assert "RL005" not in rules_of(findings)

    def test_inactive_outside_sim_path(self):
        findings = lint(
            """
            class Widget:
                def touch(self):
                    self.hits += 1
            """,
            relpath=NON_SIM_PATH,
        )
        assert "RL005" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL006 event-discipline
# ----------------------------------------------------------------------
class TestRL006:
    def test_flags_negative_delay(self):
        findings = lint(
            """
            def go(sim, cb):
                sim.schedule_after(-5.0, cb)
            """
        )
        assert "RL006" in rules_of(findings)

    def test_flags_absolute_literal_schedule_at(self):
        findings = lint(
            """
            def go(sim, cb):
                sim.schedule_at(100.0, cb)
            """
        )
        assert "RL006" in rules_of(findings)

    def test_flags_non_positive_period(self):
        findings = lint(
            """
            def go(sim, cb):
                sim.schedule_periodic(0, cb)
            """
        )
        assert "RL006" in rules_of(findings)

    def test_flags_clock_mutation_through_other_object(self):
        findings = lint(
            """
            def warp(sim, t):
                sim._now = t
            """
        )
        assert "RL006" in rules_of(findings)

    def test_clean_now_relative_scheduling(self):
        findings = lint(
            """
            def go(sim, cb, delay):
                sim.schedule_after(delay, cb)
                sim.schedule_at(sim.now + 10.0, cb)
            """
        )
        assert "RL006" not in rules_of(findings)

    def test_clean_self_clock_ownership(self):
        findings = lint(
            """
            class Engine:
                def __init__(self):
                    self._now = 0.0

                def _advance(self, t):
                    self._now = t
            """
        )
        assert "RL006" not in rules_of(findings)


# ----------------------------------------------------------------------
# Call graph / lock-context dataflow (shared by RL007-RL012)
# ----------------------------------------------------------------------
class TestCallGraph:
    @staticmethod
    def _graph(source):
        module = LintModule(textwrap.dedent(source), ORCH_PATH)
        return ModuleCallGraph(module.tree)

    def test_function_table_qualnames(self):
        graph = self._graph(
            """
            def helper():
                pass

            class Journal:
                def append(self):
                    helper()
                    self._append_locked()

                def _append_locked(self):
                    pass
            """
        )
        assert set(graph.functions) == {
            "helper", "Journal.append", "Journal._append_locked"
        }

    def test_locked_suffix_seeds_holds_lock(self):
        graph = self._graph(
            """
            class J:
                def _append_locked(self):
                    pass
            """
        )
        assert graph.function("J._append_locked").holds_lock_on_entry

    def test_fixpoint_propagates_through_locked_call_sites(self):
        graph = self._graph(
            """
            class J:
                def append(self, rec):
                    with self.lock:
                        self._write(rec)

                def _write(self, rec):
                    pass
            """
        )
        assert graph.function("J._write").holds_lock_on_entry

    def test_one_unlocked_call_site_breaks_the_proof(self):
        graph = self._graph(
            """
            class J:
                def append(self, rec):
                    with self.lock:
                        self._write(rec)

                def sneak(self, rec):
                    self._write(rec)

                def _write(self, rec):
                    pass
            """
        )
        assert not graph.function("J._write").holds_lock_on_entry

    def test_transitive_callees(self):
        graph = self._graph(
            """
            class S:
                def a(self):
                    self.b()

                def b(self):
                    self.c()

                def c(self):
                    with self._lock:
                        pass
            """
        )
        names = {f.qualname for f in graph.transitive_callees("S.a")}
        assert names == {"S.a", "S.b", "S.c"}
        assert graph.function("S.c").takes_lock

    def test_is_lock_expr_shapes(self):
        import ast as ast_module

        def expr(src):
            tree = ast_module.parse(textwrap.dedent(src))
            imports = ImportMap(tree)
            node = tree.body[-1].value
            return is_lock_expr(node, imports)

        assert expr("import threading\nthreading.Lock()")
        assert expr("self_lock = 1\nx._lock")
        assert expr("from repro.fabric.locking import FileLock\nFileLock('j')")
        assert not expr("import threading\nthreading.Event()")
        assert not expr("x.journal")


# ----------------------------------------------------------------------
# RL007 lock-discipline
# ----------------------------------------------------------------------
class TestRL007:
    def test_flags_raw_os_write_outside_lock(self):
        findings = lint(
            """
            import os

            def append(fd, line):
                os.write(fd, line)
            """,
            relpath=ORCH_PATH,
        )
        assert "RL007" in rules_of(findings)

    def test_flags_locked_helper_called_without_lock(self):
        findings = lint(
            """
            class J:
                def sneak(self, rec):
                    self._append_locked(rec)

                def _append_locked(self, rec):
                    pass
            """,
            relpath=ORCH_PATH,
        )
        assert "RL007" in rules_of(findings)

    def test_clean_inside_with_lock(self):
        findings = lint(
            """
            import os

            class J:
                def append(self, fd, rec):
                    with self.lock:
                        os.write(fd, rec)
                        self._append_locked(rec)

                def _append_locked(self, rec):
                    pass
            """,
            relpath=ORCH_PATH,
        )
        assert "RL007" not in rules_of(findings)

    def test_clean_inside_locked_helper_body(self):
        findings = lint(
            """
            import os

            class J:
                def append(self, rec):
                    with self.lock:
                        self._append_locked(rec)

                def _append_locked(self, rec):
                    os.write(self.fd, rec)
                    self.fh.truncate(10)
            """,
            relpath=ORCH_PATH,
        )
        assert "RL007" not in rules_of(findings)

    def test_flags_truncate_outside_lock(self):
        findings = lint(
            """
            def repair(fh):
                fh.truncate(0)
            """,
            relpath=ORCH_PATH,
        )
        assert "RL007" in rules_of(findings)

    def test_inactive_outside_orch_path(self):
        findings = lint(
            """
            import os

            def append(fd, line):
                os.write(fd, line)
            """,
            relpath=NON_SIM_PATH,
        )
        assert "RL007" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL008 atomic-persistence
# ----------------------------------------------------------------------
class TestRL008:
    def test_flags_bare_write_text(self):
        findings = lint(
            """
            def pin(path, payload):
                path.write_text(payload)
            """,
            relpath=ORCH_PATH,
        )
        assert "RL008" in rules_of(findings)

    def test_flags_open_for_write_and_json_dump(self):
        findings = lint(
            """
            import json

            def dump(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
            """,
            relpath=ORCH_PATH,
        )
        assert sum(1 for f in findings if f.rule == "RL008") == 2

    def test_clean_tmp_plus_os_replace(self):
        findings = lint(
            """
            import os

            def pin(path, tmp, payload):
                tmp.write_text(payload)
                os.replace(tmp, path)
            """,
            relpath=ORCH_PATH,
        )
        assert "RL008" not in rules_of(findings)

    def test_clean_atomic_helper_call(self):
        findings = lint(
            """
            import json
            from repro.utils.persist import save_json

            def pin(path, payload):
                save_json(path, payload)
            """,
            relpath=ORCH_PATH,
        )
        assert "RL008" not in rules_of(findings)

    def test_clean_read_modes(self):
        findings = lint(
            """
            def load(path):
                with open(path, "r+b") as fh:
                    return fh.read()
            """,
            relpath=ORCH_PATH,
        )
        assert "RL008" not in rules_of(findings)

    def test_inactive_outside_orch_path(self):
        findings = lint(
            """
            def pin(path, payload):
                path.write_text(payload)
            """,
            relpath=NON_SIM_PATH,
        )
        assert "RL008" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL009 fork-thread-safety
# ----------------------------------------------------------------------
class TestRL009:
    def test_flags_thread_in_forking_module(self):
        findings = lint(
            """
            import threading
            import multiprocessing

            def run(work):
                t = threading.Thread(target=work)
                ctx = multiprocessing.get_context()
                p = ctx.Process(target=work)
            """,
            relpath=ORCH_PATH,
        )
        assert any(
            f.rule == "RL009" and f.severity == "error" for f in findings
        )

    def test_warns_lock_taking_daemon_target(self):
        findings = lint(
            """
            import threading

            class Server:
                def start(self):
                    t = threading.Thread(target=self._serve, daemon=True)
                    t.start()

                def _serve(self):
                    with self._lock:
                        pass
            """,
            relpath=ORCH_PATH,
        )
        assert any(
            f.rule == "RL009" and f.severity == "warning" for f in findings
        )

    def test_warns_transitively_lock_taking_target(self):
        findings = lint(
            """
            import threading

            class Server:
                def start(self):
                    t = threading.Thread(target=self._serve, daemon=True)

                def _serve(self):
                    self._handle()

                def _handle(self):
                    with self._lock:
                        pass
            """,
            relpath=ORCH_PATH,
        )
        assert "RL009" in rules_of(findings)

    def test_clean_lock_free_daemon_and_non_daemon(self):
        findings = lint(
            """
            import threading

            class Server:
                def start(self, work):
                    a = threading.Thread(target=self._pump, daemon=True)
                    b = threading.Thread(target=work)

                def _pump(self):
                    return 1
            """,
            relpath=ORCH_PATH,
        )
        assert "RL009" not in rules_of(findings)

    def test_inactive_outside_orch_path(self):
        findings = lint(
            """
            import threading
            import multiprocessing

            def run(work):
                t = threading.Thread(target=work)
                p = multiprocessing.Process(target=work)
            """,
            relpath=NON_SIM_PATH,
        )
        assert "RL009" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL010 exception-safe-lock
# ----------------------------------------------------------------------
class TestRL010:
    def test_flags_bare_acquire(self):
        findings = lint(
            """
            def critical(lock):
                lock.acquire()
                return 1
            """,
            relpath=ORCH_PATH,
        )
        assert "RL010" in rules_of(findings)

    def test_clean_acquire_then_try_finally(self):
        findings = lint(
            """
            def critical(lock):
                lock.acquire()
                try:
                    return 1
                finally:
                    lock.release()
            """,
            relpath=ORCH_PATH,
        )
        assert "RL010" not in rules_of(findings)

    def test_clean_acquire_inside_try_with_finally_release(self):
        findings = lint(
            """
            def critical(lock):
                try:
                    lock.acquire()
                    return 1
                finally:
                    lock.release()
            """,
            relpath=ORCH_PATH,
        )
        assert "RL010" not in rules_of(findings)

    def test_clean_with_statement_and_wrapper_methods(self):
        findings = lint(
            """
            class FileLock:
                def __enter__(self):
                    return self.acquire()

                def acquire(self):
                    self._inner_lock.acquire()
                    return self

            def use(lock):
                with lock:
                    return 1
            """,
            relpath=ORCH_PATH,
        )
        assert "RL010" not in rules_of(findings)

    def test_non_lock_receivers_ignored(self):
        findings = lint(
            """
            def run(semantics):
                semantics.acquire()
            """,
            relpath=ORCH_PATH,
        )
        assert "RL010" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL011 wallclock-lease-logic
# ----------------------------------------------------------------------
class TestRL011:
    def test_flags_wallclock_deadline(self):
        findings = lint(
            """
            import time

            def wait(timeout_s):
                deadline = time.monotonic() + timeout_s
                while time.monotonic() < deadline:
                    pass
            """,
            relpath=ORCH_PATH,
        )
        assert sum(1 for f in findings if f.rule == "RL011") == 2

    def test_flags_wallclock_lease_expiry(self):
        findings = lint(
            """
            import time

            def is_expired(lease):
                return time.time() > lease.expires_unix_s
            """,
            relpath=ORCH_PATH,
        )
        assert "RL011" in rules_of(findings)

    def test_clean_injected_clock(self):
        findings = lint(
            """
            import time

            def wait(timeout_s, clock=time.monotonic):
                deadline = clock() + timeout_s
                while clock() < deadline:
                    pass
            """,
            relpath=ORCH_PATH,
        )
        assert "RL011" not in rules_of(findings)

    def test_clean_measurement_in_lease_function(self):
        findings = lint(
            """
            import time

            def run(timeout_s):
                started = time.monotonic()
                elapsed_s = time.monotonic() - started
                return elapsed_s
            """,
            relpath=ORCH_PATH,
        )
        assert "RL011" not in rules_of(findings)

    def test_clean_no_lease_vocabulary(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            relpath=ORCH_PATH,
        )
        assert "RL011" not in rules_of(findings)

    def test_inactive_outside_orch_path(self):
        findings = lint(
            """
            import time

            def wait(timeout_s):
                deadline = time.monotonic() + timeout_s
            """,
            relpath=NON_SIM_PATH,
        )
        assert "RL011" not in rules_of(findings)


# ----------------------------------------------------------------------
# RL012 silent-swallow
# ----------------------------------------------------------------------
class TestRL012:
    def test_flags_swallowing_pass(self):
        findings = lint(
            """
            def pump(queue):
                try:
                    queue.get()
                except Exception:
                    pass
            """,
            relpath=ORCH_PATH,
        )
        assert "RL012" in rules_of(findings)

    def test_flags_bare_except_continue(self):
        findings = lint(
            """
            def serve(jobs):
                for job in jobs:
                    try:
                        job()
                    except:
                        continue
            """,
            relpath=ORCH_PATH,
        )
        assert "RL012" in rules_of(findings)

    def test_clean_logging_handler(self):
        findings = lint(
            """
            def serve(self, job):
                try:
                    job()
                except Exception as exc:
                    self._log(f"failed: {exc}")
            """,
            relpath=ORCH_PATH,
        )
        assert "RL012" not in rules_of(findings)

    def test_clean_counter_bump(self):
        findings = lint(
            """
            def pump(self, queue):
                try:
                    queue.get()
                except Exception:
                    self.events_dropped += 1
            """,
            relpath=ORCH_PATH,
        )
        assert "RL012" not in rules_of(findings)

    def test_clean_error_capture_and_raise(self):
        findings = lint(
            """
            def settle(state, job):
                try:
                    job()
                except Exception as exc:
                    state.error = str(exc)
                try:
                    job()
                except BaseException:
                    raise
            """,
            relpath=ORCH_PATH,
        )
        assert "RL012" not in rules_of(findings)

    def test_narrow_except_not_flagged(self):
        findings = lint(
            """
            def load(path):
                try:
                    return path.read_text()
                except OSError:
                    pass
            """,
            relpath=ORCH_PATH,
        )
        assert "RL012" not in rules_of(findings)

    def test_inactive_outside_orch_path(self):
        findings = lint(
            """
            def pump(queue):
                try:
                    queue.get()
                except Exception:
                    pass
            """,
            relpath=NON_SIM_PATH,
        )
        assert "RL012" not in rules_of(findings)


# ----------------------------------------------------------------------
# Rule selection (--select / --ignore)
# ----------------------------------------------------------------------
class TestRuleSelection:
    def test_parse_single_and_list(self):
        assert parse_rule_selection("RL007") == {"RL007"}
        assert parse_rule_selection("rl007, RL010") == {"RL007", "RL010"}

    def test_parse_range(self):
        assert parse_rule_selection("RL007-RL012") == {
            "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
        }

    def test_parse_rejects_garbage(self):
        for bad in ("", "RL7", "bugs", "RL010-RL007", "RL001-"):
            with pytest.raises(ConfigError):
                parse_rule_selection(bad)

    def test_select_checkers_filters(self):
        active = select_checkers(all_checkers(), select="RL007-RL012")
        assert [c.rule_id for c in active] == [
            "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
        ]

    def test_ignore_drops_rules(self):
        active = select_checkers(all_checkers(), ignore="RL005,RL006")
        ids = {c.rule_id for c in active}
        assert "RL005" not in ids and "RL006" not in ids
        assert "RL001" in ids

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError):
            select_checkers(all_checkers(), select="RL099")
        with pytest.raises(ConfigError):
            select_checkers(all_checkers(), ignore="RL099")

    def test_run_lint_select_scopes_findings(self, tmp_path, monkeypatch):
        _make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        scoped = run_lint(["src/repro"], select="RL007-RL012")
        assert scoped.clean
        assert scoped.rules_active == [
            "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
        ]
        unscoped = run_lint(["src/repro"])
        assert unscoped.error_count == 1
        assert len(unscoped.rules_active) == 12

    def test_rules_active_in_json_report(self, tmp_path, monkeypatch):
        _make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src/repro"], ignore="RL001")
        payload = json.loads(render_json(report))
        assert "RL001" not in payload["rules_active"]
        assert report.clean


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_same_line_disable(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RL001
            """
        )
        assert "RL001" not in rules_of(findings)

    def test_disable_is_rule_specific(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RL002
            """
        )
        assert "RL001" in rules_of(findings)

    def test_multi_rule_disable(self):
        findings = lint(
            """
            def total(a_ns, b_s, sim):
                return a_ns + b_s == sim.now  # repro-lint: disable=RL003,RL004
            """
        )
        assert rules_of(findings) == set()

    def test_disable_all(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=all
            """
        )
        assert findings == []

    def test_disable_file(self):
        findings = lint(
            """
            # repro-lint: disable-file=RL001
            import time

            def stamp():
                return time.time()

            def stamp2():
                return time.monotonic()
            """
        )
        assert "RL001" not in rules_of(findings)

    def test_pragma_on_multiline_statement_span(self):
        findings = lint(
            """
            def go(sim, cb):
                sim.schedule_at(
                    100.0,
                    cb,
                )  # repro-lint: disable=RL006
            """
        )
        assert "RL006" not in rules_of(findings)

    def test_disable_new_concurrency_rule(self):
        findings = lint(
            """
            import os

            def append(fd, line):
                os.write(fd, line)  # repro-lint: disable=RL007
            """,
            relpath=ORCH_PATH,
        )
        assert "RL007" not in rules_of(findings)

    def test_disable_swallow_rule_on_handler_line(self):
        findings = lint(
            """
            def pump(queue):
                try:
                    queue.get()
                except Exception:  # repro-lint: disable=RL012
                    pass
            """,
            relpath=ORCH_PATH,
        )
        assert "RL012" not in rules_of(findings)

    def test_parse_pragmas_shapes(self):
        per_line, per_file = parse_pragmas(
            [
                "x = 1  # repro-lint: disable=RL001, RL003",
                "# repro-lint: disable-file=RL005",
            ]
        )
        assert per_line == {1: {"RL001", "RL003"}}
        assert per_file == {"RL005"}


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    @staticmethod
    def _finding(context="return time.time()", rule="RL001"):
        return Finding(
            rule=rule,
            severity="error",
            path="src/repro/engine/example.py",
            line=4,
            col=11,
            message="wall-clock",
            context=context,
        )

    def test_partition_absorbs_matching(self):
        finding = self._finding()
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    context=finding.context,
                    justification="known",
                )
            ]
        )
        fresh, absorbed = baseline.partition([finding])
        assert fresh == []
        assert absorbed == [finding]

    def test_partition_count_bounds_duplicates(self):
        finding = self._finding()
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    context=finding.context,
                    count=1,
                )
            ]
        )
        fresh, absorbed = baseline.partition([finding, finding])
        assert len(fresh) == 1 and len(absorbed) == 1

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        original = Baseline(
            entries=[
                BaselineEntry(
                    rule="RL001",
                    path="src/repro/sim/system.py",
                    context="t = time.time()",
                    count=2,
                    justification="reporting only",
                )
            ]
        )
        original.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == original.entries

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            Baseline.load(str(path))
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ConfigError):
            Baseline.load(str(path))

    def test_from_findings_keeps_justifications(self):
        finding = self._finding()
        previous = Baseline(
            entries=[
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    context=finding.context,
                    justification="carefully reviewed",
                )
            ]
        )
        rebuilt = Baseline.from_findings([finding], previous=previous)
        assert rebuilt.entries[0].justification == "carefully reviewed"

    def test_unjustified_flags_blank_and_todo(self):
        baseline = Baseline(
            entries=[
                BaselineEntry(rule="RL001", path="a.py", context="x"),
                BaselineEntry(
                    rule="RL007", path="b.py", context="y",
                    justification="TODO: explain",
                ),
                BaselineEntry(
                    rule="RL012", path="c.py", context="z",
                    justification="reviewed: close of a broken pipe",
                ),
            ]
        )
        flagged = baseline.unjustified()
        assert [(e.rule, e.path) for e in flagged] == [
            ("RL001", "a.py"), ("RL007", "b.py"),
        ]

    def test_matches_across_invocation_directories(self):
        # A baseline written at the repo root must still absorb findings
        # when the scan is invoked from elsewhere with absolute paths.
        finding = self._finding()
        entry = BaselineEntry(
            rule=finding.rule,
            path="../../repo/" + finding.path,
            context=finding.context,
        )
        fresh, absorbed = Baseline(entries=[entry]).partition([finding])
        assert fresh == [] and absorbed == [finding]
        reversed_entry = BaselineEntry(
            rule=finding.rule, path=finding.path, context=finding.context
        )
        moved = Finding(
            rule=finding.rule,
            severity=finding.severity,
            path="/abs/checkout/" + finding.path,
            line=finding.line,
            col=finding.col,
            message=finding.message,
            context=finding.context,
        )
        fresh, absorbed = Baseline(entries=[reversed_entry]).partition([moved])
        assert fresh == [] and absorbed == [moved]

    def test_different_file_same_basename_not_matched(self):
        finding = self._finding()
        entry = BaselineEntry(
            rule=finding.rule,
            path="src/repro/pcm/example.py",
            context=finding.context,
        )
        fresh, absorbed = Baseline(entries=[entry]).partition([finding])
        assert absorbed == [] and fresh == [finding]

    def test_line_number_changes_do_not_invalidate(self):
        moved = Finding(
            rule="RL001",
            severity="error",
            path="src/repro/engine/example.py",
            line=400,
            col=0,
            message="wall-clock",
            context="return time.time()",
        )
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule=moved.rule, path=moved.path, context=moved.context
                )
            ]
        )
        fresh, absorbed = baseline.partition([moved])
        assert fresh == []
        assert len(absorbed) == 1


# ----------------------------------------------------------------------
# run_lint end-to-end (tmp tree) + reporters
# ----------------------------------------------------------------------
DIRTY_SOURCE = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def _make_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "engine"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(DIRTY_SOURCE)
    (pkg / "clean.py").write_text("def f(sim):\n    return sim.now\n")
    return tmp_path


class TestRunLint:
    def test_scans_directory_and_reports(self, tmp_path, monkeypatch):
        _make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src/repro"])
        assert report.files_scanned == 2
        assert report.error_count == 1
        assert report.findings[0].rule == "RL001"
        assert report.findings[0].path.endswith("dirty.py")
        assert report.exit_code() == 1

    def test_missing_path_raises_config_error(self):
        with pytest.raises(ConfigError):
            run_lint(["/definitely/not/a/path"])

    def test_parse_error_becomes_rl000(self, tmp_path, monkeypatch):
        pkg = tmp_path / "src" / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def f(:\n")
        monkeypatch.chdir(tmp_path)
        report = run_lint(["src/repro"])
        assert [f.rule for f in report.findings] == ["RL000"]
        assert report.exit_code() == 1

    def test_update_baseline_then_clean(self, tmp_path, monkeypatch):
        _make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        first = run_lint(["src/repro"], update_baseline=True)
        assert first.baseline_updated
        report = run_lint(["src/repro"])
        assert report.clean
        assert len(report.baselined) == 1
        assert report.exit_code(strict=True) == 0

    def test_new_finding_not_hidden_by_baseline(self, tmp_path, monkeypatch):
        _make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        run_lint(["src/repro"], update_baseline=True)
        extra = tmp_path / "src" / "repro" / "engine" / "extra.py"
        extra.write_text("import time\n\nT0 = time.monotonic()\n")
        report = run_lint(["src/repro"])
        assert report.error_count == 1
        assert report.findings[0].path.endswith("extra.py")

    def test_iter_python_files_sorted_unique(self, tmp_path):
        _make_tree(tmp_path)
        root = str(tmp_path / "src")
        files = iter_python_files([root, root])
        assert files == sorted(set(files))
        assert all(f.endswith(".py") for f in files)

    def test_strict_vs_default_exit_codes(self):
        warning = Finding(
            rule="RL004",
            severity="warning",
            path="x.py",
            line=1,
            col=0,
            message="m",
        )
        report = LintReport(findings=[warning], files_scanned=1)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1


class TestReporters:
    @staticmethod
    def _report():
        finding = Finding(
            rule="RL001",
            severity="error",
            path="src/repro/engine/dirty.py",
            line=4,
            col=11,
            message="wall-clock read `time.time()` on the simulation path",
            hint="use Simulator.now",
            context="return time.time()",
        )
        return LintReport(findings=[finding], files_scanned=2)

    def test_text_report_contains_location_and_summary(self):
        text = render_text(self._report())
        assert "src/repro/engine/dirty.py:4:12: RL001" in text
        assert "hint: use Simulator.now" in text
        assert "1 error(s)" in text

    def test_json_schema_stable(self):
        payload = json.loads(render_json(self._report()))
        assert set(payload) == {
            "version", "tool", "files_scanned", "rules_active", "counts",
            "findings",
        }
        assert payload["version"] == 2
        assert payload["tool"] == "repro-lint"
        assert payload["counts"] == {
            "errors": 1,
            "warnings": 0,
            "baselined": 0,
            "by_rule": {"RL001": 1},
        }
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col",
            "message", "hint", "context",
        }
        assert finding["line"] == 4 and finding["col"] == 11

    def test_json_round_trips_through_loads(self):
        assert json.loads(render_json(LintReport(files_scanned=0)))[
            "findings"
        ] == []


# ----------------------------------------------------------------------
# Self-hosting: the repository obeys its own invariants
# ----------------------------------------------------------------------
class TestSelfHosting:
    def test_repo_lints_clean_under_strict(self):
        report = run_lint()  # default roots + checked-in baseline
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.exit_code(strict=True) == 0

    def test_baseline_entries_all_justified(self):
        baseline = Baseline.load(".repro-lint-baseline.json")
        assert baseline.entries, "baseline should document accepted findings"
        assert baseline.unjustified() == [], [
            (e.rule, e.path) for e in baseline.unjustified()
        ]

    def test_concurrency_rules_clean_repo_wide(self):
        # The ISSUE contract: RL007-RL012 alone, strict, zero fresh findings.
        report = run_lint(select="RL007-RL012")
        assert report.rules_active == [
            "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
        ]
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.exit_code(strict=True) == 0
