"""Tests for the experiment runner."""

import json

import pytest

from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.schemes import Scheme
from repro.utils.mathx import geomean


@pytest.fixture(scope="module")
def runner():
    r = ExperimentRunner(
        SystemConfig.tiny(),
        workloads=["hmmer", "GemsFDTD"],
        schemes=[Scheme.STATIC_7, Scheme.STATIC_3],
    )
    r.run_all()
    return r


class TestSweep:
    def test_all_pairs_present(self, runner):
        assert len(runner.results) == 4
        for workload in ("hmmer", "GemsFDTD"):
            for scheme in (Scheme.STATIC_7, Scheme.STATIC_3):
                assert runner.result(workload, scheme).ipc > 0

    def test_missing_result_raises(self, runner):
        with pytest.raises(ConfigError):
            runner.result("hmmer", Scheme.RRM)

    def test_run_all_is_idempotent(self, runner):
        before = dict(runner.results)
        runner.run_all()
        assert runner.results == before

    def test_progress_callback(self):
        calls = []
        r = ExperimentRunner(
            SystemConfig.tiny(), workloads=["hmmer"], schemes=[Scheme.STATIC_7]
        )
        r.run_all(progress=lambda w, s, res: calls.append((w, s.value)))
        assert calls == [("hmmer", "Static-7-SETs")]

    def test_default_workloads_are_all_eleven(self):
        r = ExperimentRunner(SystemConfig.tiny())
        assert len(r.workloads) == 11
        assert len(r.schemes) == 6


class TestAggregation:
    def test_ipc_series_order(self, runner):
        series = runner.ipc_series(Scheme.STATIC_3)
        assert series[0] == runner.result("hmmer", Scheme.STATIC_3).ipc
        assert series[1] == runner.result("GemsFDTD", Scheme.STATIC_3).ipc

    def test_normalized_ipc_baseline_is_one(self, runner):
        normalized = runner.normalized_ipc(Scheme.STATIC_7, Scheme.STATIC_7)
        assert normalized == [pytest.approx(1.0)] * 2

    def test_geomean_matches_manual(self, runner):
        manual = geomean(runner.ipc_series(Scheme.STATIC_3))
        assert runner.geomean_ipc(Scheme.STATIC_3) == pytest.approx(manual)

    def test_geomean_speedup_consistent(self, runner):
        speedup = runner.geomean_speedup(Scheme.STATIC_3, Scheme.STATIC_7)
        manual = geomean(runner.normalized_ipc(Scheme.STATIC_3, Scheme.STATIC_7))
        assert speedup == pytest.approx(manual)
        assert speedup > 1.0

    def test_lifetime_aggregation(self, runner):
        assert runner.geomean_lifetime(Scheme.STATIC_7) > (
            runner.geomean_lifetime(Scheme.STATIC_3)
        )


class TestPersistence:
    def test_save_json(self, runner, tmp_path):
        path = tmp_path / "results.json"
        runner.save_json(path)
        records = json.loads(path.read_text())
        assert len(records) == 4
        assert {r["scheme"] for r in records} == {"Static-7-SETs", "Static-3-SETs"}
        for record in records:
            assert "ipc" in record and "lifetime_years" in record


class TestParallel:
    def test_process_pool_matches_serial(self):
        serial = ExperimentRunner(
            SystemConfig.tiny(), workloads=["hmmer"], schemes=[Scheme.STATIC_7]
        )
        serial.run_all()
        parallel = ExperimentRunner(
            SystemConfig.tiny(),
            workloads=["hmmer"],
            schemes=[Scheme.STATIC_7],
            n_workers=2,
        )
        parallel.run_all()
        a = serial.result("hmmer", Scheme.STATIC_7)
        b = parallel.result("hmmer", Scheme.STATIC_7)
        assert a.ipc == pytest.approx(b.ipc)
        assert a.writes == b.writes
